//! End-to-end integration tests: the whole pipeline from scheduler
//! simulation through threshold calibration, trace collection, analysis
//! and prediction, verifying the paper's qualitative claims hold on the
//! assembled system.

use fgcs::core::calibrate::{calibrate, CalibrationConfig};
use fgcs::core::model::FailureCause;
use fgcs::predict::eval::{evaluate, standard_predictors, EvalConfig};
use fgcs::predict::predictor::MachineHourlyPredictor;
use fgcs::predict::proactive::{compare, ProactiveConfig};
use fgcs::testbed::analysis;
use fgcs::testbed::calendar::DayType;
use fgcs::testbed::runner::{run_testbed, TestbedConfig};
use fgcs::testbed::trace::Trace;

fn month_trace() -> Trace {
    let mut cfg = TestbedConfig::default();
    cfg.lab.machines = 10;
    cfg.lab.days = 28;
    run_testbed(&cfg)
}

#[test]
fn calibration_reproduces_threshold_ordering() {
    let cal = calibrate(&CalibrationConfig::quick());
    let t = cal.thresholds;
    // The paper's central structural result: two distinct thresholds,
    // the equal-priority one far below the lowest-priority one.
    assert!(t.th1 >= 0.1 && t.th1 <= 0.4, "Th1 {t:?}");
    assert!(t.th2 >= 0.4 && t.th2 <= 0.8, "Th2 {t:?}");
    assert!(t.th2 - t.th1 >= 0.1, "thresholds must be separated: {t:?}");
}

#[test]
fn trace_analyses_are_mutually_consistent() {
    let trace = month_trace();
    let t2 = analysis::table2(&trace);

    // Per-machine counts sum to the record count.
    let total: usize = t2.per_machine.iter().map(|c| c.total).sum();
    assert_eq!(total, trace.records.len());
    // Cause partition is exact.
    for c in &t2.per_machine {
        assert_eq!(c.total, c.cpu + c.mem + c.urr);
        assert!(c.urr_reboots <= c.urr);
    }

    // Hourly counts over a day-type must cover every event at least once.
    let matrix = analysis::day_hour_counts(&trace);
    let hour_total: u32 = matrix.iter().flat_map(|d| d.iter()).sum();
    assert!(hour_total as usize >= trace.records.len());

    // Availability intervals and events tile the span per machine.
    for (m, recs) in trace.per_machine() {
        let intervals = analysis::machine_intervals(&recs, trace.meta.span_secs);
        let avail: u64 = intervals.iter().map(|(s, e)| e - s).sum();
        let unavail: u64 = recs
            .iter()
            .map(|r| {
                r.end
                    .unwrap_or(trace.meta.span_secs)
                    .min(trace.meta.span_secs)
                    - r.start
            })
            .sum();
        assert_eq!(
            avail + unavail,
            trace.meta.span_secs,
            "machine {m} does not tile"
        );
    }
}

#[test]
fn paper_claims_hold_on_the_synthetic_testbed() {
    let trace = month_trace();

    // §5.1: UEC dominates URR; CPU contention is the main cause.
    let t2 = analysis::table2(&trace);
    let cpu: usize = t2.per_machine.iter().map(|c| c.cpu).sum();
    let mem: usize = t2.per_machine.iter().map(|c| c.mem).sum();
    let urr: usize = t2.per_machine.iter().map(|c| c.urr).sum();
    assert!(cpu > mem, "cpu {cpu} mem {mem}");
    assert!(mem > urr, "mem {mem} urr {urr}");
    assert!(cpu + mem > 10 * urr, "UEC must dwarf URR");

    // §5.2: weekday intervals shorter than weekend intervals.
    let iv = analysis::intervals(&trace);
    assert!(
        iv.mean_hours(DayType::Weekday) < iv.mean_hours(DayType::Weekend),
        "weekday {} weekend {}",
        iv.mean_hours(DayType::Weekday),
        iv.mean_hours(DayType::Weekend)
    );
    // Small intervals are rare (paper: ~5% under 5 minutes).
    assert!(iv.weekday.eval(5.0 / 60.0) < 0.15);

    // §5.3: the 4-5 AM updatedb spike equals the machine count, daily.
    let hourly = analysis::hourly(&trace);
    let spike = hourly.weekday.get(&4).expect("hour 4 populated");
    assert!(
        (spike.mean() - trace.meta.machines as f64).abs() < 1.5,
        "updatedb spike {} vs {} machines",
        spike.mean(),
        trace.meta.machines
    );
    // Day hours are busier than deep night (failures track host load).
    let day = hourly.weekday.get(&14).map(|s| s.mean()).unwrap_or(0.0);
    let night = hourly.weekday.get(&2).map(|s| s.mean()).unwrap_or(0.0);
    assert!(day > night, "day {day} night {night}");

    // §5.3: daily patterns repeat (high across-day correlation).
    let reg = analysis::regularity(&trace);
    assert!(
        reg.weekday_correlation > 0.4,
        "corr {}",
        reg.weekday_correlation
    );
}

#[test]
fn urr_split_identifies_reboots() {
    let trace = month_trace();
    let t2 = analysis::table2(&trace);
    // Most URR must classify as reboots, as in the paper (~90%).
    assert!(
        t2.urr_reboot_fraction > 0.6,
        "reboot fraction {}",
        t2.urr_reboot_fraction
    );
    // And every reboot-classified record is genuinely short.
    for r in &trace.records {
        if r.cause == FailureCause::Revocation {
            if let Some(d) = r.raw_duration() {
                assert!(d < 24 * 3600, "absurd outage duration {d}");
            }
        }
    }
}

#[test]
fn prediction_beats_uninformed_baselines() {
    let trace = month_trace();
    let mut preds = standard_predictors();
    let cfg = EvalConfig {
        windows: vec![3600, 4 * 3600],
        ..Default::default()
    };
    let rows = evaluate(&trace, &mut preds, &cfg);
    for &w in &[3600u64, 4 * 3600] {
        let brier = |name: &str| {
            rows.iter()
                .find(|r| r.window == w && r.predictor == name)
                .map(|r| r.brier)
                .expect("row present")
        };
        assert!(
            brier("history-window") < brier("base-rate"),
            "w={w}: history {} base {}",
            brier("history-window"),
            brier("base-rate")
        );
        assert!(
            brier("machine-hourly") < brier("base-rate"),
            "w={w}: machine-hourly {} base {}",
            brier("machine-hourly"),
            brier("base-rate")
        );
    }
}

#[test]
fn proactive_placement_beats_oblivious() {
    let mut cfg = TestbedConfig::default();
    cfg.lab.machines = 12;
    cfg.lab.days = 42;
    // A heterogeneous lab: placement needs machines that differ.
    cfg.lab.machine_busyness_spread = 0.6;
    let trace = run_testbed(&cfg);
    let mut predictor = MachineHourlyPredictor::default();
    let job_cfg = ProactiveConfig {
        jobs: 250,
        ..Default::default()
    };
    let (obl, pro) = compare(&trace, &mut predictor, 0.6, &job_cfg);
    assert!(
        pro.mean_response < obl.mean_response,
        "proactive {} oblivious {}",
        pro.mean_response,
        obl.mean_response
    );
    assert!(pro.mean_failures <= obl.mean_failures, "{pro:?} vs {obl:?}");
}

#[test]
fn trace_serialization_survives_the_full_pipeline() {
    let trace = month_trace();
    let mut jsonl = Vec::new();
    trace.write_jsonl(&mut jsonl).unwrap();
    let back = Trace::read_jsonl(&jsonl[..]).unwrap();
    assert_eq!(back, trace);
    // Analyses on the deserialized trace are identical.
    let a = analysis::table2(&trace);
    let b = analysis::table2(&back);
    assert_eq!(a, b);
}
