//! Property-based tests of the trace layer and statistics substrate:
//! serialization round-trips, index-vs-naive equivalence, and ECDF /
//! quantile invariants over arbitrary inputs.

use fgcs::core::model::{FailureCause, Thresholds};
use fgcs::predict::predictor::{window_was_available, EventIndex};
use fgcs::stats::ecdf::Ecdf;
use fgcs::stats::quantile::quantile;
use fgcs::testbed::trace::{Trace, TraceMeta, TraceRecord};
use proptest::prelude::*;

fn meta(machines: u32) -> TraceMeta {
    TraceMeta {
        seed: 1,
        machines,
        days: 30,
        sample_period: 15,
        start_weekday: 0,
        span_secs: 30 * 86_400,
        thresholds: Thresholds::LINUX_TESTBED,
    }
}

prop_compose! {
    fn arb_cause()(idx in 0usize..3) -> FailureCause {
        [FailureCause::CpuContention, FailureCause::MemoryThrashing, FailureCause::Revocation][idx]
    }
}

prop_compose! {
    fn arb_record(machines: u32)(
        machine in 0..machines,
        cause in arb_cause(),
        start in 0u64..2_000_000,
        dur in prop::option::of(1u64..100_000),
        raw_frac in 0.0f64..=1.0,
        avail_cpu in 0.0f64..=1.0,
        avail_mem in 0u32..2048,
    ) -> TraceRecord {
        let end = dur.map(|d| start + d);
        let raw_end = end.map(|e| start + ((e - start) as f64 * raw_frac) as u64);
        TraceRecord { machine, cause, start, end, raw_end, avail_cpu, avail_mem_mb: avail_mem }
    }
}

/// Sorted, per-machine non-overlapping records (what the detector
/// actually produces).
fn arb_clean_records(machines: u32) -> impl Strategy<Value = Vec<TraceRecord>> {
    prop::collection::vec((0..machines, 0u64..500, 1u64..300, arb_cause()), 0..40).prop_map(
        move |raw| {
            let mut per_machine: Vec<Vec<TraceRecord>> = vec![Vec::new(); machines as usize];
            for (m, gap, dur, cause) in raw {
                let list = &mut per_machine[m as usize];
                let start = list
                    .last()
                    .map(|r: &TraceRecord| r.end.unwrap() + gap + 1)
                    .unwrap_or(gap);
                list.push(TraceRecord {
                    machine: m,
                    cause,
                    start,
                    end: Some(start + dur),
                    raw_end: Some(start + dur / 2),
                    avail_cpu: 0.9,
                    avail_mem_mb: 900,
                });
            }
            let mut all: Vec<TraceRecord> = per_machine.into_iter().flatten().collect();
            all.sort_by_key(|r| (r.machine, r.start));
            all
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// JSONL round trip is lossless for arbitrary records.
    #[test]
    fn jsonl_round_trip(records in prop::collection::vec(arb_record(5), 0..50)) {
        let trace = Trace { meta: meta(5), records };
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(&buf[..]).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// CSV round trip is lossless for arbitrary records.
    #[test]
    fn csv_round_trip(records in prop::collection::vec(arb_record(5), 0..50)) {
        let trace = Trace { meta: meta(5), records };
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        let back = Trace::read_csv(&buf[..], trace.meta.clone()).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// The binary-searched EventIndex agrees with the naive linear scan
    /// on every query.
    #[test]
    fn event_index_matches_naive(
        records in arb_clean_records(4),
        queries in prop::collection::vec((0u32..4, 0u64..40_000, 1u64..5_000), 1..50),
    ) {
        let trace = Trace { meta: meta(4), records };
        let index = EventIndex::build(&trace, u64::MAX);
        for (m, t, w) in queries {
            let naive = window_was_available(&trace.records, m, t, w);
            let fast = index.window_available(m, t, w);
            prop_assert_eq!(fast, naive, "machine {} window [{}, {})", m, t, t + w);
        }
    }

    /// ECDF is a valid CDF: monotone, 0-to-1, eval at max is 1.
    #[test]
    fn ecdf_is_a_cdf(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::new(&samples);
        let mut prev = 0.0;
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let y = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y + 1e-12 >= prev, "not monotone");
            prev = y;
        }
        prop_assert_eq!(e.eval(hi), 1.0);
        prop_assert_eq!(e.eval(lo - 1.0), 0.0);
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantile_bounds(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = quantile(&samples, q).unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// OnlineStats merge is equivalent to sequential accumulation for
    /// any split point.
    #[test]
    fn online_stats_merge_any_split(
        samples in prop::collection::vec(-1e3f64..1e3, 2..100),
        split_frac in 0.0f64..=1.0,
    ) {
        use fgcs::stats::OnlineStats;
        let split = ((samples.len() as f64 * split_frac) as usize).min(samples.len());
        let whole = OnlineStats::from_slice(&samples);
        let mut left = OnlineStats::from_slice(&samples[..split]);
        let right = OnlineStats::from_slice(&samples[split..]);
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-4);
    }
}
