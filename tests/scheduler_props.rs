//! Property-based tests of the machine simulator: CPU-time conservation,
//! starvation freedom, isolated-usage fidelity and priority monotonicity
//! must hold for arbitrary process mixes.

use fgcs::sim::machine::{Machine, MachineConfig};
use fgcs::sim::proc::{Demand, MemSpec, ProcClass, ProcSpec};
use fgcs::sim::time::secs;
use proptest::prelude::*;

prop_compose! {
    fn arb_host()(
        usage in 0.02f64..=0.98,
        period in 20u64..120,
        nice in 0i8..=19,
    ) -> ProcSpec {
        ProcSpec::new("host", ProcClass::Host, nice, Demand::duty_cycle(usage, period), MemSpec::tiny())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every tick is attributed to exactly one of host/system/guest/idle/
    /// iowait, and per-process CPU sums match the class accounting.
    #[test]
    fn cpu_time_conservation(hosts in prop::collection::vec(arb_host(), 0..6), with_guest in any::<bool>()) {
        let mut m = Machine::default_linux();
        for h in &hosts {
            m.spawn(h.clone());
        }
        if with_guest {
            m.spawn(ProcSpec::cpu_bound_guest("g", 19));
        }
        let ticks = secs(30);
        m.run_ticks(ticks);
        let a = m.accounting();
        prop_assert_eq!(a.total(), ticks);
        let proc_ticks: u64 = m.processes().map(|p| p.cpu_ticks).sum();
        prop_assert_eq!(proc_ticks, a.host + a.system + a.guest);
    }

    /// No runnable process starves: over a long run, every spawned
    /// process with positive demand gets some CPU.
    #[test]
    fn starvation_freedom(hosts in prop::collection::vec(arb_host(), 1..6)) {
        let mut m = Machine::default_linux();
        let pids: Vec<_> = hosts.iter().map(|h| m.spawn(h.clone())).collect();
        let guest = m.spawn(ProcSpec::cpu_bound_guest("g", 19));
        m.run_ticks(secs(60));
        for pid in pids {
            prop_assert!(m.process(pid).unwrap().cpu_ticks > 0, "host {pid} starved");
        }
        prop_assert!(m.process(guest).unwrap().cpu_ticks > 0, "guest starved");
    }

    /// A duty-cycle process running alone achieves its isolated usage
    /// within tick-quantization tolerance.
    #[test]
    fn isolated_usage_fidelity(usage in 0.05f64..=0.95, period in 20u64..120) {
        let spec = ProcSpec::new(
            "h",
            ProcClass::Host,
            0,
            Demand::duty_cycle(usage, period),
            MemSpec::tiny(),
        );
        let rounded = spec.demand.isolated_usage();
        let mut m = Machine::default_linux();
        m.spawn(spec);
        m.run_ticks(secs(10));
        let d = m.measure(secs(120));
        prop_assert!(
            (d.host_load() - rounded).abs() < 0.03,
            "target {rounded} measured {}",
            d.host_load()
        );
    }

    /// Host slowdown from a nice-19 guest never exceeds the slowdown
    /// from a nice-0 guest (priority monotonicity — the structural fact
    /// behind Th1 < Th2).
    #[test]
    fn guest_priority_monotonicity(usage in 0.1f64..=0.9) {
        let measure = |nice: i8| {
            let mut m = Machine::default_linux();
            let h = m.spawn(ProcSpec::new(
                "h",
                ProcClass::Host,
                0,
                Demand::duty_cycle(usage, 70),
                MemSpec::tiny(),
            ));
            m.spawn(ProcSpec::cpu_bound_guest("g", nice));
            m.run_ticks(secs(20));
            m.measure_pid(h, secs(120)).unwrap()
        };
        let with_low = measure(19);
        let with_eq = measure(0);
        // Allow 2% tolerance for phase/quantization noise.
        prop_assert!(
            with_low + 0.02 >= with_eq,
            "usage {usage}: nice19 left {with_low}, nice0 left {with_eq}"
        );
    }

    /// Suspending every process makes the machine fully idle; resuming
    /// restores progress.
    #[test]
    fn suspend_resume_round_trip(hosts in prop::collection::vec(arb_host(), 1..4)) {
        let mut m = Machine::default_linux();
        let pids: Vec<_> = hosts.iter().map(|h| m.spawn(h.clone())).collect();
        m.run_ticks(100);
        for &p in &pids {
            m.suspend(p).unwrap();
        }
        let before = m.accounting();
        m.run_ticks(200);
        let d = m.accounting().since(&before);
        prop_assert_eq!(d.idle, 200);
        for &p in &pids {
            m.resume(p).unwrap();
        }
        let before = m.accounting();
        m.run_ticks(secs(10));
        let d = m.accounting().since(&before);
        prop_assert!(d.host > 0, "no progress after resume");
    }

    /// Thrashing never deadlocks: with working sets exceeding memory the
    /// machine still retires work, just slowly, and accounting stays
    /// conserved (iowait included).
    #[test]
    fn thrashing_conservation(extra_mb in 100u32..800) {
        let mut m = Machine::new(MachineConfig::solaris_384mb());
        m.spawn(ProcSpec::new(
            "big",
            ProcClass::Host,
            0,
            Demand::CpuBound { total_work: None },
            MemSpec::resident(200 + extra_mb),
        ));
        let ticks = secs(20);
        m.run_ticks(ticks);
        let a = m.accounting();
        prop_assert_eq!(a.total(), ticks);
        prop_assert!(a.host > 0, "no work retired under thrashing");
        if m.is_thrashing() {
            prop_assert!(a.iowait > 0, "thrashing without iowait");
        }
    }
}
