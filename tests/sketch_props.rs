//! Property-based tests pinning the [`RankSketch`] against the exact
//! sort-based path: the runtime rank-error certificate must hold for
//! every query on arbitrary streams, merging must be equivalent to
//! concatenation (same certificate), and NaN bookkeeping must mirror
//! the strict exact-path behavior.

use fgcs::stats::quantile::{quantile, quantile_in_place, quantiles, sorted_copy};
use fgcs::stats::sketch::RankSketch;
use proptest::prelude::*;

/// Distance (in ranks) from `target` to the rank interval a value
/// occupies in `sorted`. Zero means the value is a legitimate order
/// statistic for that rank even under ties.
fn rank_distance(sorted: &[f64], v: f64, target: f64) -> f64 {
    let lo = sorted.partition_point(|&x| x < v) as f64;
    let hi = sorted.partition_point(|&x| x <= v) as f64;
    if target < lo {
        lo - target
    } else if target > hi {
        target - hi
    } else {
        0.0
    }
}

/// Asserts every integer percentile of `sk` lands within its certified
/// rank-error bound of the exact order statistics of `xs`.
fn check_certificate(sk: &RankSketch, xs: &[f64]) {
    let sorted = sorted_copy(xs).expect("no NaNs here");
    let n = sorted.len() as f64;
    // One extra rank of slack for the discrete target convention.
    let bound = sk.quantile_rank_error_bound() as f64 + 1.0;
    for i in 1..100 {
        let q = i as f64 / 100.0;
        let v = sk.quantile(q).expect("non-empty, NaN-free");
        let d = rank_distance(&sorted, v, q * n);
        assert!(
            d <= bound,
            "q={q}: answer {v} is {d} ranks off (bound {bound}, n={n})"
        );
    }
}

/// Streams with very different shapes: uniform noise, quantized values
/// (heavy ties), constant runs (maximal ties), a heavy tail, and a
/// fully sorted ramp — one base vector mapped through a shape selector.
fn arb_stream() -> impl Strategy<Value = Vec<f64>> {
    (
        0usize..5,
        prop::collection::vec(0f64..1.0, 1..2000),
        -10f64..10.0,
    )
        .prop_map(|(shape, base, c)| match shape {
            0 => base.iter().map(|u| (u - 0.5) * 2e6).collect(),
            1 => base.iter().map(|u| (u * 200.0).floor()).collect(),
            2 => vec![c; base.len()],
            3 => base.iter().map(|u| 1.0 / (1.0 - u * 0.999_999)).collect(),
            _ => (0..base.len()).map(|i| i as f64).collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn certificate_holds_on_arbitrary_streams(xs in arb_stream(), k in 8usize..128) {
        let mut sk = RankSketch::new(k);
        sk.extend(&xs);
        prop_assert_eq!(sk.count(), xs.len() as u64);
        check_certificate(&sk, &xs);
    }

    #[test]
    fn merge_is_equivalent_to_concatenation(
        a in arb_stream(),
        b in arb_stream(),
        k in 8usize..64,
    ) {
        let mut left = RankSketch::new(k);
        left.extend(&a);
        let mut right = RankSketch::new(k);
        right.extend(&b);
        left.merge(&right);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(left.count(), all.len() as u64);
        prop_assert_eq!(left.min(), sorted_copy(&all).unwrap().first().copied());
        prop_assert_eq!(left.max(), sorted_copy(&all).unwrap().last().copied());
        // The merged sketch carries its own (possibly larger)
        // certificate, and must honor it against the union stream.
        check_certificate(&left, &all);
    }

    #[test]
    fn nan_poisons_sketch_exactly_like_the_exact_path(
        mut xs in prop::collection::vec(-100f64..100.0, 1..200),
        at in 0usize..200,
    ) {
        xs.insert(at.min(xs.len()), f64::NAN);
        let mut sk = RankSketch::new(32);
        sk.extend(&xs);
        prop_assert_eq!(sk.nan_count(), 1);
        // Strict quantiles refuse, exactly like `quantile` on a NaN
        // slice; the lenient path answers from the finite subset.
        prop_assert!(sk.quantile(0.5).is_none());
        prop_assert!(quantile(&xs, 0.5).is_none());
        if xs.len() > 1 {
            prop_assert!(sk.quantile_lenient(0.5).is_some());
        }
    }

    #[test]
    fn quantile_helpers_agree(xs in prop::collection::vec(-1e3f64..1e3, 1..500)) {
        // The three exact entry points answer identically.
        let qs = [0.0, 0.25, 0.5, 0.9, 1.0];
        let multi = quantiles(&xs, &qs).expect("finite");
        for (&q, &m) in qs.iter().zip(&multi) {
            prop_assert_eq!(quantile(&xs, q), Some(m));
            let mut copy = xs.clone();
            prop_assert_eq!(quantile_in_place(&mut copy, q), Some(m));
        }
        // And a generously-sized sketch holds every sample exactly, so
        // its answers are legitimate order statistics.
        let mut sk = RankSketch::new(4096);
        sk.extend(&xs);
        let sorted = sorted_copy(&xs).unwrap();
        for &q in &qs[1..] {
            let v = sk.quantile(q).unwrap();
            prop_assert_eq!(rank_distance(&sorted, v, q * xs.len() as f64) as u64, 0);
        }
    }
}
