//! Property-based tests of the hardened trace loaders against the
//! corruption injector: for *any* trace and *any* corruption rate, the
//! recovering loaders never panic, never return a silently-wrong record,
//! and account for every line — surviving records round-trip exactly and
//! damaged lines are counted, nothing else.

use fgcs::core::model::{FailureCause, Thresholds};
use fgcs::faults::corrupt::corrupt_text;
use fgcs::faults::FaultConfig;
use fgcs::testbed::trace::{Trace, TraceMeta, TraceRecord};
use proptest::prelude::*;

fn meta(machines: u32) -> TraceMeta {
    TraceMeta {
        seed: 1,
        machines,
        days: 30,
        sample_period: 15,
        start_weekday: 0,
        span_secs: 30 * 86_400,
        thresholds: Thresholds::LINUX_TESTBED,
    }
}

prop_compose! {
    fn arb_cause()(idx in 0usize..3) -> FailureCause {
        [FailureCause::CpuContention, FailureCause::MemoryThrashing, FailureCause::Revocation][idx]
    }
}

prop_compose! {
    fn arb_record(machines: u32)(
        machine in 0..machines,
        cause in arb_cause(),
        start in 0u64..2_000_000,
        dur in prop::option::of(1u64..100_000),
        raw_frac in 0.0f64..=1.0,
        avail_cpu in 0.0f64..=1.0,
        avail_mem in 0u32..2048,
    ) -> TraceRecord {
        let end = dur.map(|d| start + d);
        let raw_end = end.map(|e| start + ((e - start) as f64 * raw_frac) as u64);
        TraceRecord { machine, cause, start, end, raw_end, avail_cpu, avail_mem_mb: avail_mem }
    }
}

fn corruption(seed: u64, rate: f64) -> FaultConfig {
    let mut cfg = FaultConfig::off(seed);
    cfg.corrupt_rate = rate;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// JSONL: every line of a corrupted file either survives as its
    /// original record or is counted as corrupt — never both, never a
    /// mutated record, never a panic.
    #[test]
    fn corrupted_jsonl_is_skip_or_survive(
        records in prop::collection::vec(arb_record(5), 0..50),
        seed in 0u64..1_000,
        rate in 0.0f64..=1.0,
    ) {
        let trace = Trace { meta: meta(5), records };
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (damaged, creport) = corrupt_text(&text, &corruption(seed, rate), 0);

        let (back, q) = Trace::read_jsonl_recovering(damaged.as_bytes()).unwrap();
        prop_assert_eq!(back.meta, trace.meta, "meta line is never corrupted");
        prop_assert_eq!(q.corrupt_lines, creport.lines_corrupted,
            "loader counts exactly the injected damage");
        prop_assert_eq!(
            back.records.len() as u64 + q.corrupt_lines,
            trace.records.len() as u64,
            "every record survives or is counted"
        );
        // The surviving records are exactly the untouched originals, in
        // order: corruption is detected, never silently absorbed.
        let damaged_lines: std::collections::BTreeSet<usize> =
            creport.corrupted_line_numbers.iter().copied().collect();
        let expected: Vec<&TraceRecord> = trace
            .records
            .iter()
            .enumerate()
            .filter(|(i, _)| !damaged_lines.contains(&(i + 1))) // line 0 is meta
            .map(|(_, r)| r)
            .collect();
        prop_assert_eq!(back.records.iter().collect::<Vec<_>>(), expected);
    }

    /// CSV: same skip-or-survive guarantee as JSONL.
    #[test]
    fn corrupted_csv_is_skip_or_survive(
        records in prop::collection::vec(arb_record(5), 0..50),
        seed in 0u64..1_000,
        rate in 0.0f64..=1.0,
    ) {
        let trace = Trace { meta: meta(5), records };
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (damaged, creport) = corrupt_text(&text, &corruption(seed, rate), 0);

        let (back, q) = Trace::read_csv_recovering(damaged.as_bytes(), trace.meta.clone()).unwrap();
        prop_assert_eq!(q.corrupt_lines, creport.lines_corrupted);
        prop_assert_eq!(
            back.records.len() as u64 + q.corrupt_lines,
            trace.records.len() as u64
        );
        let damaged_lines: std::collections::BTreeSet<usize> =
            creport.corrupted_line_numbers.iter().copied().collect();
        let expected: Vec<&TraceRecord> = trace
            .records
            .iter()
            .enumerate()
            .filter(|(i, _)| !damaged_lines.contains(&(i + 1))) // line 0 is the header
            .map(|(_, r)| r)
            .collect();
        prop_assert_eq!(back.records.iter().collect::<Vec<_>>(), expected);
    }

    /// Zero corruption: the recovering loaders agree byte-for-byte with
    /// the strict ones and report a clean bill of health.
    #[test]
    fn zero_corruption_equals_strict(records in prop::collection::vec(arb_record(5), 0..50)) {
        let trace = Trace { meta: meta(5), records };

        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let strict = Trace::read_jsonl(&buf[..]).unwrap();
        let (recovered, q) = Trace::read_jsonl_recovering(&buf[..]).unwrap();
        prop_assert_eq!(&recovered, &strict);
        prop_assert!(q.is_clean());

        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        let strict = Trace::read_csv(&buf[..], trace.meta.clone()).unwrap();
        let (recovered, q) = Trace::read_csv_recovering(&buf[..], trace.meta.clone()).unwrap();
        prop_assert_eq!(&recovered, &strict);
        prop_assert!(q.is_clean());
    }

    /// The recovering JSONL loader never panics on arbitrary bytes after
    /// a valid meta line (and the strict loader agrees when it succeeds).
    #[test]
    fn arbitrary_garbage_never_panics(
        garbage_bytes in prop::collection::vec(prop::collection::vec(32u8..127, 0..80), 0..30),
    ) {
        let garbage: Vec<String> = garbage_bytes
            .into_iter()
            .map(|b| String::from_utf8(b).expect("printable ascii"))
            .collect();
        let trace = Trace { meta: meta(2), records: vec![] };
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        for g in &garbage {
            text.push_str(g);
            text.push('\n');
        }
        let (back, q) = Trace::read_jsonl_recovering(text.as_bytes()).unwrap();
        prop_assert_eq!(back.meta, trace.meta);
        // Every non-blank garbage line is either a valid record or counted.
        let non_blank = garbage.iter().filter(|g| !g.trim().is_empty()).count() as u64;
        prop_assert_eq!(back.records.len() as u64 + q.corrupt_lines, non_blank);
    }
}
