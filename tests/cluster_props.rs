//! Property-based tests of the cluster layer: job conservation and
//! record consistency under arbitrary node mixes and batch sizes.

use fgcs::core::cluster::{Cluster, LeastLoadedPlacement, RandomPlacement, RoundRobinPlacement};
use fgcs::core::controller::ControllerConfig;
use fgcs::sim::machine::Machine;
use fgcs::sim::proc::{Demand, MemSpec, ProcClass, ProcSpec};
use fgcs::sim::time::{minutes, secs};
use fgcs::sim::workloads::synthetic;
use proptest::prelude::*;

fn job(work_secs: u64) -> ProcSpec {
    ProcSpec::new(
        "job",
        ProcClass::Guest,
        0,
        Demand::CpuBound {
            total_work: Some(secs(work_secs)),
        },
        MemSpec::tiny(),
    )
}

/// Runs the cluster in `dispatch`-sized steps until `pred` holds or the
/// tick budget is exhausted; true if the predicate was reached.
fn run_until(c: &mut Cluster, budget: u64, pred: impl Fn(&Cluster) -> bool) -> bool {
    let mut spent = 0;
    while spent < budget {
        if pred(c) {
            return true;
        }
        c.run_ticks(secs(10));
        spent += secs(10);
    }
    pred(c)
}

/// Submitting to a cluster with zero nodes must hold the jobs in the
/// queue indefinitely — no panic, no silent drop — under every
/// placement strategy.
#[test]
fn empty_cluster_queues_jobs_without_dropping() {
    let placements: Vec<Box<dyn fgcs::core::cluster::Placement>> = vec![
        Box::new(RandomPlacement::new(1)),
        Box::new(RoundRobinPlacement::default()),
        Box::new(LeastLoadedPlacement),
    ];
    for placement in placements {
        let mut c = Cluster::new(Vec::new(), ControllerConfig::default(), placement);
        assert!(c.is_empty());
        for _ in 0..3 {
            c.submit(job(5));
        }
        c.run_ticks(minutes(5));
        assert_eq!(c.stats().queued, 3, "nowhere to go: all jobs stay queued");
        assert_eq!(c.stats().dispatched, 0);
        assert!(c.jobs().iter().all(|j| j.completed_at.is_none()));
        // run_until_drained must give up at its budget, not spin forever.
        let spent = c.run_until_drained(minutes(2));
        assert!(spent >= minutes(2));
        assert_eq!(c.stats().queued, 3, "budget exhaustion must not drop jobs");
    }
}

/// When every node is unavailable (sustained 0.95 hogs drive S3), a
/// submitted job stays queued — never dispatched, never dropped.
#[test]
fn all_nodes_unavailable_keeps_job_queued() {
    let machines: Vec<Machine> = (0..2)
        .map(|_| {
            let mut m = Machine::default_linux();
            m.spawn(synthetic::host_process("hog", 0.95));
            m
        })
        .collect();
    let mut c = Cluster::new(
        machines,
        ControllerConfig::default(),
        Box::new(LeastLoadedPlacement),
    );
    let all_closed = run_until(&mut c, minutes(15), |c| {
        c.views().iter().all(|v| !v.accepts_jobs)
    });
    assert!(
        all_closed,
        "0.95 hogs must drive every node out of availability"
    );

    c.submit(job(5));
    c.run_ticks(minutes(10));
    assert_eq!(c.stats().queued, 1, "job must wait in the cluster queue");
    assert_eq!(c.stats().dispatched, 0, "no node may accept it");
    assert!(c.jobs()[0].completed_at.is_none());
    assert!(
        c.has_outstanding_work(),
        "the job is still owed to the user"
    );
}

/// A re-queue storm: every placement immediately fails because a hog
/// arrives right after dispatch and the detector kills the guest. Jobs
/// must survive repeated kill/re-queue cycles and finish once the
/// storm passes.
#[test]
fn requeue_storm_conserves_jobs_until_nodes_recover() {
    let machines = vec![Machine::default_linux(), Machine::default_linux()];
    let mut c = Cluster::new(
        machines,
        ControllerConfig::default(),
        Box::new(RoundRobinPlacement::default()),
    );
    c.run_ticks(secs(6));
    let jobs = 2;
    for _ in 0..jobs {
        c.submit(job(120));
    }

    for round in 0..2 {
        let placed = run_until(&mut c, minutes(10), |c| {
            (0..c.len()).all(|i| c.node(i).guest_running())
        });
        assert!(placed, "round {round}: both jobs must be (re-)placed");
        // The storm hits: heavy host load lands on every node at once.
        let pids: Vec<_> = (0..c.len())
            .map(|i| {
                c.node_mut(i)
                    .machine_mut()
                    .spawn(synthetic::host_process("storm", 0.97))
            })
            .collect();
        let killed = run_until(&mut c, minutes(15), |c| {
            (0..c.len()).all(|i| !c.node(i).guest_running()) && c.stats().queued == jobs
        });
        assert!(
            killed,
            "round {round}: every guest must be killed and re-queued"
        );
        let restarts: u32 = c.jobs().iter().map(|j| j.restarts).sum();
        assert_eq!(
            restarts as u64,
            c.stats().terminated,
            "every kill is a restart"
        );
        assert!(
            restarts as usize >= jobs * (round + 1),
            "each round re-queues every job"
        );
        assert!(c.jobs().iter().all(|j| j.completed_at.is_none()));
        // The storm passes; the nodes recover after the harvest delay.
        for (i, pid) in pids.into_iter().enumerate() {
            c.node_mut(i)
                .machine_mut()
                .kill(pid)
                .expect("storm process exists");
        }
    }

    c.run_until_drained(minutes(60));
    let finished = c.jobs().iter().filter(|j| j.completed_at.is_some()).count();
    assert_eq!(finished, jobs, "all jobs complete once the storm is over");
    assert!(
        c.jobs().iter().all(|j| j.restarts >= 2),
        "survived at least two kills each"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every submitted job is accounted for at all times: finished,
    /// queued, or in flight — none lost, none duplicated.
    #[test]
    fn jobs_are_conserved(
        loads in prop::collection::vec(0.0f64..0.5, 1..4),
        jobs in 1usize..8,
        strategy in 0u8..3,
        work in 2u64..20,
    ) {
        let machines: Vec<Machine> = loads
            .iter()
            .map(|&l| {
                let mut m = Machine::default_linux();
                if l > 0.02 {
                    m.spawn(synthetic::host_process("u", l));
                }
                m
            })
            .collect();
        let placement: Box<dyn fgcs::core::cluster::Placement> = match strategy {
            0 => Box::new(RandomPlacement::new(9)),
            1 => Box::new(RoundRobinPlacement::default()),
            _ => Box::new(LeastLoadedPlacement),
        };
        let mut c = Cluster::new(machines, ControllerConfig::default(), placement);
        c.run_ticks(secs(6));
        for _ in 0..jobs {
            c.submit(job(work));
        }
        // Check the invariant at several points during the run.
        for _ in 0..6 {
            c.run_ticks(secs(30));
            let finished = c.jobs().iter().filter(|j| j.completed_at.is_some()).count();
            let queued = c.stats().queued;
            let in_flight = (0..c.len())
                .filter(|&i| c.node(i).guest_running() || c.node(i).queue_len() > 0)
                .count();
            prop_assert!(
                finished + queued + in_flight >= jobs
                    && finished + queued + in_flight <= jobs + c.len(),
                "finished {finished} queued {queued} in-flight {in_flight} of {jobs}"
            );
        }
        c.run_until_drained(minutes(30));
        let finished = c.jobs().iter().filter(|j| j.completed_at.is_some()).count();
        prop_assert_eq!(finished, jobs, "all jobs complete on calm machines");
        prop_assert_eq!(c.stats().completed as usize, jobs);
    }

    /// Job records are internally consistent after any run.
    #[test]
    fn job_records_are_consistent(
        jobs in 1usize..6,
        work in 2u64..15,
        hog_load in 0.0f64..0.95,
    ) {
        let mut busy = Machine::default_linux();
        if hog_load > 0.02 {
            busy.spawn(synthetic::host_process("hog", hog_load));
        }
        let machines = vec![busy, Machine::default_linux()];
        let mut c = Cluster::new(
            machines,
            ControllerConfig::default(),
            Box::new(RoundRobinPlacement::default()),
        );
        c.run_ticks(secs(6));
        for _ in 0..jobs {
            c.submit(job(work));
        }
        c.run_until_drained(minutes(60));
        let terminations = c.stats().terminated;
        let restarts: u32 = c.jobs().iter().map(|j| j.restarts).sum();
        prop_assert_eq!(restarts as u64, terminations, "every kill is a restart");
        for j in c.jobs() {
            if let Some(done) = j.completed_at {
                prop_assert!(done > j.submitted_at, "{j:?}");
                prop_assert!(j.response().unwrap() >= secs(work), "{j:?}");
            }
        }
    }
}
