//! Property-based tests of the cluster layer: job conservation and
//! record consistency under arbitrary node mixes and batch sizes.

use fgcs::core::cluster::{Cluster, LeastLoadedPlacement, RandomPlacement, RoundRobinPlacement};
use fgcs::core::controller::ControllerConfig;
use fgcs::sim::machine::Machine;
use fgcs::sim::proc::{Demand, MemSpec, ProcClass, ProcSpec};
use fgcs::sim::time::{minutes, secs};
use fgcs::sim::workloads::synthetic;
use proptest::prelude::*;

fn job(work_secs: u64) -> ProcSpec {
    ProcSpec::new(
        "job",
        ProcClass::Guest,
        0,
        Demand::CpuBound { total_work: Some(secs(work_secs)) },
        MemSpec::tiny(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every submitted job is accounted for at all times: finished,
    /// queued, or in flight — none lost, none duplicated.
    #[test]
    fn jobs_are_conserved(
        loads in prop::collection::vec(0.0f64..0.5, 1..4),
        jobs in 1usize..8,
        strategy in 0u8..3,
        work in 2u64..20,
    ) {
        let machines: Vec<Machine> = loads
            .iter()
            .map(|&l| {
                let mut m = Machine::default_linux();
                if l > 0.02 {
                    m.spawn(synthetic::host_process("u", l));
                }
                m
            })
            .collect();
        let placement: Box<dyn fgcs::core::cluster::Placement> = match strategy {
            0 => Box::new(RandomPlacement::new(9)),
            1 => Box::new(RoundRobinPlacement::default()),
            _ => Box::new(LeastLoadedPlacement),
        };
        let mut c = Cluster::new(machines, ControllerConfig::default(), placement);
        c.run_ticks(secs(6));
        for _ in 0..jobs {
            c.submit(job(work));
        }
        // Check the invariant at several points during the run.
        for _ in 0..6 {
            c.run_ticks(secs(30));
            let finished = c.jobs().iter().filter(|j| j.completed_at.is_some()).count();
            let queued = c.stats().queued;
            let in_flight = (0..c.len())
                .filter(|&i| c.node(i).guest_running() || c.node(i).queue_len() > 0)
                .count();
            prop_assert!(
                finished + queued + in_flight >= jobs
                    && finished + queued + in_flight <= jobs + c.len(),
                "finished {finished} queued {queued} in-flight {in_flight} of {jobs}"
            );
        }
        c.run_until_drained(minutes(30));
        let finished = c.jobs().iter().filter(|j| j.completed_at.is_some()).count();
        prop_assert_eq!(finished, jobs, "all jobs complete on calm machines");
        prop_assert_eq!(c.stats().completed as usize, jobs);
    }

    /// Job records are internally consistent after any run.
    #[test]
    fn job_records_are_consistent(
        jobs in 1usize..6,
        work in 2u64..15,
        hog_load in 0.0f64..0.95,
    ) {
        let mut busy = Machine::default_linux();
        if hog_load > 0.02 {
            busy.spawn(synthetic::host_process("hog", hog_load));
        }
        let machines = vec![busy, Machine::default_linux()];
        let mut c = Cluster::new(
            machines,
            ControllerConfig::default(),
            Box::new(RoundRobinPlacement::default()),
        );
        c.run_ticks(secs(6));
        for _ in 0..jobs {
            c.submit(job(work));
        }
        c.run_until_drained(minutes(60));
        let terminations = c.stats().terminated;
        let restarts: u32 = c.jobs().iter().map(|j| j.restarts).sum();
        prop_assert_eq!(restarts as u64, terminations, "every kill is a restart");
        for j in c.jobs() {
            if let Some(done) = j.completed_at {
                prop_assert!(done > j.submitted_at, "{j:?}");
                prop_assert!(j.response().unwrap() >= secs(work), "{j:?}");
            }
        }
    }
}
