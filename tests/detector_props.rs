//! Property-based tests of the unavailability detector: for *any*
//! observation sequence, the detector's outputs must satisfy the
//! structural invariants of the five-state model.

use fgcs::core::detector::{Detector, DetectorConfig, EventEdge};
use fgcs::core::events::EventLog;
use fgcs::core::model::{AvailState, Thresholds};
use fgcs::core::monitor::Observation;
use proptest::prelude::*;

fn config() -> DetectorConfig {
    DetectorConfig {
        thresholds: Thresholds::LINUX_TESTBED,
        guest_working_set_mb: 64,
        spike_tolerance: 60,
        harvest_delay: 300,
        max_silence: None,
    }
}

prop_compose! {
    fn arb_observation()(
        load in 0.0f64..=1.0,
        mem in 0u32..2048,
        alive in prop::bool::weighted(0.95),
    ) -> Observation {
        Observation { host_load: load, free_mem_mb: mem, alive }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Edges alternate strictly Started/Ended with matching causes and
    /// non-decreasing timestamps, whatever the input.
    #[test]
    fn edges_are_well_formed(observations in prop::collection::vec(arb_observation(), 1..300)) {
        let mut d = Detector::new(config());
        let mut open: Option<fgcs::core::model::FailureCause> = None;
        let mut last_t = 0u64;
        for (i, obs) in observations.iter().enumerate() {
            let t = i as u64 * 15;
            let step = d.observe(t, obs);
            for e in &step.edges {
                match *e {
                    EventEdge::Started { cause, at } => {
                        prop_assert!(open.is_none(), "nested start");
                        prop_assert!(at >= last_t);
                        open = Some(cause);
                    }
                    EventEdge::Ended { cause, at, calm_from } => {
                        prop_assert_eq!(open.take(), Some(cause), "mismatched end");
                        prop_assert!(at >= last_t);
                        prop_assert!(calm_from <= at, "calm after harvest");
                    }
                }
            }
            last_t = t;
            // State and openness agree.
            prop_assert_eq!(d.state().is_failure(), open.is_some());
        }
    }

    /// The event log accepts every detector stream, and availability
    /// intervals plus unavailability durations exactly tile the span.
    #[test]
    fn events_and_intervals_tile_time(observations in prop::collection::vec(arb_observation(), 1..300)) {
        let mut d = Detector::new(config());
        let mut log = EventLog::new();
        let mut end_t = 0;
        for (i, obs) in observations.iter().enumerate() {
            let t = i as u64 * 15;
            log.extend(d.observe(t, obs).edges);
            end_t = t + 15;
        }
        let intervals = log.availability_intervals(0, end_t);
        let avail: u64 = intervals.iter().map(|(s, e)| e - s).sum();
        let unavail: u64 = log
            .events()
            .iter()
            .map(|e| e.end.unwrap_or(end_t).min(end_t).saturating_sub(e.start))
            .sum();
        prop_assert_eq!(avail + unavail, end_t);
        // Intervals are sorted, disjoint, non-empty.
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0);
        }
        for (s, e) in intervals {
            prop_assert!(s < e);
        }
    }

    /// A dead machine is *always* S5, regardless of history.
    #[test]
    fn dead_machine_is_s5(observations in prop::collection::vec(arb_observation(), 0..100)) {
        let mut d = Detector::new(config());
        for (i, obs) in observations.iter().enumerate() {
            d.observe(i as u64 * 15, obs);
        }
        let t = observations.len() as u64 * 15;
        d.observe(t, &Observation::dead());
        // Either the machine was already unavailable for another cause
        // (the cause changes on the next dead sample) or it is S5 now.
        d.observe(t + 15, &Observation::dead());
        prop_assert_eq!(d.state(), AvailState::S5);
    }

    /// While the machine is available, the reported state matches the
    /// threshold classification of the most recent calm load sample.
    #[test]
    fn available_state_tracks_load_band(loads in prop::collection::vec(0.0f64..=0.6, 1..100)) {
        let mut d = Detector::new(config());
        for (i, &load) in loads.iter().enumerate() {
            let obs = Observation { host_load: load, free_mem_mb: 512, alive: true };
            let step = d.observe(i as u64 * 15, &obs);
            // Loads stay at or below Th2, so no failure can ever occur.
            prop_assert!(step.state.is_available());
            let expect = if load < 0.2 { AvailState::S1 } else { AvailState::S2 };
            prop_assert_eq!(step.state, expect);
        }
    }

    /// Spikes shorter than the tolerance never produce an event.
    #[test]
    fn short_spikes_never_fail(
        spike_len in 1usize..4, // 15-45 s of >Th2 load, tolerance is 60 s
        background in 0.0f64..=0.5,
    ) {
        let mut d = Detector::new(config());
        let mut t = 0u64;
        let mut step_at = |d: &mut Detector, load: f64| {
            let s = d.observe(t, &Observation { host_load: load, free_mem_mb: 512, alive: true });
            t += 15;
            s
        };
        for _ in 0..10 {
            let s = step_at(&mut d, background);
            prop_assert!(s.edges.is_empty());
        }
        for _ in 0..spike_len {
            let s = step_at(&mut d, 0.95);
            prop_assert!(s.edges.is_empty(), "spike of {spike_len} samples failed early");
        }
        let s = step_at(&mut d, background);
        prop_assert!(s.edges.is_empty());
        prop_assert!(d.state().is_available());
    }
}
