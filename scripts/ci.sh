#!/usr/bin/env bash
# Tier-1 gate plus cheap end-to-end smoke checks. Everything here must
# stay fast enough to run on every change.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== experiment smoke (table1 + fig1a + faults, reduced scale) =="
# Run from a scratch dir: fgcs-exp writes results/ relative to the cwd,
# and the reduced-scale output must not clobber the committed artifacts.
# The faults run doubles as the fault-injection reconciliation gate: the
# experiment asserts internally that the zero-rate injection reproduces
# the clean trace bit-for-bit and that every quality report matches the
# injected fault counts, so a drifting harness fails this smoke.
exp_bin="$PWD/target/release/fgcs-exp"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for e in table1 fig1a faults; do
    (cd "$smoke_dir" && "$exp_bin" "$e" --quick > /dev/null)
done
# The fault matrix must actually have produced its drift report, with one
# row per fault scale.
fm="$smoke_dir/results/fault_matrix.csv"
test -f "$fm" || { echo "missing $fm" >&2; exit 1; }
rows=$(($(wc -l < "$fm") - 1))
[ "$rows" -eq 5 ] || { echo "fault_matrix.csv: expected 5 scale rows, got $rows" >&2; exit 1; }

echo "== availability-service smoke (X12 serve, reduced scale) =="
# Server + load generator over localhost TCP. The experiment asserts the
# accounting identities internally (sent == ingested + shed +
# decode-rejected, one reply per frame); the smoke additionally checks
# that a clean stream decoded fully and that availability queries were
# actually answered through the wire.
(cd "$smoke_dir" && "$exp_bin" serve --quick > serve.out)
sv="$smoke_dir/results/serve.csv"
test -f "$sv" || { echo "missing $sv" >&2; exit 1; }
test -f "$smoke_dir/BENCH_serve.json" || { echo "missing BENCH_serve.json" >&2; exit 1; }
# serve.csv: phase,...,shed_batches,decode_errors,queries_answered
clean_row=$(grep '^clean,' "$sv") || { echo "serve.csv: no clean row" >&2; exit 1; }
dec=$(echo "$clean_row" | cut -d, -f10)
ans=$(echo "$clean_row" | cut -d, -f11)
[ "$dec" -eq 0 ] || { echo "serve smoke: clean phase had $dec decode errors" >&2; exit 1; }
[ "$ans" -gt 0 ] || { echo "serve smoke: no availability queries answered" >&2; exit 1; }
# The fan-in scaling phase must have produced its per-backend curve, both
# in the smoke run and in the committed benchmark artifact.
for bj in "$smoke_dir/BENCH_serve.json" BENCH_serve.json; do
    grep -q '"scaling"' "$bj" \
        || { echo "$bj: missing \"scaling\" section (X12 fan-in phase)" >&2; exit 1; }
done
test -f "$smoke_dir/results/serve_scaling.csv" \
    || { echo "missing serve_scaling.csv" >&2; exit 1; }

echo "== epoll backend smoke (fgcs-serve + fgcs-smoke over localhost) =="
# Drive the readiness-loop backend through a real process boundary: a
# server on a free port with auth enabled, probed by fgcs-smoke (authed
# batch, forced reconnect mid-stream, stats query, and one wrong-token
# rejection). The server runs until we close its stdin.
serve_fifo="$smoke_dir/serve.stdin"
mkfifo "$serve_fifo"
./target/release/fgcs-serve --addr 127.0.0.1:0 --backend epoll \
    --auth-token ci-smoke-token \
    < "$serve_fifo" > "$smoke_dir/serve_addr.out" 2> "$smoke_dir/serve_epoll.log" &
serve_pid=$!
exec 9> "$serve_fifo"
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve_addr.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "fgcs-serve never reported its address" >&2; exit 1; }
./target/release/fgcs-smoke --addr "$addr" --token ci-smoke-token
exec 9>&-
wait "$serve_pid"
grep -q 'backend=epoll' "$smoke_dir/serve_epoll.log" \
    || { echo "fgcs-serve did not run the epoll backend" >&2; exit 1; }

echo "== sim throughput smoke (quick mode) =="
FGCS_BENCH_QUICK=1 cargo bench -p fgcs-bench --bench sim_throughput

echo "ci.sh: all green"
