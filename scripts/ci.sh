#!/usr/bin/env bash
# Tier-1 gate plus cheap end-to-end smoke checks. Everything here must
# stay fast enough to run on every change.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== experiment smoke (table1 + fig1a, reduced scale) =="
# Run from a scratch dir: fgcs-exp writes results/ relative to the cwd,
# and the reduced-scale output must not clobber the committed artifacts.
exp_bin="$PWD/target/release/fgcs-exp"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for e in table1 fig1a; do
    (cd "$smoke_dir" && "$exp_bin" "$e" --quick > /dev/null)
done

echo "== sim throughput smoke (quick mode) =="
FGCS_BENCH_QUICK=1 cargo bench -p fgcs-bench --bench sim_throughput

echo "ci.sh: all green"
