#!/usr/bin/env bash
# Tier-1 gate plus cheap end-to-end smoke checks. Everything here must
# stay fast enough to run on every change.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== build (release) =="
# --workspace: the smokes below run member binaries (fgcs-exp,
# fgcs-serve, fgcs-smoke); a plain build only covers the root package.
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== experiment smoke (table1 + fig1a + faults, reduced scale) =="
# Run from a scratch dir: fgcs-exp writes results/ relative to the cwd,
# and the reduced-scale output must not clobber the committed artifacts.
# The faults run doubles as the fault-injection reconciliation gate: the
# experiment asserts internally that the zero-rate injection reproduces
# the clean trace bit-for-bit and that every quality report matches the
# injected fault counts, so a drifting harness fails this smoke.
exp_bin="$PWD/target/release/fgcs-exp"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for e in table1 fig1a faults; do
    (cd "$smoke_dir" && "$exp_bin" "$e" --quick > /dev/null)
done
# The fault matrix must actually have produced its drift report, with one
# row per fault scale.
fm="$smoke_dir/results/fault_matrix.csv"
test -f "$fm" || { echo "missing $fm" >&2; exit 1; }
rows=$(($(wc -l < "$fm") - 1))
[ "$rows" -eq 5 ] || { echo "fault_matrix.csv: expected 5 scale rows, got $rows" >&2; exit 1; }

echo "== availability-service smoke (X12 serve, reduced scale) =="
# Server + load generator over localhost TCP. The experiment asserts the
# accounting identities internally (sent == ingested + shed +
# decode-rejected, one reply per frame); the smoke additionally checks
# that a clean stream decoded fully and that availability queries were
# actually answered through the wire.
(cd "$smoke_dir" && "$exp_bin" serve --quick > serve.out)
sv="$smoke_dir/results/serve.csv"
test -f "$sv" || { echo "missing $sv" >&2; exit 1; }
test -f "$smoke_dir/BENCH_serve.json" || { echo "missing BENCH_serve.json" >&2; exit 1; }
# serve.csv: phase,...,shed_batches,decode_errors,queries_answered
clean_row=$(grep '^clean,' "$sv") || { echo "serve.csv: no clean row" >&2; exit 1; }
dec=$(echo "$clean_row" | cut -d, -f10)
ans=$(echo "$clean_row" | cut -d, -f11)
[ "$dec" -eq 0 ] || { echo "serve smoke: clean phase had $dec decode errors" >&2; exit 1; }
[ "$ans" -gt 0 ] || { echo "serve smoke: no availability queries answered" >&2; exit 1; }
# The fan-in scaling and multi-core phases must have produced their
# curves, both in the smoke run and in the committed benchmark artifact.
for bj in "$smoke_dir/BENCH_serve.json" BENCH_serve.json; do
    grep -q '"scaling"' "$bj" \
        || { echo "$bj: missing \"scaling\" section (X12 fan-in phase)" >&2; exit 1; }
    grep -q '"multicore"' "$bj" \
        || { echo "$bj: missing \"multicore\" section (X12 multi-core phase)" >&2; exit 1; }
done
test -f "$smoke_dir/results/serve_scaling.csv" \
    || { echo "missing serve_scaling.csv" >&2; exit 1; }
test -f "$smoke_dir/results/serve_multicore.csv" \
    || { echo "missing serve_multicore.csv" >&2; exit 1; }

echo "== multi-core benchmark gate (committed BENCH_serve.json) =="
# The committed full-scale artifact must carry the multi-loop claim: at
# the gate rung (4096 conns, fixed offered load) 4 loops ingest >= 2x
# one loop, without giving the latency back (query p99 within 1.5x).
gate_num() {
    grep -o "\"$1\":[^,}]*" BENCH_serve.json | head -n 1 | cut -d: -f2
}
speedup=$(gate_num speedup)
p99_ratio=$(gate_num p99_ratio)
[ -n "$speedup" ] && [ -n "$p99_ratio" ] \
    || { echo "BENCH_serve.json: multicore gate lacks speedup/p99_ratio" >&2; exit 1; }
awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }' \
    || { echo "multicore gate: 4-loop speedup $speedup < 2.0x" >&2; exit 1; }
awk -v r="$p99_ratio" 'BEGIN { exit !(r <= 1.5) }' \
    || { echo "multicore gate: 4-loop query p99 ratio $p99_ratio > 1.5x" >&2; exit 1; }
echo "  4-loop vs 1-loop at the gate rung: ${speedup}x ingest, p99 ratio $p99_ratio"

echo "== cluster failover smoke (X13, kill-primary, automatic promotion) =="
# Two shards of real fgcs-serve processes (primary + replication
# follower each), a routed replay through ClusterClient, and a SIGKILL
# of shard 0's primary mid-replay. Nobody sends a Promote frame: the
# follower detects the dead primary on its own (missed pulls + expired
# lease) and self-promotes at a fresh epoch, and the router fails over
# with t > last_t resume. The binary asserts the tentpole claim
# internally (self-promotion happened with no operator step, zero
# records lost up to the acked seq, final state bit-identical to an
# unkilled single-server reference); the smoke re-checks the loss
# count, that a failover actually happened, that detection+promotion
# took measurable nonzero time, and that queries kept being answered
# from follower endpoints through the failover window.
cluster_bin="$PWD/target/release/fgcs-cluster"
(cd "$smoke_dir" && "$cluster_bin" --quick > cluster.out)
sc="$smoke_dir/results/serve_cluster.csv"
test -f "$sc" || { echo "missing $sc" >&2; exit 1; }
# serve_cluster.csv: phase,...,gap_ms,records_lost,retries,failovers,
#                    resumed_batches,skipped_samples,promote_ms,follower_reads
during_row=$(grep '^during,' "$sc") || { echo "serve_cluster.csv: no during row" >&2; exit 1; }
lost=$(echo "$during_row" | cut -d, -f9)
fo=$(echo "$during_row" | cut -d, -f11)
promote=$(echo "$during_row" | cut -d, -f14)
freads=$(echo "$during_row" | cut -d, -f15)
[ "$lost" -eq 0 ] || { echo "cluster smoke: $lost records lost across failover" >&2; exit 1; }
[ "$fo" -ge 1 ] || { echo "cluster smoke: router never failed over" >&2; exit 1; }
awk -v p="$promote" 'BEGIN { exit !(p > 0) }' \
    || { echo "cluster smoke: no self-promotion time recorded (promote_ms=$promote)" >&2; exit 1; }
[ "$freads" -ge 1 ] \
    || { echo "cluster smoke: no reads served from follower endpoints" >&2; exit 1; }
echo "  kill-only failover: self-promotion in ${promote} ms, $fo failover(s), $freads follower reads, 0 records lost"

echo "== cluster failover gate (committed BENCH_serve.json) =="
# The committed full-scale X13 artifact must carry the failover claim:
# zero records lost, the router actually failed over, unattended
# detection + self-promotion landed within the 2 s bound (the gap now
# *includes* that detection time — with lease 250 ms and 3 missed
# pulls the measured value sits around 1.1 s), reads were served from
# follower endpoints, and queries through the failover window stayed
# responsive.
c_lost=$(gate_num failover_records_lost)
c_fo=$(gate_num failover_count)
c_promote=$(gate_num failover_promote_ms)
c_gap=$(gate_num failover_gap_ms)
c_freads=$(gate_num follower_reads)
c_p99=$(gate_num during_query_p99_us)
[ -n "$c_lost" ] && [ -n "$c_fo" ] && [ -n "$c_promote" ] && [ -n "$c_gap" ] \
    && [ -n "$c_freads" ] && [ -n "$c_p99" ] \
    || { echo "BENCH_serve.json: missing X13 cluster gate keys" >&2; exit 1; }
[ "$c_lost" -eq 0 ] || { echo "cluster gate: $c_lost records lost" >&2; exit 1; }
[ "$c_fo" -ge 1 ] || { echo "cluster gate: no failover recorded" >&2; exit 1; }
awk -v p="$c_promote" 'BEGIN { exit !(p > 0 && p <= 2000.0) }' \
    || { echo "cluster gate: self-promotion ${c_promote} ms outside (0, 2000] ms" >&2; exit 1; }
awk -v g="$c_gap" 'BEGIN { exit !(g <= 2000.0) }' \
    || { echo "cluster gate: failover gap ${c_gap} ms > 2000 ms" >&2; exit 1; }
[ "$c_freads" -ge 1 ] \
    || { echo "cluster gate: no follower reads recorded" >&2; exit 1; }
awk -v p="$c_p99" 'BEGIN { exit !(p <= 50000.0) }' \
    || { echo "cluster gate: during-failover query p99 ${c_p99} us > 50 ms" >&2; exit 1; }
echo "  self-promotion ${c_promote} ms, failover gap ${c_gap} ms, ${c_freads} follower reads, during-failover query p99 ${c_p99} us, 0 records lost"

echo "== scheduler smoke (X14 sched, reduced scale) =="
# fgcs-sched over a live 2-shard cluster: three policies replay the
# same arrivals in lockstep against identical availability traces. The
# experiment asserts the hard claims internally (quotas never exceeded,
# predictive strictly fewer evictions AND less wasted work than both
# baselines, equal-or-better completed work); the smoke re-checks the
# headline numbers from the CSV it wrote. Runs after the serve smoke
# because sched splices its gate into the same BENCH_serve.json.
(cd "$smoke_dir" && "$exp_bin" sched --quick > sched.out)
se="$smoke_dir/results/sched_eval.csv"
test -f "$se" || { echo "missing $se" >&2; exit 1; }
# sched_eval.csv: policy,submitted,completed,completed_work_secs,
#                 evictions,migrations,wasted_secs,rejected,quota_violations
for p in predictive greedy random; do
    grep -q "^$p," "$se" || { echo "sched_eval.csv: no $p row" >&2; exit 1; }
done
s_viol=$(tail -n +2 "$se" | cut -d, -f9 | sort -u)
[ "$s_viol" = "0" ] || { echo "sched smoke: fairshare quota violated" >&2; exit 1; }
s_pred=$(grep '^predictive,' "$se" | cut -d, -f5)
s_rand=$(grep '^random,' "$se" | cut -d, -f5)
[ "$s_pred" -lt "$s_rand" ] \
    || { echo "sched smoke: predictive evictions $s_pred not < random $s_rand" >&2; exit 1; }
grep -q '"sched"' "$smoke_dir/BENCH_serve.json" \
    || { echo "smoke BENCH_serve.json: sched gate never spliced" >&2; exit 1; }
echo "  quotas held, predictive $s_pred evictions vs random $s_rand"

echo "== scheduler gate (committed BENCH_serve.json) =="
# The committed full-scale X14 artifact must carry the tentpole claim:
# prediction-driven placement strictly beats BOTH baselines on
# evictions and wasted work, completes at least as much work, and the
# fairshare ledger never admitted past quota.
g_viol=$(gate_num quota_violations)
g_pe=$(gate_num pred_evictions);  g_pw=$(gate_num pred_wasted_secs)
g_ge=$(gate_num greedy_evictions); g_gw=$(gate_num greedy_wasted_secs)
g_re=$(gate_num rand_evictions);   g_rw=$(gate_num rand_wasted_secs)
g_pc=$(gate_num pred_completed_work_secs)
g_gc=$(gate_num greedy_completed_work_secs)
g_rc=$(gate_num rand_completed_work_secs)
for v in "$g_viol" "$g_pe" "$g_pw" "$g_ge" "$g_gw" "$g_re" "$g_rw" \
         "$g_pc" "$g_gc" "$g_rc"; do
    [ -n "$v" ] || { echo "BENCH_serve.json: missing X14 sched gate keys" >&2; exit 1; }
done
[ "$g_viol" -eq 0 ] || { echo "sched gate: $g_viol quota violations" >&2; exit 1; }
[ "$g_pe" -lt "$g_ge" ] && [ "$g_pe" -lt "$g_re" ] \
    || { echo "sched gate: pred evictions $g_pe not < greedy $g_ge / random $g_re" >&2; exit 1; }
[ "$g_pw" -lt "$g_gw" ] && [ "$g_pw" -lt "$g_rw" ] \
    || { echo "sched gate: pred wasted $g_pw not < greedy $g_gw / random $g_rw" >&2; exit 1; }
[ "$g_pc" -ge "$g_gc" ] && [ "$g_pc" -ge "$g_rc" ] \
    || { echo "sched gate: pred completed work $g_pc below a baseline" >&2; exit 1; }
echo "  evictions pred/greedy/random: $g_pe/$g_ge/$g_re, wasted: $g_pw/$g_gw/$g_rw s"

echo "== fleet streaming smoke (X15, reduced scale) =="
# The experiment asserts internally: streaming == exact oracle on the
# lab trace, sketch quantile error within its runtime certificate (at
# production and stressed capacity), in-process worker-count
# bit-reproducibility, and the RSS budget. The smoke additionally
# re-runs the whole binary under a different worker count and requires
# byte-identical CSVs — the determinism claim checked end to end.
(cd "$smoke_dir" && FGCS_PAR_WORKERS=1 "$exp_bin" fleet --quick > fleet.out)
fa="$smoke_dir/results/fleet_archetypes.csv"
test -f "$fa" || { echo "missing $fa" >&2; exit 1; }
rows=$(($(wc -l < "$fa") - 1))
[ "$rows" -eq 6 ] \
    || { echo "fleet_archetypes.csv: expected 5 archetypes + combined, got $rows rows" >&2; exit 1; }
cp "$fa" "$smoke_dir/fleet_archetypes.w1.csv"
cp "$smoke_dir/results/fleet_cdf.csv" "$smoke_dir/fleet_cdf.w1.csv"
(cd "$smoke_dir" && FGCS_PAR_WORKERS=3 "$exp_bin" fleet --quick > fleet2.out)
cmp -s "$fa" "$smoke_dir/fleet_archetypes.w1.csv" \
    || { echo "fleet smoke: fleet_archetypes.csv differs across worker counts" >&2; exit 1; }
cmp -s "$smoke_dir/results/fleet_cdf.csv" "$smoke_dir/fleet_cdf.w1.csv" \
    || { echo "fleet smoke: fleet_cdf.csv differs across worker counts" >&2; exit 1; }
grep -q '"sketch_within_bound":1' "$smoke_dir/BENCH_fleet.json" \
    || { echo "smoke BENCH_fleet.json: sketch error outside its certificate" >&2; exit 1; }
echo "  5 archetypes + combined, CSVs bit-identical across FGCS_PAR_WORKERS=1/3"

echo "== fleet gate (committed BENCH_fleet.json) =="
# The committed full-scale X15 artifact must carry the tentpole claim:
# the 100k-machine sweep fit the fixed RSS budget, the sketch honored
# its runtime-certified rank bound against the exact oracle (including
# the stressed-capacity tier where compaction actually runs), and the
# accumulators were bit-reproducible across worker counts.
fleet_num() {
    grep -o "\"$1\":[^,}]*" BENCH_fleet.json | head -n 1 | cut -d: -f2
}
f_machines=$(fleet_num fleet_machines)
f_peak=$(fleet_num peak_rss_mb)
f_budget=$(fleet_num rss_budget_mb)
f_inb=$(fleet_num sketch_within_bound)
f_repro=$(fleet_num repro_identical)
f_err=$(fleet_num stress_rank_err)
f_bound=$(fleet_num stress_rank_bound)
for v in "$f_machines" "$f_peak" "$f_budget" "$f_inb" "$f_repro" \
         "$f_err" "$f_bound"; do
    [ -n "$v" ] || { echo "BENCH_fleet.json: missing X15 gate keys" >&2; exit 1; }
done
[ "$f_machines" -ge 100000 ] \
    || { echo "fleet gate: only $f_machines machines (need >= 100000)" >&2; exit 1; }
[ "$f_peak" -le "$f_budget" ] \
    || { echo "fleet gate: peak RSS $f_peak MB over the $f_budget MB budget" >&2; exit 1; }
[ "$f_inb" -eq 1 ] || { echo "fleet gate: sketch error escaped its certificate" >&2; exit 1; }
[ "$f_repro" -eq 1 ] || { echo "fleet gate: not reproducible across worker counts" >&2; exit 1; }
awk -v e="$f_err" -v b="$f_bound" 'BEGIN { exit !(e <= b) }' \
    || { echo "fleet gate: stressed rank error $f_err > bound $f_bound" >&2; exit 1; }
echo "  $f_machines machines, peak RSS $f_peak MB <= $f_budget MB, stressed rank err $f_err <= $f_bound"

echo "== epoll backend smoke (fgcs-serve + fgcs-smoke over localhost) =="
# Drive the readiness-loop backend through a real process boundary: a
# server on a free port with auth enabled, probed by fgcs-smoke (authed
# batch, forced reconnect mid-stream, stats query, and one wrong-token
# rejection). The server runs until we close its stdin.
serve_fifo="$smoke_dir/serve.stdin"
mkfifo "$serve_fifo"
./target/release/fgcs-serve --addr 127.0.0.1:0 --backend epoll \
    --auth-token ci-smoke-token \
    < "$serve_fifo" > "$smoke_dir/serve_addr.out" 2> "$smoke_dir/serve_epoll.log" &
serve_pid=$!
exec 9> "$serve_fifo"
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve_addr.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "fgcs-serve never reported its address" >&2; exit 1; }
./target/release/fgcs-smoke --addr "$addr" --token ci-smoke-token
exec 9>&-
wait "$serve_pid"
grep -q 'backend=epoll' "$smoke_dir/serve_epoll.log" \
    || { echo "fgcs-serve did not run the epoll backend" >&2; exit 1; }

echo "== kill-and-restart snapshot smoke (both backends) =="
# The crash-safety gate: SIGKILL fgcs-serve mid-replay, restart it on
# the same snapshot directory, resume the replay (strictly past each
# machine's restored last_t, via fgcs-smoke --resume), shut down
# gracefully, and diff the final snapshot's deterministic lines
# (machine/record/transition) against an uninterrupted run's. The
# header and counters lines legitimately differ (elapsed time, batch
# boundaries after the resume), so they are excluded from the diff.
#
# $1=backend  $2=snapshot dir  $3=log tag  $4=kill mid-replay (yes/no)
# $5=resume ("resume" or "")  $6=extra fgcs-serve args  $7=extra
# fgcs-smoke args (both word-split, e.g. "--loops 4")
run_replay_server() {
    local backend="$1" snapdir="$2" tag="$3" kill_mid="$4"
    local resume="${5:-}" serve_extra="${6:-}" smoke_extra="${7:-}"
    local fifo="$smoke_dir/$tag.stdin" out="$smoke_dir/$tag.out"
    mkfifo "$fifo"
    # shellcheck disable=SC2086  # extras are intentionally word-split
    ./target/release/fgcs-serve --addr 127.0.0.1:0 --backend "$backend" \
        --snapshot-dir "$snapdir" --snapshot-interval 50 --reuse-addr \
        $serve_extra \
        < "$fifo" > "$out" 2> "$smoke_dir/$tag.log" &
    local pid=$!
    exec 8> "$fifo"
    local addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$out")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "$tag: fgcs-serve never reported its address" >&2; exit 1; }
    if [ "$kill_mid" = yes ]; then
        # First half of the wave, then wait for a periodic checkpoint
        # (50 ms interval) and SIGKILL — no graceful anything.
        # shellcheck disable=SC2086
        ./target/release/fgcs-smoke --addr "$addr" --replay 3:200 $smoke_extra > /dev/null
        sleep 0.4
        kill -9 "$pid"
        exec 8>&-
        rm -f "$fifo"
        wait "$pid" 2> /dev/null || true
    else
        # shellcheck disable=SC2086
        ./target/release/fgcs-smoke --addr "$addr" --replay 3:400 \
            ${resume:+--resume} $smoke_extra > /dev/null
        exec 8>&-  # EOF on stdin: graceful shutdown, final checkpoint
        rm -f "$fifo"
        wait "$pid"
    fi
}
snapshot_fingerprint() {
    # The deterministic payload of the newest snapshot in $1.
    local newest
    newest=$(ls "$1"/snap-*.snap | sort | tail -n 1)
    grep -E '"kind":"(machine|record|transition)"' "$newest"
}
for backend in threads epoll; do
    base="$smoke_dir/snap-$backend"
    # Uninterrupted reference: the full wave through one server life.
    run_replay_server "$backend" "$base-ref" "ref-$backend" no
    # Crash run: half the wave, SIGKILL, restart on the same snapshot
    # dir, resume the replay, graceful shutdown.
    run_replay_server "$backend" "$base-crash" "crash1-$backend" yes
    run_replay_server "$backend" "$base-crash" "crash2-$backend" no resume
    snapshot_fingerprint "$base-ref"   > "$smoke_dir/fp-ref-$backend"
    snapshot_fingerprint "$base-crash" > "$smoke_dir/fp-crash-$backend"
    diff "$smoke_dir/fp-ref-$backend" "$smoke_dir/fp-crash-$backend" \
        || { echo "$backend: snapshot after kill+restart+resume diverges from the uninterrupted run" >&2; exit 1; }
    echo "  $backend: kill/restart snapshot matches the uninterrupted run"
done

echo "== kill-and-restart snapshot smoke (epoll, 4 event loops) =="
# Same crash gate, but with the server running 4 SO_REUSEPORT event
# loops and the replay spread over 4 concurrent connections — ingest
# crosses the per-loop forwarding rings while periodic checkpoints are
# being cut. The final snapshot must still be bit-identical to the
# single-loop epoll reference from the loop above: loop count is a
# deployment knob, not a semantic one.
ml_base="$smoke_dir/snap-epoll-ml"
run_replay_server epoll "$ml_base-crash" crash1-epoll-ml yes "" "--loops 4" "--loops 4"
run_replay_server epoll "$ml_base-crash" crash2-epoll-ml no resume "--loops 4" "--loops 4"
snapshot_fingerprint "$ml_base-crash" > "$smoke_dir/fp-crash-epoll-ml"
diff "$smoke_dir/fp-ref-epoll" "$smoke_dir/fp-crash-epoll-ml" \
    || { echo "epoll --loops 4: snapshot after kill+restart+resume diverges from the single-loop run" >&2; exit 1; }
echo "  epoll --loops 4: kill/restart snapshot matches the single-loop run"

echo "== sim throughput smoke (quick mode) =="
FGCS_BENCH_QUICK=1 cargo bench -p fgcs-bench --bench sim_throughput

echo "== fleet path smoke (quick mode) =="
FGCS_BENCH_QUICK=1 cargo bench -p fgcs-bench --bench fleet

echo "ci.sh: all green"
