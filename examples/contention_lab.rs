//! Contention lab: reproduce the paper's §3.2 offline experiments at
//! small scale — measure how much a guest process slows a host group and
//! derive the two thresholds Th1/Th2.
//!
//! ```text
//! cargo run --release --example contention_lab
//! ```

use fgcs::core::calibrate::{calibrate, CalibrationConfig};
use fgcs::core::contention::{measure_group, ContentionConfig};
use fgcs::core::model::NOTICEABLE_SLOWDOWN;
use fgcs::sim::machine::MachineConfig;
use fgcs::sim::workloads::synthetic;

fn main() {
    let cfg = ContentionConfig::quick();
    let machine = MachineConfig::default();

    println!("single host process vs CPU-bound guest (reduction of host CPU usage):\n");
    println!(
        "{:>4}  {:>12}  {:>12}",
        "LH", "guest nice 0", "guest nice 19"
    );
    for i in 1..=9 {
        let lh = i as f64 / 10.0;
        let hosts = [synthetic::host_process("host", lh)];
        let eq = measure_group(&machine, &hosts, Some(&synthetic::guest_process(0)), &cfg);
        let low = measure_group(&machine, &hosts, Some(&synthetic::guest_process(19)), &cfg);
        let mark = |r: f64| {
            if r > NOTICEABLE_SLOWDOWN {
                " <-- noticeable"
            } else {
                ""
            }
        };
        println!(
            "{:>4.1}  {:>11.1}%  {:>11.1}%{}{}",
            lh,
            eq.reduction_rate * 100.0,
            low.reduction_rate * 100.0,
            mark(eq.reduction_rate),
            mark(low.reduction_rate),
        );
    }

    println!("\nderiving thresholds from the full sweep (reduced grid)...");
    let cal = calibrate(&CalibrationConfig::quick());
    println!(
        "Th1 = {:.2} (guest must drop to lowest priority above this host load)",
        cal.thresholds.th1
    );
    println!(
        "Th2 = {:.2} (guest must be terminated above this host load)",
        cal.thresholds.th2
    );
    println!("paper's Linux testbed: Th1 = 0.20, Th2 = 0.60");
}
