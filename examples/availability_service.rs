//! Availability service: the paper's monitor → detector → predictor
//! loop across a real TCP boundary. Starts the server in a thread,
//! streams one lab machine's trace through the wire protocol, then asks
//! the live server whether the machine will stay available for a
//! 30-minute job and where it would place one.
//!
//! ```text
//! cargo run --release --example availability_service
//! ```

use fgcs::service::{ClientConfig, Server, ServiceClient, ServiceConfig};
use fgcs::testbed::runner::TestbedConfig;
use fgcs::testbed::MachinePlan;
use fgcs::wire::{Frame, SampleLoad, WireSample};

fn main() -> std::io::Result<()> {
    // One lab machine, a few simulated days of its local user's load.
    let mut cfg = TestbedConfig::tiny();
    cfg.lab.machines = 1;
    cfg.lab.days = 4;

    let server = Server::start(ServiceConfig::for_testbed(&cfg))?;
    let addr = server.local_addr().to_string();
    println!("server listening on {addr}");

    // Stream machine 0's trace over the wire, batch by batch.
    let machine = 0u32;
    let plan = MachinePlan::generate(&cfg.lab, machine as usize);
    let mut client = ServiceClient::connect(ClientConfig::new(&addr))?;
    let mut batch: Vec<WireSample> = Vec::with_capacity(256);
    let mut sent = 0u64;
    for s in plan.samples() {
        batch.push(WireSample {
            t: s.t,
            load: SampleLoad::Direct(s.host_load),
            host_resident_mb: s.host_resident_mb,
            alive: s.alive,
        });
        if batch.len() == 256 {
            client.request(&Frame::SampleBatch {
                machine,
                samples: std::mem::take(&mut batch),
            })?;
            sent += 256;
        }
    }
    if !batch.is_empty() {
        sent += batch.len() as u64;
        client.request(&Frame::SampleBatch {
            machine,
            samples: batch,
        })?;
    }
    println!("streamed {sent} samples for machine {machine}");

    // Give the ingest workers a moment to drain the queue.
    while server.stats().ingested_samples < sent {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Will this machine stay available for a 30-minute job?
    let horizon = 1_800;
    match client.request(&Frame::QueryAvail { machine, horizon })? {
        Frame::AvailReply { state, prob, .. } => println!(
            "machine {machine}: state S{state}, P(no failure in next {} min) = {prob:.3}",
            horizon / 60
        ),
        other => println!("unexpected reply: tag {}", other.tag()),
    }

    // Where would the service place a 30-minute guest job right now?
    match client.request(&Frame::Place { job_len: horizon })? {
        Frame::PlaceReply {
            machine: Some(m),
            prob,
        } => {
            println!("placement: run it on machine {m} (survival estimate {prob:.3})")
        }
        Frame::PlaceReply { machine: None, .. } => {
            println!("placement: no machine is currently harvestable — hold the job")
        }
        other => println!("unexpected reply: tag {}", other.tag()),
    }

    server.shutdown();
    Ok(())
}
