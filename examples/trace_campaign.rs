//! Trace campaign: run a month-long synthetic lab testbed, persist the
//! trace to disk, read it back, and reproduce the paper's §5 analyses.
//!
//! ```text
//! cargo run --release --example trace_campaign
//! ```

use std::io::BufReader;

use fgcs::testbed::analysis;
use fgcs::testbed::calendar::DayType;
use fgcs::testbed::runner::{run_testbed, TestbedConfig};
use fgcs::testbed::trace::Trace;

fn main() {
    let mut cfg = TestbedConfig::default();
    cfg.lab.machines = 10;
    cfg.lab.days = 28;
    println!(
        "tracing {} machines for {} days (sample period {} s)...",
        cfg.lab.machines, cfg.lab.days, cfg.lab.sample_period
    );
    let trace = run_testbed(&cfg);
    println!(
        "collected {} unavailability occurrences",
        trace.records.len()
    );

    // Persist and reload — the round trip a real deployment would do.
    let path = std::env::temp_dir().join("fgcs_trace_campaign.jsonl");
    trace
        .write_jsonl(std::fs::File::create(&path).expect("create trace file"))
        .expect("write trace");
    let trace = Trace::read_jsonl(BufReader::new(
        std::fs::File::open(&path).expect("open trace file"),
    ))
    .expect("parse trace");
    println!("trace round-tripped through {}", path.display());

    // Table 2.
    let t2 = analysis::table2(&trace);
    let (cpu, mem, urr) = t2.percentage_ranges();
    println!("\nunavailability by cause (per-machine ranges):");
    println!(
        "  total {}   cpu {} ({cpu}%)   memory {} ({mem}%)   urr {} ({urr}%)",
        t2.total, t2.cpu, t2.mem, t2.urr
    );
    println!(
        "  fraction of URR that are reboots: {:.0}%",
        t2.urr_reboot_fraction * 100.0
    );

    // Figure 6.
    let iv = analysis::intervals(&trace);
    println!("\navailability intervals:");
    for dt in [DayType::Weekday, DayType::Weekend] {
        println!(
            "  {dt}: mean {:.1} h, median {:.1} h, <5 min: {:.1}%",
            iv.mean_hours(dt),
            match dt {
                DayType::Weekday => iv.weekday.quantile(0.5).unwrap_or(0.0),
                DayType::Weekend => iv.weekend.quantile(0.5).unwrap_or(0.0),
            },
            iv.fraction_between(dt, 0.0, 5.0 / 60.0) * 100.0
        );
    }

    // Figure 7, abridged.
    let hourly = analysis::hourly(&trace);
    println!("\nweekday failures per hour (testbed-wide mean):");
    print!("  ");
    for (h, s) in hourly.weekday.iter() {
        print!("{h}:{:.0} ", s.mean());
    }
    println!();
    println!("  (the spike at hour 4 is updatedb on every machine)");

    // §5.3 regularity.
    let reg = analysis::regularity(&trace);
    println!(
        "\nacross-day pattern correlation: weekdays {:.2}, weekends {:.2} — \
         daily patterns repeat, so availability is predictable from history.",
        reg.weekday_correlation, reg.weekend_correlation
    );
}
