//! Quickstart: run a guest job on a simulated host machine under the
//! FGCS policy and watch the five-state model in action.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fgcs::core::controller::{Controller, ControllerConfig};
use fgcs::core::model::AvailState;
use fgcs::sim::machine::Machine;
use fgcs::sim::proc::{Demand, MemSpec, Phase, ProcClass, ProcSpec};
use fgcs::sim::time::secs;
use fgcs::sim::workloads::synthetic;

fn main() {
    // A host machine with a moderate interactive user (35% CPU)...
    let mut machine = Machine::default_linux();
    machine.spawn(synthetic::host_process("interactive-user", 0.35));
    // ...plus a heavy compile burst a minute in (90 s of near-full load).
    machine.spawn(ProcSpec::new(
        "compile-burst",
        ProcClass::Host,
        0,
        Demand::Phases {
            phases: vec![
                Phase {
                    busy: 1,
                    idle: secs(60),
                }, // quiet first
                Phase {
                    busy: secs(90),
                    idle: secs(3600),
                },
            ],
            repeat: false,
        },
        MemSpec::tiny(),
    ));

    // Submit a 3-minute compute-bound guest job through the controller;
    // a job killed by unavailability is automatically resubmitted.
    let cfg = ControllerConfig {
        resubmit_on_failure: true,
        ..ControllerConfig::default()
    };
    let mut ctl = Controller::new(cfg, machine);
    ctl.submit(ProcSpec::new(
        "monte-carlo",
        ProcClass::Guest,
        0,
        Demand::CpuBound {
            total_work: Some(secs(180)),
        },
        MemSpec::resident(48),
    ));

    println!("t(s)  state  guest?  note");
    let mut last_state = None;
    for step in 0..400 {
        ctl.run_ticks(secs(2));
        let state = ctl.detector().state();
        if Some(state) != last_state || step % 15 == 0 {
            let note = match state {
                AvailState::S1 => "light host load: guest at default priority",
                AvailState::S2 => "heavy host load: guest reniced to 19",
                AvailState::S3 => "persistent overload: guest terminated (UEC)",
                AvailState::S4 => "memory thrashing: guest terminated (UEC)",
                AvailState::S5 => "machine revoked (URR)",
            };
            println!(
                "{:>4}  {}    {}    {}",
                (step + 1) * 2,
                state,
                if ctl.guest_running() { "yes" } else { "no " },
                note
            );
            last_state = Some(state);
        }
        if ctl.stats().completed > 0 {
            break;
        }
    }

    let s = ctl.stats();
    println!(
        "\njob lifecycle: started {}x, completed {}, terminated {}, suspended {}x, reniced {}x",
        s.started, s.completed, s.terminated, s.suspensions, s.renices
    );
    println!(
        "unavailability occurrences recorded: {}",
        ctl.event_log().events().len()
    );
    for e in ctl.event_log().events() {
        println!("  {:?}", e);
    }
}
