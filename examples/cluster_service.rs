//! Cluster service: the iShare cycle-sharing service end-to-end on live
//! simulated machines — a shared job queue over per-machine FGCS
//! controllers, with load-aware placement.
//!
//! ```text
//! cargo run --release --example cluster_service
//! ```

use fgcs::core::cluster::{Cluster, LeastLoadedPlacement};
use fgcs::core::controller::ControllerConfig;
use fgcs::sim::machine::Machine;
use fgcs::sim::proc::{Demand, MemSpec, ProcClass, ProcSpec};
use fgcs::sim::time::{minutes, secs};
use fgcs::sim::workloads::synthetic;

fn main() {
    // Six lab machines with very different local users.
    let host_loads = [0.05, 0.15, 0.30, 0.45, 0.65, 0.85];
    let machines: Vec<Machine> = host_loads
        .iter()
        .map(|&load| {
            let mut m = Machine::default_linux();
            m.spawn(synthetic::host_process("local-user", load));
            m
        })
        .collect();

    let mut cluster = Cluster::new(
        machines,
        ControllerConfig::default(),
        Box::new(LeastLoadedPlacement),
    );

    // Let every monitor take its first samples.
    cluster.run_ticks(secs(10));

    // A batch of 18 five-minute compute jobs.
    for i in 0..18 {
        cluster.submit(ProcSpec::new(
            format!("task-{i}"),
            ProcClass::Guest,
            0,
            Demand::CpuBound {
                total_work: Some(minutes(5)),
            },
            MemSpec::resident(32),
        ));
    }
    println!("submitted 18 x 5-minute guest tasks to a 6-machine cluster");
    println!("(host loads: {host_loads:?})\n");

    let ticks = cluster.run_until_drained(minutes(240));
    let stats = cluster.stats();
    println!(
        "drained in {:.1} simulated minutes: {} completed, {} terminations, {} dispatches",
        ticks as f64 / minutes(1) as f64,
        stats.completed,
        stats.terminated,
        stats.dispatched,
    );
    println!(
        "mean job response: {:.1} minutes (raw compute time: 5.0)",
        stats.mean_response_ticks / minutes(1) as f64
    );

    println!("\nper-node outcome:");
    println!(
        "{:>5} {:>10} {:>10} {:>11} {:>9}",
        "node", "host load", "completed", "terminated", "failures"
    );
    for (i, &load) in host_loads.iter().enumerate() {
        let s = cluster.node(i).stats();
        println!(
            "{:>5} {:>10.2} {:>10} {:>11} {:>9}",
            i,
            load,
            s.completed,
            s.terminated,
            cluster.node(i).event_log().events().len(),
        );
    }
    println!(
        "\nleast-loaded placement steers work toward the quiet machines; the\n\
         85%-loaded node stays in S3 and is never harvested — exactly the\n\
         behaviour the five-state model prescribes."
    );
}
