//! Proactive scheduling: train the paper's history-window predictor on a
//! testbed trace, then place guest jobs proactively versus obliviously
//! and compare response times — the motivating application of §1.
//!
//! ```text
//! cargo run --release --example proactive_scheduling
//! ```

use fgcs::predict::eval::{evaluate, standard_predictors, EvalConfig};
use fgcs::predict::predictor::MachineHourlyPredictor;
use fgcs::predict::proactive::{compare, ProactiveConfig};
use fgcs::testbed::runner::{run_testbed, TestbedConfig};

fn main() {
    let mut cfg = TestbedConfig::default();
    cfg.lab.machines = 12;
    cfg.lab.days = 42;
    // A heterogeneous lab: some machines are busier than others, which
    // is what gives prediction-driven placement its edge.
    cfg.lab.machine_busyness_spread = 0.6;
    println!(
        "generating a {}-machine, {}-day trace...",
        cfg.lab.machines, cfg.lab.days
    );
    let trace = run_testbed(&cfg);

    // How well can availability be predicted at all?
    println!("\npredictor quality over 2-hour windows (Brier, lower = better):");
    let mut predictors = standard_predictors();
    let eval_cfg = EvalConfig {
        windows: vec![2 * 3600],
        ..Default::default()
    };
    let mut rows = evaluate(&trace, &mut predictors, &eval_cfg);
    rows.sort_by(|a, b| a.brier.partial_cmp(&b.brier).expect("no NaN"));
    for r in &rows {
        println!(
            "  {:<16} brier {:.4}  accuracy {:.1}%",
            r.predictor,
            r.brier,
            r.accuracy * 100.0
        );
    }

    // Use it to place jobs.
    println!("\nreplaying 200 compute-bound guest jobs under both policies...");
    let mut predictor = MachineHourlyPredictor::default();
    let job_cfg = ProactiveConfig {
        jobs: 200,
        ..Default::default()
    };
    let (oblivious, proactive) = compare(&trace, &mut predictor, 0.6, &job_cfg);

    for o in [&oblivious, &proactive] {
        println!(
            "  {:<10} mean response {:.2} h, {:.2} failures/job, {} timeouts",
            o.policy.to_string(),
            o.mean_response / 3600.0,
            o.mean_failures,
            o.timed_out
        );
    }
    println!(
        "\nproactive placement improves mean response time by {:.1}% \
         (the paper's premise: prediction enables proactive job management).",
        (1.0 - proactive.mean_response / oblivious.mean_response) * 100.0
    );
}
