//! The FGCS availability-service wire protocol.
//!
//! iShare publishes machine availability so consumers can place guest
//! jobs on other people's idle cycles (§5 of the paper). This crate is
//! the contract between the publishing side (per-machine monitors
//! streaming samples) and the consuming side (schedulers querying
//! availability): a versioned, length-prefixed binary framing with a
//! small fixed message vocabulary.
//!
//! Design constraints, in order:
//!
//! 1. **Std-only.** The build environment has no crate registry, and a
//!    protocol crate should not drag the domain stack across a process
//!    boundary anyway. No dependencies, not even in-tree ones; model
//!    states cross the wire as validated `u8` codes
//!    (`fgcs_core::model::AvailState::code`).
//! 2. **Bit-exact payloads.** `f64` fields are carried as their IEEE
//!    bit patterns (`to_bits`, little-endian), so a sample stream
//!    replayed over TCP feeds the detector *exactly* the numbers the
//!    in-process pipeline would have seen — the end-to-end parity test
//!    depends on this.
//! 3. **Detectable corruption.** Every frame carries a CRC32 of its
//!    payload. Like the trace-file corruption model (`fgcs-faults`,
//!    DESIGN.md §8), this makes "frames the injector corrupted" and
//!    "frames the server rejected" the same number, which the overload
//!    and corruption experiments reconcile exactly.
//! 4. **Bounded frames, incremental decode.** Payloads are capped at
//!    [`MAX_FRAME_LEN`]; the [`codec::Decoder`] accepts bytes in
//!    arbitrary chunks and never panics on garbage.
//!
//! See DESIGN.md §9 for the frame layout diagram and the
//! backpressure/shedding policy built on top of these messages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod frame;

pub use codec::{
    decode_one, encode_into, DecodeError, Decoder, EncodeError, HEADER_LEN, MAX_FRAME_LEN,
};
pub use frame::{
    ErrorCode, Frame, MachineStat, ReplEntry, SampleLoad, SchedStatsPayload, StatsPayload,
    WireSample, WireTransition, MAX_AUTH_TOKEN, MAX_ERROR_DETAIL, MAX_MACHINE_STATS,
    MAX_REPL_ENTRIES_PER_FRAME, MAX_REPL_SNAPSHOT_BYTES, MAX_SAMPLES_PER_BATCH,
    MAX_TRANSITIONS_PER_FRAME, PROTOCOL_VERSION,
};
