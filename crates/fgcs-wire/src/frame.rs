//! The message vocabulary and payload serialization.
//!
//! Every message is a [`Frame`]; payload field layouts are documented in
//! DESIGN.md §9. All integers are little-endian; `f64` fields travel as
//! their IEEE-754 bit pattern so values round-trip bit-exactly.

use crate::codec::{ByteReader, EncodeError, PayloadError};

/// Protocol version carried in every frame header. Decoders reject
/// frames from any other version rather than guessing at layouts.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on samples per [`Frame::SampleBatch`].
pub const MAX_SAMPLES_PER_BATCH: usize = 16_384;
/// Hard cap on transitions per [`Frame::Transitions`].
pub const MAX_TRANSITIONS_PER_FRAME: usize = 65_536;
/// Hard cap on per-machine entries in a [`StatsPayload`].
pub const MAX_MACHINE_STATS: usize = 65_536;
/// Hard cap on the detail string of an [`Frame::Error`].
pub const MAX_ERROR_DETAIL: usize = 1_024;
/// Hard cap on the token string of a [`Frame::Auth`].
pub const MAX_AUTH_TOKEN: usize = 256;

/// How one sample reports CPU usage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleLoad {
    /// Host load already computed by the sender, in `[0, 1]`.
    Direct(f64),
    /// Raw cumulative counters (busy ticks, total ticks); the server
    /// diffs them through its per-machine `fgcs_core::monitor::Monitor`,
    /// which also absorbs counter resets.
    Counters {
        /// Cumulative busy (host + system) ticks since boot.
        busy: u64,
        /// Cumulative total ticks since boot.
        total: u64,
    },
}

/// One monitor sample as it crosses the wire — the observable surface of
/// `fgcs_testbed::lab::LoadSample`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSample {
    /// Timestamp, seconds since the machine's trace start.
    pub t: u64,
    /// CPU usage, direct or counter-level.
    pub load: SampleLoad,
    /// Resident memory of host + system processes, MB.
    pub host_resident_mb: u32,
    /// Machine/service liveness.
    pub alive: bool,
}

/// One detector state transition, as pushed to consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTransition {
    /// Per-machine monotone sequence number.
    pub seq: u64,
    /// Timestamp of the observation that caused the transition.
    pub at: u64,
    /// New state, coded 1..=5 (`AvailState::code`).
    pub state: u8,
}

/// Per-machine entry of a [`StatsPayload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineStat {
    /// Machine id.
    pub machine: u32,
    /// Current detector state, coded 1..=5.
    pub state: u8,
    /// Timestamp of the last ingested sample.
    pub last_t: u64,
    /// Unavailability occurrences recorded so far.
    pub occurrences: u64,
    /// State transitions recorded so far.
    pub transitions: u64,
}

/// Server counters exposed by [`Frame::StatsReply`]. The backpressure
/// identity `ingested + shed + decode-rejected == frames sent` is checked
/// against these by the overload experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsPayload {
    /// Sample batches fed to a detector.
    pub ingested_batches: u64,
    /// Samples fed to a detector.
    pub ingested_samples: u64,
    /// Batches shed (oldest-first) because the ingest queue was full.
    pub shed_batches: u64,
    /// Samples inside shed batches.
    pub shed_samples: u64,
    /// Frames rejected by the decoder (bad checksum/payload/tag).
    pub decode_errors: u64,
    /// `Busy` frames sent to producers.
    pub busy_replies: u64,
    /// Batches currently queued, not yet ingested.
    pub queue_depth: u64,
    /// Availability queries answered.
    pub queries_answered: u64,
    /// Placement requests answered.
    pub placements_answered: u64,
    /// Ingested samples per second since the server started.
    pub ingest_rate: f64,
    /// Per-machine detector state.
    pub machines: Vec<MachineStat>,
}

/// Typed error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame failed to decode (checksum, payload, or unknown tag).
    BadFrame,
    /// The queried machine has never streamed a sample.
    UnknownMachine,
    /// The request is valid but the server does not support it.
    Unsupported,
    /// The server hit an internal error handling the request.
    Internal,
    /// The stream has not presented a valid [`Frame::Auth`] token; the
    /// server closes the connection after sending this.
    Unauthorized,
    /// The server is at its connection cap; this connection is refused
    /// and closed.
    ConnLimit,
}

impl ErrorCode {
    /// Wire code (1-based; 0 is reserved as invalid).
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::UnknownMachine => 2,
            ErrorCode::Unsupported => 3,
            ErrorCode::Internal => 4,
            ErrorCode::Unauthorized => 5,
            ErrorCode::ConnLimit => 6,
        }
    }

    /// Inverse of [`ErrorCode::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::BadFrame),
            2 => Some(ErrorCode::UnknownMachine),
            3 => Some(ErrorCode::Unsupported),
            4 => Some(ErrorCode::Internal),
            5 => Some(ErrorCode::Unauthorized),
            6 => Some(ErrorCode::ConnLimit),
            _ => None,
        }
    }
}

/// One protocol message. The strict request/reply pairing (every client
/// frame earns exactly one server frame) is what makes the shed/reject
/// accounting reconcile exactly; see DESIGN.md §9.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Producer → server: a batch of monitor samples for one machine.
    SampleBatch {
        /// Machine id the samples belong to.
        machine: u32,
        /// The samples, timestamps non-decreasing.
        samples: Vec<WireSample>,
    },
    /// Server → producer: the batch was queued. `seq` counts batches
    /// accepted on this connection.
    Ack {
        /// Batches accepted on this connection so far.
        seq: u64,
    },
    /// Server → producer: the batch was queued, but the ingest queue was
    /// full and the *oldest* queued batch was shed to make room. The
    /// producer should slow down.
    Busy {
        /// Total batches the server has shed so far.
        shed_batches: u64,
    },
    /// Consumer → server: probability the machine stays available over
    /// `[now, now + horizon)`.
    QueryAvail {
        /// Machine id.
        machine: u32,
        /// Window length, seconds.
        horizon: u64,
    },
    /// Server → consumer: answer to [`Frame::QueryAvail`].
    AvailReply {
        /// Machine id echoed back.
        machine: u32,
        /// Current detector state, coded 1..=5.
        state: u8,
        /// Probability of uninterrupted availability over the horizon.
        prob: f64,
    },
    /// Consumer → server: pick the machine most likely to stay available
    /// for a job of the given length.
    Place {
        /// Job length, seconds.
        job_len: u64,
    },
    /// Server → consumer: answer to [`Frame::Place`].
    PlaceReply {
        /// Chosen machine, or `None` if no machine is currently
        /// harvestable.
        machine: Option<u32>,
        /// Predicted availability of the chosen machine over the job.
        prob: f64,
    },
    /// Consumer → server: request a [`Frame::StatsReply`].
    QueryStats,
    /// Server → consumer: ingest/queue/shed counters and per-machine
    /// detector state.
    StatsReply(StatsPayload),
    /// Consumer → server: request transitions of one machine with
    /// `seq >= since_seq`, at most `max` of them.
    QueryTransitions {
        /// Machine id.
        machine: u32,
        /// First sequence number wanted.
        since_seq: u64,
        /// Cap on transitions returned.
        max: u32,
    },
    /// Server → consumer: state/transition push for one machine.
    Transitions {
        /// Machine id.
        machine: u32,
        /// The transitions, sequence-ordered.
        transitions: Vec<WireTransition>,
    },
    /// Either direction: a typed error. Sent by the server for
    /// unanswerable requests and for every rejected (undecodable) frame.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail (bounded).
        detail: String,
    },
    /// Client → server: shared-token authentication. When the server is
    /// configured with a token, this must be the first frame on every
    /// connection; a matching token earns `Ack { seq: 0 }`, anything
    /// else earns `Error { Unauthorized }` and the connection is
    /// closed. Servers without a token configured accept (and `Ack`)
    /// the frame but do not require it.
    Auth {
        /// The shared secret (UTF-8, bounded by [`MAX_AUTH_TOKEN`]).
        token: String,
    },
}

impl Frame {
    /// The frame's type tag, as carried in the header.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::SampleBatch { .. } => 1,
            Frame::Ack { .. } => 2,
            Frame::Busy { .. } => 3,
            Frame::QueryAvail { .. } => 4,
            Frame::AvailReply { .. } => 5,
            Frame::Place { .. } => 6,
            Frame::PlaceReply { .. } => 7,
            Frame::QueryStats => 8,
            Frame::StatsReply(_) => 9,
            Frame::QueryTransitions { .. } => 10,
            Frame::Transitions { .. } => 11,
            Frame::Error { .. } => 12,
            Frame::Auth { .. } => 13,
        }
    }

    /// Serializes the payload (everything after the header) into `out`.
    pub(crate) fn encode_payload(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        match self {
            Frame::SampleBatch { machine, samples } => {
                if samples.len() > MAX_SAMPLES_PER_BATCH {
                    return Err(EncodeError::TooManyElements {
                        what: "samples",
                        len: samples.len(),
                        max: MAX_SAMPLES_PER_BATCH,
                    });
                }
                put_u32(out, *machine);
                put_u32(out, samples.len() as u32);
                for s in samples {
                    put_u64(out, s.t);
                    match s.load {
                        SampleLoad::Direct(load) => {
                            out.push(0);
                            put_f64(out, load);
                        }
                        SampleLoad::Counters { busy, total } => {
                            out.push(1);
                            put_u64(out, busy);
                            put_u64(out, total);
                        }
                    }
                    put_u32(out, s.host_resident_mb);
                    out.push(s.alive as u8);
                }
            }
            Frame::Ack { seq } => put_u64(out, *seq),
            Frame::Busy { shed_batches } => put_u64(out, *shed_batches),
            Frame::QueryAvail { machine, horizon } => {
                put_u32(out, *machine);
                put_u64(out, *horizon);
            }
            Frame::AvailReply {
                machine,
                state,
                prob,
            } => {
                put_u32(out, *machine);
                out.push(*state);
                put_f64(out, *prob);
            }
            Frame::Place { job_len } => put_u64(out, *job_len),
            Frame::PlaceReply { machine, prob } => {
                match machine {
                    Some(m) => {
                        out.push(1);
                        put_u32(out, *m);
                    }
                    None => {
                        out.push(0);
                        put_u32(out, 0);
                    }
                }
                put_f64(out, *prob);
            }
            Frame::QueryStats => {}
            Frame::StatsReply(s) => {
                if s.machines.len() > MAX_MACHINE_STATS {
                    return Err(EncodeError::TooManyElements {
                        what: "machine stats",
                        len: s.machines.len(),
                        max: MAX_MACHINE_STATS,
                    });
                }
                put_u64(out, s.ingested_batches);
                put_u64(out, s.ingested_samples);
                put_u64(out, s.shed_batches);
                put_u64(out, s.shed_samples);
                put_u64(out, s.decode_errors);
                put_u64(out, s.busy_replies);
                put_u64(out, s.queue_depth);
                put_u64(out, s.queries_answered);
                put_u64(out, s.placements_answered);
                put_f64(out, s.ingest_rate);
                put_u32(out, s.machines.len() as u32);
                for m in &s.machines {
                    put_u32(out, m.machine);
                    out.push(m.state);
                    put_u64(out, m.last_t);
                    put_u64(out, m.occurrences);
                    put_u64(out, m.transitions);
                }
            }
            Frame::QueryTransitions {
                machine,
                since_seq,
                max,
            } => {
                put_u32(out, *machine);
                put_u64(out, *since_seq);
                put_u32(out, *max);
            }
            Frame::Transitions {
                machine,
                transitions,
            } => {
                if transitions.len() > MAX_TRANSITIONS_PER_FRAME {
                    return Err(EncodeError::TooManyElements {
                        what: "transitions",
                        len: transitions.len(),
                        max: MAX_TRANSITIONS_PER_FRAME,
                    });
                }
                put_u32(out, *machine);
                put_u32(out, transitions.len() as u32);
                for t in transitions {
                    put_u64(out, t.seq);
                    put_u64(out, t.at);
                    out.push(t.state);
                }
            }
            Frame::Error { code, detail } => {
                let bytes = detail.as_bytes();
                if bytes.len() > MAX_ERROR_DETAIL {
                    return Err(EncodeError::TooManyElements {
                        what: "error detail bytes",
                        len: bytes.len(),
                        max: MAX_ERROR_DETAIL,
                    });
                }
                out.push(code.code());
                put_u32(out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Frame::Auth { token } => {
                let bytes = token.as_bytes();
                if bytes.len() > MAX_AUTH_TOKEN {
                    return Err(EncodeError::TooManyElements {
                        what: "auth token bytes",
                        len: bytes.len(),
                        max: MAX_AUTH_TOKEN,
                    });
                }
                put_u32(out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
        }
        Ok(())
    }

    /// Deserializes a payload for `tag`. The whole payload must be
    /// consumed; trailing bytes are an error (they would mean a layout
    /// mismatch that a lenient decoder would silently paper over).
    pub(crate) fn decode_payload(tag: u8, payload: &[u8]) -> Result<Frame, PayloadError> {
        let mut r = ByteReader::new(payload);
        let frame = match tag {
            1 => {
                let machine = r.u32()?;
                let count = r.u32()? as usize;
                if count > MAX_SAMPLES_PER_BATCH {
                    return Err(PayloadError::new(format!(
                        "sample count {count} exceeds cap {MAX_SAMPLES_PER_BATCH}"
                    )));
                }
                let mut samples = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let t = r.u64()?;
                    let load = match r.u8()? {
                        0 => SampleLoad::Direct(r.f64()?),
                        1 => SampleLoad::Counters {
                            busy: r.u64()?,
                            total: r.u64()?,
                        },
                        k => return Err(PayloadError::new(format!("unknown sample kind {k}"))),
                    };
                    let host_resident_mb = r.u32()?;
                    let alive = r.flag()?;
                    samples.push(WireSample {
                        t,
                        load,
                        host_resident_mb,
                        alive,
                    });
                }
                Frame::SampleBatch { machine, samples }
            }
            2 => Frame::Ack { seq: r.u64()? },
            3 => Frame::Busy {
                shed_batches: r.u64()?,
            },
            4 => Frame::QueryAvail {
                machine: r.u32()?,
                horizon: r.u64()?,
            },
            5 => {
                let machine = r.u32()?;
                let state = state_code(r.u8()?)?;
                let prob = r.f64()?;
                Frame::AvailReply {
                    machine,
                    state,
                    prob,
                }
            }
            6 => Frame::Place { job_len: r.u64()? },
            7 => {
                let has = r.flag()?;
                let m = r.u32()?;
                let prob = r.f64()?;
                Frame::PlaceReply {
                    machine: has.then_some(m),
                    prob,
                }
            }
            8 => Frame::QueryStats,
            9 => {
                let mut s = StatsPayload {
                    ingested_batches: r.u64()?,
                    ingested_samples: r.u64()?,
                    shed_batches: r.u64()?,
                    shed_samples: r.u64()?,
                    decode_errors: r.u64()?,
                    busy_replies: r.u64()?,
                    queue_depth: r.u64()?,
                    queries_answered: r.u64()?,
                    placements_answered: r.u64()?,
                    ingest_rate: r.f64()?,
                    machines: Vec::new(),
                };
                let count = r.u32()? as usize;
                if count > MAX_MACHINE_STATS {
                    return Err(PayloadError::new(format!(
                        "machine stat count {count} exceeds cap {MAX_MACHINE_STATS}"
                    )));
                }
                for _ in 0..count {
                    s.machines.push(MachineStat {
                        machine: r.u32()?,
                        state: state_code(r.u8()?)?,
                        last_t: r.u64()?,
                        occurrences: r.u64()?,
                        transitions: r.u64()?,
                    });
                }
                Frame::StatsReply(s)
            }
            10 => Frame::QueryTransitions {
                machine: r.u32()?,
                since_seq: r.u64()?,
                max: r.u32()?,
            },
            11 => {
                let machine = r.u32()?;
                let count = r.u32()? as usize;
                if count > MAX_TRANSITIONS_PER_FRAME {
                    return Err(PayloadError::new(format!(
                        "transition count {count} exceeds cap {MAX_TRANSITIONS_PER_FRAME}"
                    )));
                }
                let mut transitions = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    transitions.push(WireTransition {
                        seq: r.u64()?,
                        at: r.u64()?,
                        state: state_code(r.u8()?)?,
                    });
                }
                Frame::Transitions {
                    machine,
                    transitions,
                }
            }
            12 => {
                let code = ErrorCode::from_code(r.u8()?)
                    .ok_or_else(|| PayloadError::new("unknown error code"))?;
                let len = r.u32()? as usize;
                if len > MAX_ERROR_DETAIL {
                    return Err(PayloadError::new(format!(
                        "error detail length {len} exceeds cap {MAX_ERROR_DETAIL}"
                    )));
                }
                let bytes = r.bytes(len)?;
                let detail = std::str::from_utf8(bytes)
                    .map_err(|e| PayloadError::new(format!("error detail not UTF-8: {e}")))?
                    .to_string();
                Frame::Error { code, detail }
            }
            13 => {
                let len = r.u32()? as usize;
                if len > MAX_AUTH_TOKEN {
                    return Err(PayloadError::new(format!(
                        "auth token length {len} exceeds cap {MAX_AUTH_TOKEN}"
                    )));
                }
                let bytes = r.bytes(len)?;
                let token = std::str::from_utf8(bytes)
                    .map_err(|e| PayloadError::new(format!("auth token not UTF-8: {e}")))?
                    .to_string();
                Frame::Auth { token }
            }
            other => return Err(PayloadError::new(format!("unknown frame tag {other}"))),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Validates a model-state code (1..=5, `AvailState::code`).
fn state_code(code: u8) -> Result<u8, PayloadError> {
    if (1..=5).contains(&code) {
        Ok(code)
    } else {
        Err(PayloadError::new(format!(
            "state code {code} outside 1..=5"
        )))
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip() {
        for c in [
            ErrorCode::BadFrame,
            ErrorCode::UnknownMachine,
            ErrorCode::Unsupported,
            ErrorCode::Internal,
            ErrorCode::Unauthorized,
            ErrorCode::ConnLimit,
        ] {
            assert_eq!(ErrorCode::from_code(c.code()), Some(c));
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(200), None);
    }

    #[test]
    fn tags_are_unique() {
        let frames = vec![
            Frame::SampleBatch {
                machine: 0,
                samples: vec![],
            },
            Frame::Ack { seq: 0 },
            Frame::Busy { shed_batches: 0 },
            Frame::QueryAvail {
                machine: 0,
                horizon: 0,
            },
            Frame::AvailReply {
                machine: 0,
                state: 1,
                prob: 0.5,
            },
            Frame::Place { job_len: 0 },
            Frame::PlaceReply {
                machine: None,
                prob: 0.0,
            },
            Frame::QueryStats,
            Frame::StatsReply(StatsPayload::default()),
            Frame::QueryTransitions {
                machine: 0,
                since_seq: 0,
                max: 0,
            },
            Frame::Transitions {
                machine: 0,
                transitions: vec![],
            },
            Frame::Error {
                code: ErrorCode::BadFrame,
                detail: String::new(),
            },
            Frame::Auth {
                token: String::new(),
            },
        ];
        let mut tags: Vec<u8> = frames.iter().map(|f| f.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), frames.len());
    }

    #[test]
    fn nan_probability_round_trips_bit_exactly() {
        let bits = 0x7ff8_dead_beef_0001u64;
        let f = Frame::AvailReply {
            machine: 1,
            state: 2,
            prob: f64::from_bits(bits),
        };
        let enc = crate::codec::encode(&f).unwrap();
        let mut d = Decoder::new();
        d.push(&enc);
        match d.next_frame().unwrap().unwrap() {
            Frame::AvailReply { prob, .. } => assert_eq!(prob.to_bits(), bits),
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn auth_round_trips_and_respects_the_token_cap() {
        let f = Frame::Auth {
            token: "s3cr3t-τøκ".to_string(),
        };
        let enc = f.encode().unwrap();
        assert_eq!(crate::codec::decode_one(&enc).unwrap(), f);

        let over = Frame::Auth {
            token: "x".repeat(MAX_AUTH_TOKEN + 1),
        };
        assert!(matches!(
            over.encode(),
            Err(EncodeError::TooManyElements { .. })
        ));
        let at_cap = Frame::Auth {
            token: "x".repeat(MAX_AUTH_TOKEN),
        };
        let enc = at_cap.encode().unwrap();
        assert_eq!(crate::codec::decode_one(&enc).unwrap(), at_cap);
    }

    #[test]
    fn auth_with_invalid_utf8_is_recoverable() {
        let mut enc = Frame::Auth {
            token: "abcd".to_string(),
        }
        .encode()
        .unwrap();
        // Corrupt a token byte into an invalid UTF-8 lead byte and fix
        // the CRC so the failure is the UTF-8 check, not the checksum.
        let n = enc.len();
        enc[n - 1] = 0xff;
        let crc = crate::codec::crc32(&enc[crate::codec::HEADER_LEN..]);
        enc[8..12].copy_from_slice(&crc.to_le_bytes());
        let mut d = Decoder::new();
        d.push(&enc);
        match d.next_frame() {
            Err(e) => assert!(!e.is_fatal(), "bad token bytes skip one frame: {e}"),
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    use crate::codec::Decoder;
}
