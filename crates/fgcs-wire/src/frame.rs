//! The message vocabulary and payload serialization.
//!
//! Every message is a [`Frame`]; payload field layouts are documented in
//! DESIGN.md §9. All integers are little-endian; `f64` fields travel as
//! their IEEE-754 bit pattern so values round-trip bit-exactly.

use crate::codec::{ByteReader, EncodeError, PayloadError};

/// Protocol version carried in every frame header. Decoders reject
/// frames from any other version rather than guessing at layouts.
/// Version 2 added the failover fields: `epoch` on
/// [`Frame::ReplPull`] / [`Frame::ReplEntries`] /
/// [`Frame::ReplStatusReply`], `lease_ms` on [`Frame::ReplEntries`],
/// and [`ErrorCode::TooStale`].
pub const PROTOCOL_VERSION: u8 = 2;

/// Hard cap on samples per [`Frame::SampleBatch`].
pub const MAX_SAMPLES_PER_BATCH: usize = 16_384;
/// Hard cap on transitions per [`Frame::Transitions`].
pub const MAX_TRANSITIONS_PER_FRAME: usize = 65_536;
/// Hard cap on per-machine entries in a [`StatsPayload`].
pub const MAX_MACHINE_STATS: usize = 65_536;
/// Hard cap on the detail string of an [`Frame::Error`].
pub const MAX_ERROR_DETAIL: usize = 1_024;
/// Hard cap on the token string of a [`Frame::Auth`].
pub const MAX_AUTH_TOKEN: usize = 256;
/// Hard cap on entries per [`Frame::ReplEntries`]. Each entry carries
/// one ingested batch, so this bounds replication catch-up chunks.
pub const MAX_REPL_ENTRIES_PER_FRAME: usize = 1_024;
/// Hard cap on the serialized snapshot carried by a
/// [`Frame::ReplSnapshot`] resync: the largest byte string that still
/// fits a single frame under [`crate::codec::MAX_FRAME_LEN`] (8-byte
/// seq + 4-byte length prefix). Primaries whose state outgrows this
/// must keep enough replication log retained that followers never need
/// a snapshot resync.
pub const MAX_REPL_SNAPSHOT_BYTES: usize = crate::codec::MAX_FRAME_LEN - 12;

/// How one sample reports CPU usage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleLoad {
    /// Host load already computed by the sender, in `[0, 1]`.
    Direct(f64),
    /// Raw cumulative counters (busy ticks, total ticks); the server
    /// diffs them through its per-machine `fgcs_core::monitor::Monitor`,
    /// which also absorbs counter resets.
    Counters {
        /// Cumulative busy (host + system) ticks since boot.
        busy: u64,
        /// Cumulative total ticks since boot.
        total: u64,
    },
}

/// One monitor sample as it crosses the wire — the observable surface of
/// `fgcs_testbed::lab::LoadSample`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSample {
    /// Timestamp, seconds since the machine's trace start.
    pub t: u64,
    /// CPU usage, direct or counter-level.
    pub load: SampleLoad,
    /// Resident memory of host + system processes, MB.
    pub host_resident_mb: u32,
    /// Machine/service liveness.
    pub alive: bool,
}

/// One detector state transition, as pushed to consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTransition {
    /// Per-machine monotone sequence number.
    pub seq: u64,
    /// Timestamp of the observation that caused the transition.
    pub at: u64,
    /// New state, coded 1..=5 (`AvailState::code`).
    pub state: u8,
}

/// One replication-log entry: an ingested sample batch plus the
/// post-apply cursors it produced on the primary. The follower replays
/// the batch through its own ingest path (which is deterministic) and
/// then asserts that its cursors landed exactly on `last_t_after` /
/// `next_seq_after` — any mismatch means the replicas have diverged and
/// continuing would silently corrupt the follower.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplEntry {
    /// Primary-global monotone replication sequence number (1-based).
    pub seq: u64,
    /// Machine the batch belongs to.
    pub machine: u32,
    /// The machine's `last_t` after the primary applied this batch.
    pub last_t_after: u64,
    /// The machine's next transition seq after the primary applied
    /// this batch.
    pub next_seq_after: u64,
    /// The raw samples, exactly as ingested.
    pub samples: Vec<WireSample>,
}

/// Per-machine entry of a [`StatsPayload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineStat {
    /// Machine id.
    pub machine: u32,
    /// Current detector state, coded 1..=5.
    pub state: u8,
    /// Timestamp of the last ingested sample.
    pub last_t: u64,
    /// Unavailability occurrences recorded so far.
    pub occurrences: u64,
    /// State transitions recorded so far.
    pub transitions: u64,
    /// A guest may be placed here right now: the machine is in an
    /// available state and its recent-spike guard is quiet. This is the
    /// same predicate [`Frame::Place`] ranks candidates with, exported
    /// so schedulers can filter machines without decoding state codes.
    pub harvestable: bool,
}

/// Server counters exposed by [`Frame::StatsReply`]. The backpressure
/// identity `ingested + shed + decode-rejected == frames sent` is checked
/// against these by the overload experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsPayload {
    /// Sample batches fed to a detector.
    pub ingested_batches: u64,
    /// Samples fed to a detector.
    pub ingested_samples: u64,
    /// Batches shed (oldest-first) because the ingest queue was full.
    pub shed_batches: u64,
    /// Samples inside shed batches.
    pub shed_samples: u64,
    /// Frames rejected by the decoder (bad checksum/payload/tag).
    pub decode_errors: u64,
    /// `Busy` frames sent to producers.
    pub busy_replies: u64,
    /// Batches currently queued, not yet ingested.
    pub queue_depth: u64,
    /// Availability queries answered.
    pub queries_answered: u64,
    /// Placement requests answered.
    pub placements_answered: u64,
    /// Ingested samples per second since the server started.
    pub ingest_rate: f64,
    /// Per-machine detector state.
    pub machines: Vec<MachineStat>,
}

/// Scheduler counters exposed by [`Frame::SchedStatsReply`]. The
/// conservation identity `submitted == completed + queued + running`
/// (rejected submissions never become jobs) is what the scheduler
/// end-to-end tests reconcile against these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStatsPayload {
    /// Jobs accepted via [`Frame::SchedSubmit`].
    pub submitted: u64,
    /// Jobs that reached their full work requirement.
    pub completed: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Eviction events (host became unavailable under a running guest).
    pub evictions: u64,
    /// Proactive migrations (predicted failure crossed the SLO threshold).
    pub migrations: u64,
    /// Guest-seconds of progress lost to evictions (work since the last
    /// checkpoint at the moment the host revoked the guest).
    pub wasted_secs: u64,
    /// Jobs currently waiting for placement.
    pub queued: u64,
    /// Jobs currently running on a host.
    pub running: u64,
}

/// Typed error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame failed to decode (checksum, payload, or unknown tag).
    BadFrame,
    /// The queried machine has never streamed a sample.
    UnknownMachine,
    /// The request is valid but the server does not support it.
    Unsupported,
    /// The server hit an internal error handling the request.
    Internal,
    /// The stream has not presented a valid [`Frame::Auth`] token; the
    /// server closes the connection after sending this.
    Unauthorized,
    /// The server is at its connection cap; this connection is refused
    /// and closed.
    ConnLimit,
    /// The request mutates ingest state but this node is a follower;
    /// the client should fail over to the primary (or wait for this
    /// node's promotion).
    NotPrimary,
    /// A job submission was refused because the user is already at
    /// their fairshare allowance (base quota plus granted extra) times
    /// the scheduler's backlog factor.
    QuotaExceeded,
    /// The queried job id is not known to the scheduler.
    UnknownJob,
    /// The request is a read served by a follower whose replication
    /// lag currently exceeds the configured staleness bound; the
    /// client should retry against the primary (or wait for the
    /// follower to catch up).
    TooStale,
}

impl ErrorCode {
    /// Wire code (1-based; 0 is reserved as invalid).
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::UnknownMachine => 2,
            ErrorCode::Unsupported => 3,
            ErrorCode::Internal => 4,
            ErrorCode::Unauthorized => 5,
            ErrorCode::ConnLimit => 6,
            ErrorCode::NotPrimary => 7,
            ErrorCode::QuotaExceeded => 8,
            ErrorCode::UnknownJob => 9,
            ErrorCode::TooStale => 10,
        }
    }

    /// Inverse of [`ErrorCode::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::BadFrame),
            2 => Some(ErrorCode::UnknownMachine),
            3 => Some(ErrorCode::Unsupported),
            4 => Some(ErrorCode::Internal),
            5 => Some(ErrorCode::Unauthorized),
            6 => Some(ErrorCode::ConnLimit),
            7 => Some(ErrorCode::NotPrimary),
            8 => Some(ErrorCode::QuotaExceeded),
            9 => Some(ErrorCode::UnknownJob),
            10 => Some(ErrorCode::TooStale),
            _ => None,
        }
    }
}

/// One protocol message. The strict request/reply pairing (every client
/// frame earns exactly one server frame) is what makes the shed/reject
/// accounting reconcile exactly; see DESIGN.md §9.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Producer → server: a batch of monitor samples for one machine.
    SampleBatch {
        /// Machine id the samples belong to.
        machine: u32,
        /// The samples, timestamps non-decreasing.
        samples: Vec<WireSample>,
    },
    /// Server → producer: the batch was queued. `seq` counts batches
    /// accepted on this connection.
    Ack {
        /// Batches accepted on this connection so far.
        seq: u64,
    },
    /// Server → producer: the batch was queued, but the ingest queue was
    /// full and the *oldest* queued batch was shed to make room. The
    /// producer should slow down.
    Busy {
        /// Total batches the server has shed so far.
        shed_batches: u64,
    },
    /// Consumer → server: probability the machine stays available over
    /// `[now, now + horizon)`.
    QueryAvail {
        /// Machine id.
        machine: u32,
        /// Window length, seconds.
        horizon: u64,
    },
    /// Server → consumer: answer to [`Frame::QueryAvail`].
    AvailReply {
        /// Machine id echoed back.
        machine: u32,
        /// Current detector state, coded 1..=5.
        state: u8,
        /// Probability of uninterrupted availability over the horizon.
        prob: f64,
    },
    /// Consumer → server: pick the machine most likely to stay available
    /// for a job of the given length.
    Place {
        /// Job length, seconds.
        job_len: u64,
    },
    /// Server → consumer: answer to [`Frame::Place`].
    PlaceReply {
        /// Chosen machine, or `None` if no machine is currently
        /// harvestable.
        machine: Option<u32>,
        /// Predicted availability of the chosen machine over the job.
        prob: f64,
    },
    /// Consumer → server: request a [`Frame::StatsReply`].
    QueryStats,
    /// Server → consumer: ingest/queue/shed counters and per-machine
    /// detector state.
    StatsReply(StatsPayload),
    /// Consumer → server: request transitions of one machine with
    /// `seq >= since_seq`, at most `max` of them.
    QueryTransitions {
        /// Machine id.
        machine: u32,
        /// First sequence number wanted.
        since_seq: u64,
        /// Cap on transitions returned.
        max: u32,
    },
    /// Server → consumer: state/transition push for one machine.
    Transitions {
        /// Machine id.
        machine: u32,
        /// The transitions, sequence-ordered.
        transitions: Vec<WireTransition>,
    },
    /// Either direction: a typed error. Sent by the server for
    /// unanswerable requests and for every rejected (undecodable) frame.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail (bounded).
        detail: String,
    },
    /// Client → server: shared-token authentication. When the server is
    /// configured with a token, this must be the first frame on every
    /// connection; a matching token earns `Ack { seq: 0 }`, anything
    /// else earns `Error { Unauthorized }` and the connection is
    /// closed. Servers without a token configured accept (and `Ack`)
    /// the frame but do not require it.
    Auth {
        /// The shared secret (UTF-8, bounded by [`MAX_AUTH_TOKEN`]).
        token: String,
    },
    /// Follower → primary: pull replication entries with
    /// `seq > after_seq`. Doubles as the applied-seq ack — a pull for
    /// `after_seq = N` tells the primary the follower has durably
    /// applied everything through `N`, so the log can be trimmed.
    ReplPull {
        /// Highest replication seq the follower has applied.
        after_seq: u64,
        /// Cap on entries wanted in the reply.
        max_entries: u32,
        /// The puller's current epoch. Doubles as the **fencing**
        /// write: a node that receives a pull carrying a strictly
        /// higher epoch than its own has been superseded — if it still
        /// thinks it is a primary it demotes itself on the spot, so a
        /// paused-then-revived primary rejects ingest (`NotPrimary`)
        /// instead of splitting the brain.
        epoch: u64,
    },
    /// Primary → follower: answer to [`Frame::ReplPull`] when the
    /// requested position is still in the log (possibly empty when the
    /// follower is caught up).
    ReplEntries {
        /// Newest replication seq the primary has allocated (0 when
        /// nothing was ever logged). Lets the follower see its lag even
        /// on an empty reply.
        head_seq: u64,
        /// The primary's current epoch; the follower adopts it so a
        /// later self-promotion allocates a strictly higher one.
        epoch: u64,
        /// Liveness lease granted by this reply, milliseconds: the
        /// follower may declare the primary dead once this much time
        /// passes without any reply (0 = no lease; detection then
        /// rests on the missed-pull threshold alone).
        lease_ms: u64,
        /// The entries, seq-ascending, starting just past `after_seq`.
        entries: Vec<ReplEntry>,
    },
    /// Primary → follower: answer to [`Frame::ReplPull`] when the
    /// requested position has been trimmed from the log (or the
    /// follower is brand-new): a full serialized snapshot to install,
    /// after which the follower resumes pulling from `repl_seq`.
    ReplSnapshot {
        /// Replication seq the snapshot is consistent with.
        repl_seq: u64,
        /// The serialized snapshot (DESIGN.md §11 format).
        bytes: Vec<u8>,
    },
    /// Either role → server: request a [`Frame::ReplStatusReply`].
    ReplStatus,
    /// Server → client: replication-role and log-cursor status.
    ReplStatusReply {
        /// 1 = primary, 2 = follower.
        role: u8,
        /// The node's current epoch. A client choosing between two
        /// nodes that both claim primaryship must trust the higher
        /// epoch — the lower one is a revived ghost awaiting fencing.
        epoch: u64,
        /// Follower: highest replication seq applied. Primary: newest
        /// seq allocated.
        applied_seq: u64,
        /// Newest seq in the retained log (0 when empty).
        head_seq: u64,
        /// Oldest seq in the retained log (0 when empty).
        tail_seq: u64,
        /// Highest applied-seq acked by a pulling follower.
        acked_seq: u64,
        /// Entries currently retained in the log.
        log_len: u64,
    },
    /// Operator → follower: promote to primary. The node stops pulling,
    /// starts accepting `SampleBatch` ingest and logging it for its own
    /// followers, and replies `Ack { seq: 0 }`. Idempotent.
    Promote,
    /// Client → scheduler: submit a guest job of `work` guest-seconds
    /// on behalf of `user`. Earns a [`Frame::SchedJobReply`] when
    /// admitted, or `Error { QuotaExceeded }` when the user's backlog
    /// allowance is exhausted.
    SchedSubmit {
        /// Submitting user id.
        user: u32,
        /// Total work the job needs, guest-seconds.
        work: u64,
    },
    /// Client → scheduler: query one job by id. Earns a
    /// [`Frame::SchedJobReply`] or `Error { UnknownJob }`.
    SchedQueryJob {
        /// Job id from the submit reply.
        id: u64,
    },
    /// Scheduler → client: the state of one job.
    SchedJobReply {
        /// Job id (allocated at submit, monotone per scheduler).
        id: u64,
        /// Owning user id.
        user: u32,
        /// Job state, coded 1..=3 (queued / running / completed).
        state: u8,
        /// Host machine while running, `None` otherwise.
        machine: Option<u32>,
        /// Checkpointed progress, guest-seconds.
        done: u64,
        /// Total work requirement, guest-seconds.
        work: u64,
        /// Times this job was evicted by host revocation.
        evictions: u32,
        /// Times this job was proactively migrated.
        migrations: u32,
    },
    /// Client → scheduler: fairshare operation for one user, coded
    /// 1..=3 (request extra / release extra / status only). Earns a
    /// [`Frame::SchedShareReply`] with the post-operation ledger row.
    SchedShare {
        /// User id.
        user: u32,
        /// Operation code 1..=3.
        op: u8,
        /// Slots to request or release (ignored for status).
        amount: u64,
    },
    /// Scheduler → client: one user's fairshare ledger row.
    SchedShareReply {
        /// User id echoed back.
        user: u32,
        /// Base quota, concurrent running-job slots.
        base: u64,
        /// Extra slots currently granted from the shared pool.
        extra: u64,
        /// Slots currently consumed by running jobs.
        in_use: u64,
        /// Slots left in the shared pool.
        pool_free: u64,
    },
    /// Client → scheduler: request a [`Frame::SchedStatsReply`].
    SchedQueryStats,
    /// Scheduler → client: scheduler counters.
    SchedStatsReply(SchedStatsPayload),
}

impl Frame {
    /// The frame's type tag, as carried in the header.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::SampleBatch { .. } => 1,
            Frame::Ack { .. } => 2,
            Frame::Busy { .. } => 3,
            Frame::QueryAvail { .. } => 4,
            Frame::AvailReply { .. } => 5,
            Frame::Place { .. } => 6,
            Frame::PlaceReply { .. } => 7,
            Frame::QueryStats => 8,
            Frame::StatsReply(_) => 9,
            Frame::QueryTransitions { .. } => 10,
            Frame::Transitions { .. } => 11,
            Frame::Error { .. } => 12,
            Frame::Auth { .. } => 13,
            Frame::ReplPull { .. } => 14,
            Frame::ReplEntries { .. } => 15,
            Frame::ReplSnapshot { .. } => 16,
            Frame::ReplStatus => 17,
            Frame::ReplStatusReply { .. } => 18,
            Frame::Promote => 19,
            Frame::SchedSubmit { .. } => 20,
            Frame::SchedQueryJob { .. } => 21,
            Frame::SchedJobReply { .. } => 22,
            Frame::SchedShare { .. } => 23,
            Frame::SchedShareReply { .. } => 24,
            Frame::SchedQueryStats => 25,
            Frame::SchedStatsReply(_) => 26,
        }
    }

    /// Serializes the payload (everything after the header) into `out`.
    pub(crate) fn encode_payload(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        match self {
            Frame::SampleBatch { machine, samples } => {
                if samples.len() > MAX_SAMPLES_PER_BATCH {
                    return Err(EncodeError::TooManyElements {
                        what: "samples",
                        len: samples.len(),
                        max: MAX_SAMPLES_PER_BATCH,
                    });
                }
                put_u32(out, *machine);
                put_samples(out, samples);
            }
            Frame::Ack { seq } => put_u64(out, *seq),
            Frame::Busy { shed_batches } => put_u64(out, *shed_batches),
            Frame::QueryAvail { machine, horizon } => {
                put_u32(out, *machine);
                put_u64(out, *horizon);
            }
            Frame::AvailReply {
                machine,
                state,
                prob,
            } => {
                put_u32(out, *machine);
                out.push(*state);
                put_f64(out, *prob);
            }
            Frame::Place { job_len } => put_u64(out, *job_len),
            Frame::PlaceReply { machine, prob } => {
                match machine {
                    Some(m) => {
                        out.push(1);
                        put_u32(out, *m);
                    }
                    None => {
                        out.push(0);
                        put_u32(out, 0);
                    }
                }
                put_f64(out, *prob);
            }
            Frame::QueryStats => {}
            Frame::StatsReply(s) => {
                if s.machines.len() > MAX_MACHINE_STATS {
                    return Err(EncodeError::TooManyElements {
                        what: "machine stats",
                        len: s.machines.len(),
                        max: MAX_MACHINE_STATS,
                    });
                }
                put_u64(out, s.ingested_batches);
                put_u64(out, s.ingested_samples);
                put_u64(out, s.shed_batches);
                put_u64(out, s.shed_samples);
                put_u64(out, s.decode_errors);
                put_u64(out, s.busy_replies);
                put_u64(out, s.queue_depth);
                put_u64(out, s.queries_answered);
                put_u64(out, s.placements_answered);
                put_f64(out, s.ingest_rate);
                put_u32(out, s.machines.len() as u32);
                for m in &s.machines {
                    put_u32(out, m.machine);
                    out.push(m.state);
                    put_u64(out, m.last_t);
                    put_u64(out, m.occurrences);
                    put_u64(out, m.transitions);
                    out.push(m.harvestable as u8);
                }
            }
            Frame::QueryTransitions {
                machine,
                since_seq,
                max,
            } => {
                put_u32(out, *machine);
                put_u64(out, *since_seq);
                put_u32(out, *max);
            }
            Frame::Transitions {
                machine,
                transitions,
            } => {
                if transitions.len() > MAX_TRANSITIONS_PER_FRAME {
                    return Err(EncodeError::TooManyElements {
                        what: "transitions",
                        len: transitions.len(),
                        max: MAX_TRANSITIONS_PER_FRAME,
                    });
                }
                put_u32(out, *machine);
                put_u32(out, transitions.len() as u32);
                for t in transitions {
                    put_u64(out, t.seq);
                    put_u64(out, t.at);
                    out.push(t.state);
                }
            }
            Frame::Error { code, detail } => {
                let bytes = detail.as_bytes();
                if bytes.len() > MAX_ERROR_DETAIL {
                    return Err(EncodeError::TooManyElements {
                        what: "error detail bytes",
                        len: bytes.len(),
                        max: MAX_ERROR_DETAIL,
                    });
                }
                out.push(code.code());
                put_u32(out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Frame::Auth { token } => {
                let bytes = token.as_bytes();
                if bytes.len() > MAX_AUTH_TOKEN {
                    return Err(EncodeError::TooManyElements {
                        what: "auth token bytes",
                        len: bytes.len(),
                        max: MAX_AUTH_TOKEN,
                    });
                }
                put_u32(out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Frame::ReplPull {
                after_seq,
                max_entries,
                epoch,
            } => {
                put_u64(out, *after_seq);
                put_u32(out, *max_entries);
                put_u64(out, *epoch);
            }
            Frame::ReplEntries {
                head_seq,
                epoch,
                lease_ms,
                entries,
            } => {
                if entries.len() > MAX_REPL_ENTRIES_PER_FRAME {
                    return Err(EncodeError::TooManyElements {
                        what: "replication entries",
                        len: entries.len(),
                        max: MAX_REPL_ENTRIES_PER_FRAME,
                    });
                }
                put_u64(out, *head_seq);
                put_u64(out, *epoch);
                put_u64(out, *lease_ms);
                put_u32(out, entries.len() as u32);
                for e in entries {
                    if e.samples.len() > MAX_SAMPLES_PER_BATCH {
                        return Err(EncodeError::TooManyElements {
                            what: "replication entry samples",
                            len: e.samples.len(),
                            max: MAX_SAMPLES_PER_BATCH,
                        });
                    }
                    put_u64(out, e.seq);
                    put_u32(out, e.machine);
                    put_u64(out, e.last_t_after);
                    put_u64(out, e.next_seq_after);
                    put_samples(out, &e.samples);
                }
            }
            Frame::ReplSnapshot { repl_seq, bytes } => {
                if bytes.len() > MAX_REPL_SNAPSHOT_BYTES {
                    return Err(EncodeError::TooManyElements {
                        what: "replication snapshot bytes",
                        len: bytes.len(),
                        max: MAX_REPL_SNAPSHOT_BYTES,
                    });
                }
                put_u64(out, *repl_seq);
                put_u32(out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Frame::ReplStatus => {}
            Frame::ReplStatusReply {
                role,
                epoch,
                applied_seq,
                head_seq,
                tail_seq,
                acked_seq,
                log_len,
            } => {
                out.push(*role);
                put_u64(out, *epoch);
                put_u64(out, *applied_seq);
                put_u64(out, *head_seq);
                put_u64(out, *tail_seq);
                put_u64(out, *acked_seq);
                put_u64(out, *log_len);
            }
            Frame::Promote => {}
            Frame::SchedSubmit { user, work } => {
                put_u32(out, *user);
                put_u64(out, *work);
            }
            Frame::SchedQueryJob { id } => put_u64(out, *id),
            Frame::SchedJobReply {
                id,
                user,
                state,
                machine,
                done,
                work,
                evictions,
                migrations,
            } => {
                put_u64(out, *id);
                put_u32(out, *user);
                out.push(*state);
                match machine {
                    Some(m) => {
                        out.push(1);
                        put_u32(out, *m);
                    }
                    None => {
                        out.push(0);
                        put_u32(out, 0);
                    }
                }
                put_u64(out, *done);
                put_u64(out, *work);
                put_u32(out, *evictions);
                put_u32(out, *migrations);
            }
            Frame::SchedShare { user, op, amount } => {
                put_u32(out, *user);
                out.push(*op);
                put_u64(out, *amount);
            }
            Frame::SchedShareReply {
                user,
                base,
                extra,
                in_use,
                pool_free,
            } => {
                put_u32(out, *user);
                put_u64(out, *base);
                put_u64(out, *extra);
                put_u64(out, *in_use);
                put_u64(out, *pool_free);
            }
            Frame::SchedQueryStats => {}
            Frame::SchedStatsReply(s) => {
                put_u64(out, s.submitted);
                put_u64(out, s.completed);
                put_u64(out, s.rejected);
                put_u64(out, s.evictions);
                put_u64(out, s.migrations);
                put_u64(out, s.wasted_secs);
                put_u64(out, s.queued);
                put_u64(out, s.running);
            }
        }
        Ok(())
    }

    /// Deserializes a payload for `tag`. The whole payload must be
    /// consumed; trailing bytes are an error (they would mean a layout
    /// mismatch that a lenient decoder would silently paper over).
    pub(crate) fn decode_payload(tag: u8, payload: &[u8]) -> Result<Frame, PayloadError> {
        let mut r = ByteReader::new(payload);
        let frame = match tag {
            1 => {
                let machine = r.u32()?;
                let samples = read_samples(&mut r)?;
                Frame::SampleBatch { machine, samples }
            }
            2 => Frame::Ack { seq: r.u64()? },
            3 => Frame::Busy {
                shed_batches: r.u64()?,
            },
            4 => Frame::QueryAvail {
                machine: r.u32()?,
                horizon: r.u64()?,
            },
            5 => {
                let machine = r.u32()?;
                let state = state_code(r.u8()?)?;
                let prob = r.f64()?;
                Frame::AvailReply {
                    machine,
                    state,
                    prob,
                }
            }
            6 => Frame::Place { job_len: r.u64()? },
            7 => {
                let has = r.flag()?;
                let m = r.u32()?;
                let prob = r.f64()?;
                Frame::PlaceReply {
                    machine: has.then_some(m),
                    prob,
                }
            }
            8 => Frame::QueryStats,
            9 => {
                let mut s = StatsPayload {
                    ingested_batches: r.u64()?,
                    ingested_samples: r.u64()?,
                    shed_batches: r.u64()?,
                    shed_samples: r.u64()?,
                    decode_errors: r.u64()?,
                    busy_replies: r.u64()?,
                    queue_depth: r.u64()?,
                    queries_answered: r.u64()?,
                    placements_answered: r.u64()?,
                    ingest_rate: r.f64()?,
                    machines: Vec::new(),
                };
                let count = r.u32()? as usize;
                if count > MAX_MACHINE_STATS {
                    return Err(PayloadError::new(format!(
                        "machine stat count {count} exceeds cap {MAX_MACHINE_STATS}"
                    )));
                }
                for _ in 0..count {
                    s.machines.push(MachineStat {
                        machine: r.u32()?,
                        state: state_code(r.u8()?)?,
                        last_t: r.u64()?,
                        occurrences: r.u64()?,
                        transitions: r.u64()?,
                        harvestable: r.flag()?,
                    });
                }
                Frame::StatsReply(s)
            }
            10 => Frame::QueryTransitions {
                machine: r.u32()?,
                since_seq: r.u64()?,
                max: r.u32()?,
            },
            11 => {
                let machine = r.u32()?;
                let count = r.u32()? as usize;
                if count > MAX_TRANSITIONS_PER_FRAME {
                    return Err(PayloadError::new(format!(
                        "transition count {count} exceeds cap {MAX_TRANSITIONS_PER_FRAME}"
                    )));
                }
                let mut transitions = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    transitions.push(WireTransition {
                        seq: r.u64()?,
                        at: r.u64()?,
                        state: state_code(r.u8()?)?,
                    });
                }
                Frame::Transitions {
                    machine,
                    transitions,
                }
            }
            12 => {
                let code = ErrorCode::from_code(r.u8()?)
                    .ok_or_else(|| PayloadError::new("unknown error code"))?;
                let len = r.u32()? as usize;
                if len > MAX_ERROR_DETAIL {
                    return Err(PayloadError::new(format!(
                        "error detail length {len} exceeds cap {MAX_ERROR_DETAIL}"
                    )));
                }
                let bytes = r.bytes(len)?;
                let detail = std::str::from_utf8(bytes)
                    .map_err(|e| PayloadError::new(format!("error detail not UTF-8: {e}")))?
                    .to_string();
                Frame::Error { code, detail }
            }
            13 => {
                let len = r.u32()? as usize;
                if len > MAX_AUTH_TOKEN {
                    return Err(PayloadError::new(format!(
                        "auth token length {len} exceeds cap {MAX_AUTH_TOKEN}"
                    )));
                }
                let bytes = r.bytes(len)?;
                let token = std::str::from_utf8(bytes)
                    .map_err(|e| PayloadError::new(format!("auth token not UTF-8: {e}")))?
                    .to_string();
                Frame::Auth { token }
            }
            14 => Frame::ReplPull {
                after_seq: r.u64()?,
                max_entries: r.u32()?,
                epoch: r.u64()?,
            },
            15 => {
                let head_seq = r.u64()?;
                let epoch = r.u64()?;
                let lease_ms = r.u64()?;
                let count = r.u32()? as usize;
                if count > MAX_REPL_ENTRIES_PER_FRAME {
                    return Err(PayloadError::new(format!(
                        "replication entry count {count} exceeds cap {MAX_REPL_ENTRIES_PER_FRAME}"
                    )));
                }
                let mut entries = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let seq = r.u64()?;
                    let machine = r.u32()?;
                    let last_t_after = r.u64()?;
                    let next_seq_after = r.u64()?;
                    let samples = read_samples(&mut r)?;
                    entries.push(ReplEntry {
                        seq,
                        machine,
                        last_t_after,
                        next_seq_after,
                        samples,
                    });
                }
                Frame::ReplEntries {
                    head_seq,
                    epoch,
                    lease_ms,
                    entries,
                }
            }
            16 => {
                let repl_seq = r.u64()?;
                let len = r.u32()? as usize;
                if len > MAX_REPL_SNAPSHOT_BYTES {
                    return Err(PayloadError::new(format!(
                        "replication snapshot length {len} exceeds cap {MAX_REPL_SNAPSHOT_BYTES}"
                    )));
                }
                let bytes = r.bytes(len)?.to_vec();
                Frame::ReplSnapshot { repl_seq, bytes }
            }
            17 => Frame::ReplStatus,
            18 => {
                let role = r.u8()?;
                if !(1..=2).contains(&role) {
                    return Err(PayloadError::new(format!(
                        "replication role {role} outside 1..=2"
                    )));
                }
                Frame::ReplStatusReply {
                    role,
                    epoch: r.u64()?,
                    applied_seq: r.u64()?,
                    head_seq: r.u64()?,
                    tail_seq: r.u64()?,
                    acked_seq: r.u64()?,
                    log_len: r.u64()?,
                }
            }
            19 => Frame::Promote,
            20 => Frame::SchedSubmit {
                user: r.u32()?,
                work: r.u64()?,
            },
            21 => Frame::SchedQueryJob { id: r.u64()? },
            22 => {
                let id = r.u64()?;
                let user = r.u32()?;
                let state = job_state_code(r.u8()?)?;
                let has = r.flag()?;
                let m = r.u32()?;
                Frame::SchedJobReply {
                    id,
                    user,
                    state,
                    machine: has.then_some(m),
                    done: r.u64()?,
                    work: r.u64()?,
                    evictions: r.u32()?,
                    migrations: r.u32()?,
                }
            }
            23 => {
                let user = r.u32()?;
                let op = r.u8()?;
                if !(1..=3).contains(&op) {
                    return Err(PayloadError::new(format!("share op {op} outside 1..=3")));
                }
                Frame::SchedShare {
                    user,
                    op,
                    amount: r.u64()?,
                }
            }
            24 => Frame::SchedShareReply {
                user: r.u32()?,
                base: r.u64()?,
                extra: r.u64()?,
                in_use: r.u64()?,
                pool_free: r.u64()?,
            },
            25 => Frame::SchedQueryStats,
            26 => Frame::SchedStatsReply(SchedStatsPayload {
                submitted: r.u64()?,
                completed: r.u64()?,
                rejected: r.u64()?,
                evictions: r.u64()?,
                migrations: r.u64()?,
                wasted_secs: r.u64()?,
                queued: r.u64()?,
                running: r.u64()?,
            }),
            other => return Err(PayloadError::new(format!("unknown frame tag {other}"))),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Serializes a sample list (count-prefixed), the shared layout of
/// [`Frame::SampleBatch`] and [`Frame::ReplEntries`]. Callers enforce
/// [`MAX_SAMPLES_PER_BATCH`] before encoding.
fn put_samples(out: &mut Vec<u8>, samples: &[WireSample]) {
    put_u32(out, samples.len() as u32);
    for s in samples {
        put_u64(out, s.t);
        match s.load {
            SampleLoad::Direct(load) => {
                out.push(0);
                put_f64(out, load);
            }
            SampleLoad::Counters { busy, total } => {
                out.push(1);
                put_u64(out, busy);
                put_u64(out, total);
            }
        }
        put_u32(out, s.host_resident_mb);
        out.push(s.alive as u8);
    }
}

/// Inverse of [`put_samples`], enforcing [`MAX_SAMPLES_PER_BATCH`].
fn read_samples(r: &mut ByteReader<'_>) -> Result<Vec<WireSample>, PayloadError> {
    let count = r.u32()? as usize;
    if count > MAX_SAMPLES_PER_BATCH {
        return Err(PayloadError::new(format!(
            "sample count {count} exceeds cap {MAX_SAMPLES_PER_BATCH}"
        )));
    }
    let mut samples = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let t = r.u64()?;
        let load = match r.u8()? {
            0 => SampleLoad::Direct(r.f64()?),
            1 => SampleLoad::Counters {
                busy: r.u64()?,
                total: r.u64()?,
            },
            k => return Err(PayloadError::new(format!("unknown sample kind {k}"))),
        };
        let host_resident_mb = r.u32()?;
        let alive = r.flag()?;
        samples.push(WireSample {
            t,
            load,
            host_resident_mb,
            alive,
        });
    }
    Ok(samples)
}

/// Validates a model-state code (1..=5, `AvailState::code`).
fn state_code(code: u8) -> Result<u8, PayloadError> {
    if (1..=5).contains(&code) {
        Ok(code)
    } else {
        Err(PayloadError::new(format!(
            "state code {code} outside 1..=5"
        )))
    }
}

/// Validates a job-state code (1..=3: queued / running / completed).
fn job_state_code(code: u8) -> Result<u8, PayloadError> {
    if (1..=3).contains(&code) {
        Ok(code)
    } else {
        Err(PayloadError::new(format!(
            "job state code {code} outside 1..=3"
        )))
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip() {
        for c in [
            ErrorCode::BadFrame,
            ErrorCode::UnknownMachine,
            ErrorCode::Unsupported,
            ErrorCode::Internal,
            ErrorCode::Unauthorized,
            ErrorCode::ConnLimit,
            ErrorCode::NotPrimary,
            ErrorCode::QuotaExceeded,
            ErrorCode::UnknownJob,
            ErrorCode::TooStale,
        ] {
            assert_eq!(ErrorCode::from_code(c.code()), Some(c));
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(200), None);
    }

    #[test]
    fn tags_are_unique() {
        let frames = vec![
            Frame::SampleBatch {
                machine: 0,
                samples: vec![],
            },
            Frame::Ack { seq: 0 },
            Frame::Busy { shed_batches: 0 },
            Frame::QueryAvail {
                machine: 0,
                horizon: 0,
            },
            Frame::AvailReply {
                machine: 0,
                state: 1,
                prob: 0.5,
            },
            Frame::Place { job_len: 0 },
            Frame::PlaceReply {
                machine: None,
                prob: 0.0,
            },
            Frame::QueryStats,
            Frame::StatsReply(StatsPayload::default()),
            Frame::QueryTransitions {
                machine: 0,
                since_seq: 0,
                max: 0,
            },
            Frame::Transitions {
                machine: 0,
                transitions: vec![],
            },
            Frame::Error {
                code: ErrorCode::BadFrame,
                detail: String::new(),
            },
            Frame::Auth {
                token: String::new(),
            },
            Frame::ReplPull {
                after_seq: 0,
                max_entries: 0,
                epoch: 0,
            },
            Frame::ReplEntries {
                head_seq: 0,
                epoch: 0,
                lease_ms: 0,
                entries: vec![],
            },
            Frame::ReplSnapshot {
                repl_seq: 0,
                bytes: vec![],
            },
            Frame::ReplStatus,
            Frame::ReplStatusReply {
                role: 1,
                epoch: 1,
                applied_seq: 0,
                head_seq: 0,
                tail_seq: 0,
                acked_seq: 0,
                log_len: 0,
            },
            Frame::Promote,
            Frame::SchedSubmit { user: 0, work: 0 },
            Frame::SchedQueryJob { id: 0 },
            Frame::SchedJobReply {
                id: 0,
                user: 0,
                state: 1,
                machine: None,
                done: 0,
                work: 0,
                evictions: 0,
                migrations: 0,
            },
            Frame::SchedShare {
                user: 0,
                op: 3,
                amount: 0,
            },
            Frame::SchedShareReply {
                user: 0,
                base: 0,
                extra: 0,
                in_use: 0,
                pool_free: 0,
            },
            Frame::SchedQueryStats,
            Frame::SchedStatsReply(SchedStatsPayload::default()),
        ];
        let mut tags: Vec<u8> = frames.iter().map(|f| f.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), frames.len());
    }

    #[test]
    fn nan_probability_round_trips_bit_exactly() {
        let bits = 0x7ff8_dead_beef_0001u64;
        let f = Frame::AvailReply {
            machine: 1,
            state: 2,
            prob: f64::from_bits(bits),
        };
        let enc = crate::codec::encode(&f).unwrap();
        let mut d = Decoder::new();
        d.push(&enc);
        match d.next_frame().unwrap().unwrap() {
            Frame::AvailReply { prob, .. } => assert_eq!(prob.to_bits(), bits),
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn auth_round_trips_and_respects_the_token_cap() {
        let f = Frame::Auth {
            token: "s3cr3t-τøκ".to_string(),
        };
        let enc = f.encode().unwrap();
        assert_eq!(crate::codec::decode_one(&enc).unwrap(), f);

        let over = Frame::Auth {
            token: "x".repeat(MAX_AUTH_TOKEN + 1),
        };
        assert!(matches!(
            over.encode(),
            Err(EncodeError::TooManyElements { .. })
        ));
        let at_cap = Frame::Auth {
            token: "x".repeat(MAX_AUTH_TOKEN),
        };
        let enc = at_cap.encode().unwrap();
        assert_eq!(crate::codec::decode_one(&enc).unwrap(), at_cap);
    }

    #[test]
    fn replication_frames_round_trip() {
        let frames = vec![
            Frame::ReplPull {
                after_seq: 42,
                max_entries: 256,
                epoch: 3,
            },
            Frame::ReplEntries {
                head_seq: 99,
                epoch: 2,
                lease_ms: 750,
                entries: vec![
                    ReplEntry {
                        seq: 43,
                        machine: 7,
                        last_t_after: 1_234,
                        next_seq_after: 5,
                        samples: vec![
                            WireSample {
                                t: 1_200,
                                load: SampleLoad::Direct(0.25),
                                host_resident_mb: 512,
                                alive: true,
                            },
                            WireSample {
                                t: 1_234,
                                load: SampleLoad::Counters {
                                    busy: 10,
                                    total: 100,
                                },
                                host_resident_mb: 600,
                                alive: false,
                            },
                        ],
                    },
                    ReplEntry {
                        seq: 44,
                        machine: 8,
                        last_t_after: 0,
                        next_seq_after: 1,
                        samples: vec![],
                    },
                ],
            },
            Frame::ReplSnapshot {
                repl_seq: 17,
                bytes: b"{\"kind\":\"header\"}\n".to_vec(),
            },
            Frame::ReplStatus,
            Frame::ReplStatusReply {
                role: 2,
                epoch: 7,
                applied_seq: 40,
                head_seq: 44,
                tail_seq: 12,
                acked_seq: 40,
                log_len: 33,
            },
            Frame::Promote,
        ];
        for f in frames {
            let enc = f.encode().unwrap();
            assert_eq!(crate::codec::decode_one(&enc).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn sched_frames_round_trip() {
        let frames = vec![
            Frame::SchedSubmit {
                user: 3,
                work: 7_200,
            },
            Frame::SchedQueryJob { id: 11 },
            Frame::SchedJobReply {
                id: 11,
                user: 3,
                state: 2,
                machine: Some(42),
                done: 1_800,
                work: 7_200,
                evictions: 1,
                migrations: 2,
            },
            Frame::SchedJobReply {
                id: 12,
                user: 3,
                state: 1,
                machine: None,
                done: 0,
                work: 600,
                evictions: 0,
                migrations: 0,
            },
            Frame::SchedShare {
                user: 3,
                op: 1,
                amount: 2,
            },
            Frame::SchedShareReply {
                user: 3,
                base: 2,
                extra: 2,
                in_use: 3,
                pool_free: 1,
            },
            Frame::SchedQueryStats,
            Frame::SchedStatsReply(SchedStatsPayload {
                submitted: 20,
                completed: 15,
                rejected: 4,
                evictions: 6,
                migrations: 3,
                wasted_secs: 5_400,
                queued: 2,
                running: 3,
            }),
        ];
        for f in frames {
            let enc = f.encode().unwrap();
            assert_eq!(crate::codec::decode_one(&enc).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn sched_job_reply_rejects_unknown_job_states() {
        let mut enc = Frame::SchedJobReply {
            id: 1,
            user: 0,
            state: 1,
            machine: None,
            done: 0,
            work: 0,
            evictions: 0,
            migrations: 0,
        }
        .encode()
        .unwrap();
        // Corrupt the state byte (13th payload byte: id + user precede
        // it) and fix the CRC so the failure is the state validator.
        enc[crate::codec::HEADER_LEN + 12] = 9;
        let crc = crate::codec::crc32(&enc[crate::codec::HEADER_LEN..]);
        enc[8..12].copy_from_slice(&crc.to_le_bytes());
        let mut d = Decoder::new();
        d.push(&enc);
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn repl_entries_respects_the_entry_cap() {
        let entry = ReplEntry {
            seq: 1,
            machine: 0,
            last_t_after: 0,
            next_seq_after: 0,
            samples: vec![],
        };
        let over = Frame::ReplEntries {
            head_seq: 0,
            epoch: 0,
            lease_ms: 0,
            entries: vec![entry; MAX_REPL_ENTRIES_PER_FRAME + 1],
        };
        assert!(matches!(
            over.encode(),
            Err(EncodeError::TooManyElements { .. })
        ));
    }

    #[test]
    fn repl_status_reply_rejects_unknown_roles() {
        let mut enc = Frame::ReplStatusReply {
            role: 1,
            epoch: 1,
            applied_seq: 0,
            head_seq: 0,
            tail_seq: 0,
            acked_seq: 0,
            log_len: 0,
        }
        .encode()
        .unwrap();
        // Corrupt the role byte (first payload byte) and fix the CRC.
        enc[crate::codec::HEADER_LEN] = 9;
        let crc = crate::codec::crc32(&enc[crate::codec::HEADER_LEN..]);
        enc[8..12].copy_from_slice(&crc.to_le_bytes());
        let mut d = Decoder::new();
        d.push(&enc);
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn auth_with_invalid_utf8_is_recoverable() {
        let mut enc = Frame::Auth {
            token: "abcd".to_string(),
        }
        .encode()
        .unwrap();
        // Corrupt a token byte into an invalid UTF-8 lead byte and fix
        // the CRC so the failure is the UTF-8 check, not the checksum.
        let n = enc.len();
        enc[n - 1] = 0xff;
        let crc = crate::codec::crc32(&enc[crate::codec::HEADER_LEN..]);
        enc[8..12].copy_from_slice(&crc.to_le_bytes());
        let mut d = Decoder::new();
        d.push(&enc);
        match d.next_frame() {
            Err(e) => assert!(!e.is_fatal(), "bad token bytes skip one frame: {e}"),
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    use crate::codec::Decoder;
}
