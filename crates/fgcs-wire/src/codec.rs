//! Framing: header layout, CRC32 integrity, incremental decoding.
//!
//! A frame on the wire is:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  0x46 0x43  ("FC")
//! 2       1     protocol version  (PROTOCOL_VERSION)
//! 3       1     frame type tag    (Frame::tag)
//! 4       4     payload length, u32 LE  (<= MAX_FRAME_LEN)
//! 8       4     CRC32 (IEEE) of the payload, u32 LE
//! 12      len   payload
//! ```
//!
//! Decode errors split into **recoverable** (the frame header was sound,
//! so the decoder skips exactly that frame and can keep going — bad
//! checksum, malformed payload, unknown tag) and **fatal** (framing
//! itself is untrustworthy — wrong magic, wrong version, oversized
//! length; the decoder poisons and the connection must be dropped).
//! The recoverable class is what the corruption experiments count: a
//! payload byte flip always lands there via the CRC.

use crate::frame::Frame;

/// Bytes in a frame header.
pub const HEADER_LEN: usize = 12;

/// Maximum payload length. Frames above this are rejected on both
/// sides; 1 MiB comfortably fits the largest bounded message
/// (a max-size `SampleBatch` is ~500 KiB).
pub const MAX_FRAME_LEN: usize = 1 << 20;

const MAGIC: [u8; 2] = [0x46, 0x43];

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, built at compile time.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a frame could not be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The serialized payload exceeds [`MAX_FRAME_LEN`].
    Oversize {
        /// The payload length that was produced.
        len: usize,
    },
    /// A variable-length field exceeds its protocol cap.
    TooManyElements {
        /// Which field.
        what: &'static str,
        /// The offending length.
        len: usize,
        /// The cap.
        max: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::Oversize { len } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
                )
            }
            EncodeError::TooManyElements { what, len, max } => {
                write!(f, "{what}: {len} exceeds protocol cap {max}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// A malformed payload, with detail. Internal to decoding; surfaces as
/// [`DecodeError::BadPayload`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PayloadError(String);

impl PayloadError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        PayloadError(msg.into())
    }
}

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Recoverable: payload bytes do not match the header CRC.
    BadChecksum {
        /// CRC the header promised.
        expected: u32,
        /// CRC of the bytes that arrived.
        got: u32,
    },
    /// Recoverable: the payload did not parse for its tag (including an
    /// unknown tag — a newer peer's message skips cleanly).
    BadPayload(String),
    /// Fatal: the stream does not start with the protocol magic.
    BadMagic {
        /// The two bytes found where the magic should be.
        got: [u8; 2],
    },
    /// Fatal: the peer speaks a different protocol version.
    BadVersion {
        /// The version byte found.
        got: u8,
    },
    /// Fatal: the header announces a payload longer than
    /// [`MAX_FRAME_LEN`]; the length field cannot be trusted, so the
    /// stream cannot be resynchronized.
    Oversize {
        /// The announced payload length.
        len: u32,
    },
}

impl DecodeError {
    /// Fatal errors poison the decoder; the connection should be closed.
    /// Recoverable errors consumed exactly one frame — decoding may
    /// continue with the next one.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            DecodeError::BadMagic { .. }
                | DecodeError::BadVersion { .. }
                | DecodeError::Oversize { .. }
        )
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadChecksum { expected, got } => {
                write!(f, "payload checksum {got:#010x} != header {expected:#010x}")
            }
            DecodeError::BadPayload(msg) => write!(f, "bad payload: {msg}"),
            DecodeError::BadMagic { got } => {
                write!(f, "bad magic {:#04x} {:#04x}", got[0], got[1])
            }
            DecodeError::BadVersion { got } => {
                write!(f, "unsupported protocol version {got}")
            }
            DecodeError::Oversize { len } => {
                write!(
                    f,
                    "announced payload of {len} bytes exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<PayloadError> for DecodeError {
    fn from(e: PayloadError) -> Self {
        DecodeError::BadPayload(e.0)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serializes a frame: header + payload, ready to write to a socket.
pub fn encode(frame: &Frame) -> Result<Vec<u8>, EncodeError> {
    let mut buf = Vec::with_capacity(HEADER_LEN + 64);
    encode_into(frame, &mut buf)?;
    Ok(buf)
}

/// Serializes a frame into a caller-owned buffer, clearing it first.
/// The buffer's capacity is reused across calls — the readiness-loop
/// backend encodes every reply through one scratch buffer so steady
/// state allocates nothing per frame. On error the buffer contents are
/// unspecified (but safe to reuse).
pub fn encode_into(frame: &Frame, buf: &mut Vec<u8>) -> Result<(), EncodeError> {
    buf.clear();
    buf.resize(HEADER_LEN, 0);
    frame.encode_payload(buf)?;
    let payload_len = buf.len() - HEADER_LEN;
    if payload_len > MAX_FRAME_LEN {
        return Err(EncodeError::Oversize { len: payload_len });
    }
    let crc = crc32(&buf[HEADER_LEN..]);
    buf[0] = MAGIC[0];
    buf[1] = MAGIC[1];
    buf[2] = crate::frame::PROTOCOL_VERSION;
    buf[3] = frame.tag();
    buf[4..8].copy_from_slice(&(payload_len as u32).to_le_bytes());
    buf[8..12].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

impl Frame {
    /// Serializes this frame; see [`encode`].
    pub fn encode(&self) -> Result<Vec<u8>, EncodeError> {
        encode(self)
    }
}

// ---------------------------------------------------------------------------
// Incremental decoding
// ---------------------------------------------------------------------------

/// Incremental frame decoder. Feed bytes in with [`Decoder::push`] in
/// arbitrary chunks (as they arrive from a socket), pull frames out with
/// [`Decoder::next_frame`]. Never panics on garbage input.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    pos: usize,
    poisoned: Option<DecodeError>,
}

impl Decoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so long sessions don't grow the buffer forever.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > MAX_FRAME_LEN) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by [`Decoder::next_frame`].
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Tries to decode the next complete frame.
    ///
    /// * `Ok(Some(frame))` — a frame was decoded and consumed.
    /// * `Ok(None)` — not enough bytes yet; push more.
    /// * `Err(e)` with `!e.is_fatal()` — the offending frame was
    ///   consumed; calling again continues with the next frame.
    /// * `Err(e)` with `e.is_fatal()` — the decoder is poisoned and will
    ///   return the same error forever; drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        if avail[0] != MAGIC[0] || avail[1] != MAGIC[1] {
            return Err(self.poison(DecodeError::BadMagic {
                got: [avail[0], avail[1]],
            }));
        }
        if avail[2] != crate::frame::PROTOCOL_VERSION {
            return Err(self.poison(DecodeError::BadVersion { got: avail[2] }));
        }
        let tag = avail[3];
        let len = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]);
        if len as usize > MAX_FRAME_LEN {
            return Err(self.poison(DecodeError::Oversize { len }));
        }
        let expected_crc = u32::from_le_bytes([avail[8], avail[9], avail[10], avail[11]]);
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..total];
        // Recoverable failures below consume the frame either way: the
        // header was sound, so the stream stays in sync.
        self.pos += total;
        let got_crc = crc32(payload);
        if got_crc != expected_crc {
            return Err(DecodeError::BadChecksum {
                expected: expected_crc,
                got: got_crc,
            });
        }
        match Frame::decode_payload(tag, payload) {
            Ok(frame) => Ok(Some(frame)),
            Err(e) => Err(e.into()),
        }
    }

    fn poison(&mut self, e: DecodeError) -> DecodeError {
        self.poisoned = Some(e.clone());
        e
    }
}

/// Decodes exactly one frame from a complete buffer. Convenience for
/// tests and single-request paths.
pub fn decode_one(bytes: &[u8]) -> Result<Frame, DecodeError> {
    let mut d = Decoder::new();
    d.push(bytes);
    match d.next_frame()? {
        Some(f) => Ok(f),
        None => Err(DecodeError::BadPayload("truncated frame".into())),
    }
}

// ---------------------------------------------------------------------------
// Payload byte reader
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a payload slice.
pub(crate) struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], PayloadError> {
        if self.data.len() - self.pos < n {
            return Err(PayloadError::new(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PayloadError> {
        Ok(self.bytes(1)?[0])
    }

    /// A strict boolean: 0 or 1, anything else is malformed.
    pub(crate) fn flag(&mut self) -> Result<bool, PayloadError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PayloadError::new(format!(
                "flag byte {b} is neither 0 nor 1"
            ))),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, PayloadError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PayloadError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, PayloadError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Asserts the payload was fully consumed.
    pub(crate) fn finish(self) -> Result<(), PayloadError> {
        if self.pos != self.data.len() {
            return Err(PayloadError::new(format!(
                "{} trailing bytes after payload",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ErrorCode;

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_encode() {
        let frames = vec![
            Frame::Ack { seq: 17 },
            Frame::Error {
                code: ErrorCode::Internal,
                detail: "a somewhat longer detail string".into(),
            },
            Frame::Ack { seq: 18 },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            encode_into(f, &mut buf).unwrap();
            assert_eq!(buf, encode(f).unwrap(), "same bytes as the Vec path");
            assert_eq!(decode_one(&buf).unwrap(), *f);
        }
        // The shrink back to a small frame must not leave stale bytes.
        assert_eq!(buf.len(), encode(&frames[2]).unwrap().len());
    }

    #[test]
    fn round_trip_simple_frame() {
        let f = Frame::QueryAvail {
            machine: 7,
            horizon: 1800,
        };
        let bytes = f.encode().unwrap();
        assert_eq!(&bytes[..2], &MAGIC);
        assert_eq!(decode_one(&bytes).unwrap(), f);
    }

    #[test]
    fn chunked_push_yields_same_frames() {
        let frames = vec![
            Frame::Ack { seq: 1 },
            Frame::Error {
                code: ErrorCode::Internal,
                detail: "boom".into(),
            },
            Frame::Place { job_len: 3600 },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode().unwrap());
        }
        // Feed one byte at a time — worst-case fragmentation.
        let mut d = Decoder::new();
        let mut out = Vec::new();
        for b in stream {
            d.push(&[b]);
            while let Some(f) = d.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn payload_flip_is_recoverable_and_stream_continues() {
        let bad = Frame::Ack { seq: 42 };
        let good = Frame::Busy { shed_batches: 9 };
        let mut bytes = bad.encode().unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xa5; // flip a payload byte
        bytes.extend_from_slice(&good.encode().unwrap());
        let mut d = Decoder::new();
        d.push(&bytes);
        match d.next_frame() {
            Err(e @ DecodeError::BadChecksum { .. }) => assert!(!e.is_fatal()),
            other => panic!("expected checksum error, got {other:?}"),
        }
        assert_eq!(d.next_frame().unwrap(), Some(good));
    }

    #[test]
    fn bad_magic_poisons_the_decoder() {
        let mut bytes = Frame::Ack { seq: 1 }.encode().unwrap();
        bytes[0] = 0x00;
        let mut d = Decoder::new();
        d.push(&bytes);
        let e = d.next_frame().unwrap_err();
        assert!(e.is_fatal());
        assert_eq!(d.next_frame().unwrap_err(), e);
    }

    #[test]
    fn oversize_header_is_fatal() {
        let mut bytes = Frame::Ack { seq: 1 }.encode().unwrap();
        bytes[4..8].copy_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut d = Decoder::new();
        d.push(&bytes);
        assert!(d.next_frame().unwrap_err().is_fatal());
    }

    #[test]
    fn unknown_tag_is_recoverable() {
        let mut bytes = Frame::Ack { seq: 1 }.encode().unwrap();
        bytes[3] = 200;
        let mut d = Decoder::new();
        d.push(&bytes);
        match d.next_frame() {
            Err(e @ DecodeError::BadPayload(_)) => assert!(!e.is_fatal()),
            other => panic!("expected payload error, got {other:?}"),
        }
        // Frame was consumed; the decoder is still usable.
        let f = Frame::Ack { seq: 2 };
        d.push(&f.encode().unwrap());
        assert_eq!(d.next_frame().unwrap(), Some(f));
    }
}
