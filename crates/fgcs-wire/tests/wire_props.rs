//! Fuzz-style round-trip properties for the wire protocol.
//!
//! Equality is checked on the *re-encoded bytes*, not on the decoded
//! value: encode → decode → encode must be the identity on byte
//! strings. That is strictly stronger than value equality for the f64
//! fields (NaN bit patterns must survive) and is exactly the guarantee
//! the end-to-end parity test leans on.

use proptest::prelude::*;

use fgcs_wire::{
    decode_one, DecodeError, Decoder, EncodeError, ErrorCode, Frame, MachineStat, SampleLoad,
    SchedStatsPayload, StatsPayload, WireSample, WireTransition, HEADER_LEN, MAX_ERROR_DETAIL,
    MAX_SAMPLES_PER_BATCH,
};

/// encode → decode → encode must reproduce the exact byte string.
fn assert_bytes_round_trip(frame: &Frame) -> Result<(), TestCaseError> {
    let bytes = frame.encode().expect("encodable");
    let decoded = decode_one(&bytes).expect("decodable");
    let again = decoded.encode().expect("re-encodable");
    prop_assert_eq!(&bytes, &again);
    prop_assert_eq!(frame.tag(), decoded.tag());
    Ok(())
}

fn sample_strategy() -> impl proptest::strategy::Strategy<Value = WireSample> {
    (
        (any::<u64>(), any::<bool>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<bool>()),
    )
        .prop_map(
            |((t, direct, load_bits), (busy, total, resident, alive))| WireSample {
                t,
                load: if direct {
                    // Arbitrary bit patterns: NaNs and infinities included.
                    SampleLoad::Direct(f64::from_bits(load_bits))
                } else {
                    SampleLoad::Counters { busy, total }
                },
                host_resident_mb: resident,
                alive,
            },
        )
}

fn transition_strategy() -> impl proptest::strategy::Strategy<Value = WireTransition> {
    (any::<u64>(), any::<u64>(), 1u8..=5).prop_map(|(seq, at, state)| WireTransition {
        seq,
        at,
        state,
    })
}

fn machine_stat_strategy() -> impl proptest::strategy::Strategy<Value = MachineStat> {
    (
        (any::<u32>(), 1u8..=5, any::<bool>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((machine, state, harvestable), (last_t, occurrences, transitions))| MachineStat {
                machine,
                state,
                last_t,
                occurrences,
                transitions,
                harvestable,
            },
        )
}

fn detail_strategy() -> impl proptest::strategy::Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..64)
        .prop_map(|v| String::from_utf8(v).expect("ascii is utf-8"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sample_batches_round_trip(
        machine in any::<u32>(),
        samples in prop::collection::vec(sample_strategy(), 0..48),
    ) {
        assert_bytes_round_trip(&Frame::SampleBatch { machine, samples })?;
    }

    #[test]
    fn control_frames_round_trip(
        seq in any::<u64>(),
        machine in any::<u32>(),
        horizon in any::<u64>(),
        job_len in any::<u64>(),
    ) {
        assert_bytes_round_trip(&Frame::Ack { seq })?;
        assert_bytes_round_trip(&Frame::Busy { shed_batches: seq })?;
        assert_bytes_round_trip(&Frame::QueryAvail { machine, horizon })?;
        assert_bytes_round_trip(&Frame::Place { job_len })?;
        assert_bytes_round_trip(&Frame::QueryStats)?;
        assert_bytes_round_trip(&Frame::QueryTransitions {
            machine,
            since_seq: seq,
            max: horizon as u32,
        })?;
    }

    #[test]
    fn reply_frames_round_trip(
        machine in any::<u32>(),
        state in 1u8..=5,
        prob_bits in any::<u64>(),
        chosen in prop::option::of(any::<u32>()),
    ) {
        let prob = f64::from_bits(prob_bits);
        assert_bytes_round_trip(&Frame::AvailReply { machine, state, prob })?;
        assert_bytes_round_trip(&Frame::PlaceReply { machine: chosen, prob })?;
    }

    #[test]
    fn transitions_round_trip(
        machine in any::<u32>(),
        transitions in prop::collection::vec(transition_strategy(), 0..64),
    ) {
        assert_bytes_round_trip(&Frame::Transitions { machine, transitions })?;
    }

    #[test]
    fn stats_round_trip(
        counters in prop::collection::vec(any::<u64>(), 9..10),
        rate_bits in any::<u64>(),
        machines in prop::collection::vec(machine_stat_strategy(), 0..24),
    ) {
        let s = StatsPayload {
            ingested_batches: counters[0],
            ingested_samples: counters[1],
            shed_batches: counters[2],
            shed_samples: counters[3],
            decode_errors: counters[4],
            busy_replies: counters[5],
            queue_depth: counters[6],
            queries_answered: counters[7],
            placements_answered: counters[8],
            ingest_rate: f64::from_bits(rate_bits),
            machines,
        };
        assert_bytes_round_trip(&Frame::StatsReply(s))?;
    }

    #[test]
    fn sched_frames_round_trip(
        ids in prop::collection::vec(any::<u64>(), 8..9),
        user in any::<u32>(),
        job_state in 1u8..=3,
        share_op in 1u8..=3,
        machine in prop::option::of(any::<u32>()),
        counts in prop::collection::vec(any::<u32>(), 2..3),
    ) {
        assert_bytes_round_trip(&Frame::SchedSubmit { user, work: ids[0] })?;
        assert_bytes_round_trip(&Frame::SchedQueryJob { id: ids[1] })?;
        assert_bytes_round_trip(&Frame::SchedJobReply {
            id: ids[1],
            user,
            state: job_state,
            machine,
            done: ids[2],
            work: ids[3],
            evictions: counts[0],
            migrations: counts[1],
        })?;
        assert_bytes_round_trip(&Frame::SchedShare { user, op: share_op, amount: ids[4] })?;
        assert_bytes_round_trip(&Frame::SchedShareReply {
            user,
            base: ids[5],
            extra: ids[6],
            in_use: ids[7],
            pool_free: ids[0],
        })?;
        assert_bytes_round_trip(&Frame::SchedQueryStats)?;
        assert_bytes_round_trip(&Frame::SchedStatsReply(SchedStatsPayload {
            submitted: ids[0],
            completed: ids[1],
            rejected: ids[2],
            evictions: ids[3],
            migrations: ids[4],
            wasted_secs: ids[5],
            queued: ids[6],
            running: ids[7],
        }))?;
    }

    #[test]
    fn error_frames_round_trip(code in 1u8..=9, detail in detail_strategy()) {
        let code = ErrorCode::from_code(code).expect("valid code");
        assert_bytes_round_trip(&Frame::Error { code, detail })?;
    }

    #[test]
    fn auth_frames_round_trip(token in detail_strategy()) {
        assert_bytes_round_trip(&Frame::Auth { token })?;
    }

    #[test]
    fn chunked_decode_equals_oneshot(
        seqs in prop::collection::vec(any::<u64>(), 1..12),
        chunk in 1usize..40,
    ) {
        // A mixed stream of frames, fed to one decoder in `chunk`-byte
        // pieces and to another in one shot.
        let frames: Vec<Frame> = seqs
            .iter()
            .enumerate()
            .map(|(i, &s)| match i % 3 {
                0 => Frame::Ack { seq: s },
                1 => Frame::QueryAvail { machine: s as u32, horizon: s },
                _ => Frame::SampleBatch {
                    machine: s as u32,
                    samples: vec![WireSample {
                        t: s,
                        load: SampleLoad::Direct(0.25),
                        host_resident_mb: 64,
                        alive: true,
                    }],
                },
            })
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode().unwrap());
        }

        let mut oneshot = Decoder::new();
        oneshot.push(&stream);
        let mut expect = Vec::new();
        while let Some(f) = oneshot.next_frame().unwrap() {
            expect.push(f);
        }

        let mut chunked = Decoder::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            chunked.push(piece);
            while let Some(f) = chunked.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(got, frames);
    }

    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any byte soup must produce frames, recoverable errors, a
        // fatal error, or starvation — never a panic or an infinite
        // loop (every non-`Ok(None)` outcome consumes at least a
        // header's worth of bytes or poisons the decoder).
        let mut d = Decoder::new();
        d.push(&bytes);
        for _ in 0..=bytes.len() {
            match d.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) if e.is_fatal() => break,
                Err(_) => {}
            }
        }
    }

    #[test]
    fn payload_flip_always_detected(
        machine in any::<u32>(),
        samples in prop::collection::vec(sample_strategy(), 1..16),
        flip_seed in any::<u64>(),
        mask in 1u8..=255,
    ) {
        // The guarantee FrameCorruptor (fgcs-faults) relies on: XOR-ing
        // any payload byte with a nonzero mask must be detected, so
        // "frames corrupted" == "frames rejected" exactly.
        let frame = Frame::SampleBatch { machine, samples };
        let mut bytes = frame.encode().unwrap();
        let payload_len = bytes.len() - HEADER_LEN;
        let idx = HEADER_LEN + (flip_seed as usize % payload_len);
        bytes[idx] ^= mask;
        let mut d = Decoder::new();
        d.push(&bytes);
        match d.next_frame() {
            Err(DecodeError::BadChecksum { .. }) => {}
            other => {
                return Err(TestCaseError::fail(format!("flip at {idx} undetected: {other:?}")))
            }
        }
        // The corrupted frame was consumed; a clean frame still decodes.
        let good = Frame::Ack { seq: 7 };
        d.push(&good.encode().unwrap());
        prop_assert_eq!(d.next_frame().unwrap(), Some(good));
    }
}

#[test]
fn encode_rejects_overlong_fields() {
    let sample = WireSample {
        t: 0,
        load: SampleLoad::Direct(0.0),
        host_resident_mb: 0,
        alive: true,
    };
    let too_many = Frame::SampleBatch {
        machine: 0,
        samples: vec![sample; MAX_SAMPLES_PER_BATCH + 1],
    };
    assert!(matches!(
        too_many.encode(),
        Err(EncodeError::TooManyElements {
            what: "samples",
            ..
        })
    ));

    let long_detail = Frame::Error {
        code: ErrorCode::Internal,
        detail: "x".repeat(MAX_ERROR_DETAIL + 1),
    };
    assert!(matches!(
        long_detail.encode(),
        Err(EncodeError::TooManyElements { .. })
    ));
}
