//! `fgcs-serve`: run the availability service from the command line.
//!
//! ```text
//! fgcs-serve [--addr HOST:PORT] [--backend threads|epoll] [--workers N]
//!            [--loops N] [--fd-handoff] [--queue-capacity N]
//!            [--max-conns N] [--shards N] [--auth-token TOKEN]
//!            [--snapshot-dir DIR] [--snapshot-interval MS] [--reuse-addr]
//!            [--repl-log N] [--follower-of HOST:PORT] [--pull-interval MS]
//!            [--auto-promote] [--lease MS] [--missed-pulls N]
//!            [--promotion-peer HOST:PORT]... [--max-read-lag N]
//! ```
//!
//! Prints the bound address on stdout (port 0 picks a free port, which
//! is how the CI smoke drives it), then serves until stdin reaches EOF.

use std::io::Read;
use std::process::exit;

use fgcs_service::{Backend, Server, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fgcs-serve [--addr HOST:PORT] [--backend threads|epoll] [--workers N]\n\
         \x20                 [--loops N] [--fd-handoff] [--queue-capacity N]\n\
         \x20                 [--max-conns N] [--shards N] [--auth-token TOKEN]\n\
         \x20                 [--snapshot-dir DIR] [--snapshot-interval MS] [--reuse-addr]\n\
         \x20                 [--repl-log N] [--follower-of HOST:PORT] [--pull-interval MS]\n\
         \x20                 [--auto-promote] [--lease MS] [--missed-pulls N]\n\
         \x20                 [--promotion-peer HOST:PORT]... [--max-read-lag N]\n\
         \n\
         Runs until stdin reaches EOF. Prints `listening on ADDR` once bound.\n\
         With --snapshot-dir the server checkpoints its ingest state there\n\
         periodically and on shutdown, and restores from it at startup.\n\
         --loops N runs the epoll backend as N event loops sharing the port\n\
         via SO_REUSEPORT (0 = auto: min(cores, shards)); N must not exceed\n\
         --shards. --fd-handoff forces the single-listener fd-handoff\n\
         fallback instead of SO_REUSEPORT.\n\
         --repl-log N retains the last N replication log entries so a\n\
         follower can stream them; --follower-of ADDR starts this node as\n\
         that primary's follower (rejects ingest), pulling every\n\
         --pull-interval ms when caught up. --auto-promote lets a follower\n\
         self-promote once its primary misses --missed-pulls consecutive\n\
         pulls AND the --lease ms granted on the last reply has expired,\n\
         deferring to any more-caught-up --promotion-peer (repeatable; list\n\
         the sibling followers' addresses). --max-read-lag N lets a\n\
         follower answer QueryAvail/Place/QueryStats while its applied seq\n\
         is within N of the primary head it last saw (otherwise TooStale)."
    );
    exit(2);
}

fn main() {
    let mut cfg = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("fgcs-serve: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--backend" => match Backend::parse(&value("--backend")) {
                Some(b) => cfg.backend = b,
                None => {
                    eprintln!("fgcs-serve: --backend must be `threads` or `epoll`");
                    usage()
                }
            },
            "--workers" => match value("--workers").parse() {
                Ok(n) => cfg.workers = n,
                Err(_) => usage(),
            },
            "--loops" => match value("--loops").parse() {
                Ok(n) => cfg.event_loops = n,
                Err(_) => usage(),
            },
            "--fd-handoff" => cfg.force_fd_handoff = true,
            "--queue-capacity" => match value("--queue-capacity").parse() {
                Ok(n) if n >= 1 => cfg.queue_capacity = n,
                _ => usage(),
            },
            "--max-conns" => match value("--max-conns").parse() {
                Ok(n) => cfg.max_connections = n,
                Err(_) => usage(),
            },
            "--shards" => match value("--shards").parse() {
                Ok(n) => cfg.state_shards = n,
                Err(_) => usage(),
            },
            "--auth-token" => cfg.auth_token = Some(value("--auth-token")),
            "--snapshot-dir" => cfg.snapshot_dir = Some(value("--snapshot-dir")),
            "--snapshot-interval" => match value("--snapshot-interval").parse() {
                Ok(ms) => cfg.snapshot_interval_ms = ms,
                Err(_) => usage(),
            },
            "--reuse-addr" => cfg.reuse_addr = true,
            "--repl-log" => match value("--repl-log").parse() {
                Ok(n) if n >= 1 => cfg.repl_log_capacity = n,
                _ => usage(),
            },
            "--follower-of" => cfg.follower_of = Some(value("--follower-of")),
            "--pull-interval" => match value("--pull-interval").parse() {
                Ok(ms) => cfg.pull_interval_ms = ms,
                Err(_) => usage(),
            },
            "--auto-promote" => cfg.auto_promote = true,
            "--lease" => match value("--lease").parse() {
                Ok(ms) => cfg.lease_ms = ms,
                Err(_) => usage(),
            },
            "--missed-pulls" => match value("--missed-pulls").parse() {
                Ok(n) if n >= 1 => cfg.missed_pull_threshold = n,
                _ => usage(),
            },
            "--promotion-peer" => cfg.promotion_peers.push(value("--promotion-peer")),
            "--max-read-lag" => match value("--max-read-lag").parse() {
                Ok(n) => cfg.max_read_lag = Some(n),
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fgcs-serve: unknown argument {other:?}");
                usage()
            }
        }
    }

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fgcs-serve: failed to start: {e}");
            exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    eprintln!(
        "fgcs-serve: backend={} loops={}",
        server.backend().name(),
        server.event_loops()
    );

    // Block until the parent closes our stdin, then drain and exit.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    let stats = server.stats();
    server.shutdown();
    eprintln!(
        "fgcs-serve: done — ingested {} batches ({} samples), shed {}, decode errors {}, \
         {} queries answered",
        stats.ingested_batches,
        stats.ingested_samples,
        stats.shed_batches,
        stats.decode_errors,
        stats.queries_answered
    );
}
