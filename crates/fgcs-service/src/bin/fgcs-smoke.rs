//! `fgcs-smoke`: a tiny end-to-end client probe for CI.
//!
//! ```text
//! fgcs-smoke --addr HOST:PORT [--token TOKEN]
//! fgcs-smoke --addr HOST:PORT --replay MACHINES:SAMPLES [--resume] [--loops N]
//! ```
//!
//! **Probe mode** (no `--replay`) checks, in order:
//!
//! 1. a (token-authenticated) client can send a sample batch and get
//!    an `Ack`;
//! 2. after a forced disconnect the next batch transparently
//!    reconnects (re-authenticating) and is `Ack`ed too;
//! 3. `QueryStats` reports both batches ingested;
//! 4. when a token is set, a client presenting the *wrong* token is
//!    rejected with `PermissionDenied` (the typed `Unauthorized`
//!    error), not retried into oblivion.
//!
//! **Replay mode** streams a deterministic square-wave trace (the same
//! wave regardless of timing, so two runs are bit-comparable) for
//! `MACHINES` machines × `SAMPLES` samples each, then waits until the
//! server has ingested everything. With `--resume` it first asks the
//! server (via `QueryStats`, whose per-machine stats carry `last_t`)
//! how far each machine got, and replays only samples *strictly after*
//! that — the client side of restart recovery. Strictly: a duplicate
//! of the `last_t` sample would be accepted by the server (only `t <
//! last_t` counts as out-of-order) and would skew availability means.
//! `--loops N` replays over N concurrent connections (machine `m`
//! rides connection `m % N`, so each machine's stream stays in order
//! on one connection and the replay stays deterministic) — pointed at
//! a multi-loop server this exercises concurrent ingest across event
//! loops, including the cross-loop forwarding rings.
//!
//! Exits 0 on success, 1 with a message on the first failure — the CI
//! smoke gate for the epoll backend, auth handshake, and the
//! kill-and-restart snapshot check.

use std::collections::BTreeMap;
use std::process::exit;

use fgcs_service::{ClientConfig, ServiceClient};
use fgcs_wire::{Frame, SampleLoad, WireSample};

fn fail(msg: &str) -> ! {
    eprintln!("fgcs-smoke: FAIL: {msg}");
    exit(1);
}

fn batch(machine: u32, t0: u64) -> Frame {
    let samples = (0..4)
        .map(|i| WireSample {
            t: t0 + 60 * i,
            load: SampleLoad::Direct(0.05),
            host_resident_mb: 64,
            alive: true,
        })
        .collect();
    Frame::SampleBatch { machine, samples }
}

/// The deterministic replay wave: sample `i` of machine `m` is at
/// `t = i * 15` with a square-wave load (40 samples busy, 40 idle,
/// phase-shifted per machine) — long enough stretches to drive real
/// detector transitions and occurrence records.
fn wave_sample(machine: u32, i: u64) -> WireSample {
    let busy = ((i + 7 * machine as u64) / 40) % 2 == 1;
    WireSample {
        t: i * 15,
        load: SampleLoad::Direct(if busy { 0.9 } else { 0.05 }),
        host_resident_mb: 100,
        alive: true,
    }
}

fn query_stats(client: &mut ServiceClient) -> fgcs_wire::StatsPayload {
    match client.request(&Frame::QueryStats) {
        Ok(Frame::StatsReply(stats)) => stats,
        Ok(other) => fail(&format!("stats: unexpected tag {}", other.tag())),
        Err(e) => fail(&format!("stats: {e}")),
    }
}

/// Streams one partition of the wave over its own connection. Runs on
/// a worker thread, so failures exit the whole process via `fail`.
fn stream_partition(
    cfg: ClientConfig,
    machines: Vec<u32>,
    samples: u64,
    last_t: BTreeMap<u32, u64>,
) {
    let mut client = match ServiceClient::connect(cfg) {
        Ok(c) => c,
        Err(e) => fail(&format!("replay connect: {e}")),
    };
    for machine in machines {
        let from = last_t.get(&machine).copied();
        let todo: Vec<WireSample> = (0..samples)
            .map(|i| wave_sample(machine, i))
            .filter(|s| from.is_none_or(|lt| s.t > lt))
            .collect();
        for chunk in todo.chunks(50) {
            let frame = Frame::SampleBatch {
                machine,
                samples: chunk.to_vec(),
            };
            match client.request(&frame) {
                Ok(Frame::Ack { .. }) => {}
                // A shed batch would break the bit-identity the restart
                // smoke diffs on; the replay load is far below the
                // queue capacity, so Busy means something is wrong.
                Ok(other) => fail(&format!(
                    "replay machine {machine}: expected Ack, got tag {}",
                    other.tag()
                )),
                Err(e) => fail(&format!("replay machine {machine}: {e}")),
            }
        }
    }
}

/// Streams the wave to the server over `loops` concurrent connections;
/// with `resume` set, only the samples the server hasn't seen yet (per
/// its own `last_t` book-keeping). Machine `m` always rides connection
/// `m % loops`: per-machine sample order is preserved, so the recorded
/// occurrences are deterministic however the connections interleave.
fn run_replay(
    cfg: &ClientConfig,
    client: &mut ServiceClient,
    machines: u32,
    samples: u64,
    resume: bool,
    loops: u32,
) {
    let mut last_t: BTreeMap<u32, u64> = BTreeMap::new();
    if resume {
        for m in query_stats(client).machines {
            last_t.insert(m.machine, m.last_t);
        }
    }
    let conns = loops.clamp(1, machines);
    let mut partitions: Vec<Vec<u32>> = vec![Vec::new(); conns as usize];
    for machine in 1..=machines {
        partitions[(machine % conns) as usize].push(machine);
    }
    let workers: Vec<_> = partitions
        .into_iter()
        .filter(|p| !p.is_empty())
        .map(|part| {
            let cfg = cfg.clone();
            let last_t = last_t.clone();
            std::thread::spawn(move || stream_partition(cfg, part, samples, last_t))
        })
        .collect();
    for worker in workers {
        if worker.join().is_err() {
            fail("replay: a streaming connection panicked");
        }
    }
    // Ingest is asynchronous: wait until every machine's pipeline has
    // consumed its final sample before declaring the replay done (the
    // caller may snapshot-and-diff right after we exit).
    let final_t = (samples - 1) * 15;
    for _ in 0..200 {
        let stats = query_stats(client);
        let caught_up = (1..=machines).all(|m| {
            stats
                .machines
                .iter()
                .any(|s| s.machine == m && s.last_t >= final_t)
        });
        if caught_up {
            println!("fgcs-smoke: replay OK ({machines} machines x {samples} samples)");
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    fail("replay: server did not catch up to the final sample in time");
}

fn main() {
    let mut addr = None;
    let mut token: Option<String> = None;
    let mut replay: Option<(u32, u64)> = None;
    let mut resume = false;
    let mut loops = 1u32;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--token" => token = args.next(),
            "--loops" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => loops = n,
                _ => fail("--loops needs a count >= 1"),
            },
            "--replay" => {
                let spec = args.next().unwrap_or_default();
                let parsed = spec
                    .split_once(':')
                    .and_then(|(m, n)| Some((m.parse::<u32>().ok()?, n.parse::<u64>().ok()?)));
                match parsed {
                    Some((m, n)) if m >= 1 && n >= 2 => replay = Some((m, n)),
                    _ => fail("--replay needs MACHINES:SAMPLES (at least 1:2)"),
                }
            }
            "--resume" => resume = true,
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = addr else {
        fail("--addr is required");
    };

    let mut cfg = ClientConfig::new(addr.clone());
    cfg.backoff_unit_ms = 1; // keep CI fast if something is down
    cfg.token = token.clone();
    let mut client = match ServiceClient::connect(cfg.clone()) {
        Ok(c) => c,
        Err(e) => fail(&format!("connect: {e}")),
    };

    if let Some((machines, samples)) = replay {
        run_replay(&cfg, &mut client, machines, samples, resume, loops);
        return;
    }

    match client.request(&batch(7, 0)) {
        Ok(Frame::Ack { .. }) => {}
        Ok(other) => fail(&format!("batch 1: expected Ack, got tag {}", other.tag())),
        Err(e) => fail(&format!("batch 1: {e}")),
    }

    client.force_disconnect();
    match client.request(&batch(7, 240)) {
        Ok(Frame::Ack { .. }) => {}
        Ok(other) => fail(&format!(
            "batch 2 (after reconnect): expected Ack, got tag {}",
            other.tag()
        )),
        Err(e) => fail(&format!("batch 2 (after reconnect): {e}")),
    }
    if client.reconnects != 1 {
        fail(&format!("expected 1 reconnect, saw {}", client.reconnects));
    }

    match client.request(&Frame::QueryStats) {
        Ok(Frame::StatsReply(stats)) => {
            // The queue is asynchronous; both batches must at least be
            // accounted for (ingested now or still queued — an Ack
            // means accepted, so ingested catches up; poll briefly).
            let mut ingested = stats.ingested_batches;
            let mut spins = 0;
            while ingested < 2 && spins < 100 {
                std::thread::sleep(std::time::Duration::from_millis(10));
                match client.request(&Frame::QueryStats) {
                    Ok(Frame::StatsReply(s)) => ingested = s.ingested_batches,
                    Ok(other) => fail(&format!("stats poll: unexpected tag {}", other.tag())),
                    Err(e) => fail(&format!("stats poll: {e}")),
                }
                spins += 1;
            }
            if ingested < 2 {
                fail(&format!("expected >= 2 ingested batches, saw {ingested}"));
            }
        }
        Ok(other) => fail(&format!("stats: unexpected tag {}", other.tag())),
        Err(e) => fail(&format!("stats: {e}")),
    }

    if token.is_some() {
        let mut bad = ClientConfig::new(addr);
        bad.backoff_unit_ms = 1;
        bad.token = Some("definitely-not-the-token".to_string());
        match ServiceClient::connect(bad) {
            Err(e) if e.kind() == std::io::ErrorKind::PermissionDenied => {}
            Err(e) => fail(&format!(
                "wrong token: expected PermissionDenied, got {e:?}"
            )),
            Ok(_) => fail("wrong token was accepted"),
        }
    }

    println!("fgcs-smoke: OK");
}
