//! `fgcs-smoke`: a tiny end-to-end client probe for CI.
//!
//! ```text
//! fgcs-smoke --addr HOST:PORT [--token TOKEN]
//! fgcs-smoke --addr HOST:PORT --replay MACHINES:SAMPLES [--resume]
//! ```
//!
//! **Probe mode** (no `--replay`) checks, in order:
//!
//! 1. a (token-authenticated) client can send a sample batch and get
//!    an `Ack`;
//! 2. after a forced disconnect the next batch transparently
//!    reconnects (re-authenticating) and is `Ack`ed too;
//! 3. `QueryStats` reports both batches ingested;
//! 4. when a token is set, a client presenting the *wrong* token is
//!    rejected with `PermissionDenied` (the typed `Unauthorized`
//!    error), not retried into oblivion.
//!
//! **Replay mode** streams a deterministic square-wave trace (the same
//! wave regardless of timing, so two runs are bit-comparable) for
//! `MACHINES` machines × `SAMPLES` samples each, then waits until the
//! server has ingested everything. With `--resume` it first asks the
//! server (via `QueryStats`, whose per-machine stats carry `last_t`)
//! how far each machine got, and replays only samples *strictly after*
//! that — the client side of restart recovery. Strictly: a duplicate
//! of the `last_t` sample would be accepted by the server (only `t <
//! last_t` counts as out-of-order) and would skew availability means.
//!
//! Exits 0 on success, 1 with a message on the first failure — the CI
//! smoke gate for the epoll backend, auth handshake, and the
//! kill-and-restart snapshot check.

use std::collections::BTreeMap;
use std::process::exit;

use fgcs_service::{ClientConfig, ServiceClient};
use fgcs_wire::{Frame, SampleLoad, WireSample};

fn fail(msg: &str) -> ! {
    eprintln!("fgcs-smoke: FAIL: {msg}");
    exit(1);
}

fn batch(machine: u32, t0: u64) -> Frame {
    let samples = (0..4)
        .map(|i| WireSample {
            t: t0 + 60 * i,
            load: SampleLoad::Direct(0.05),
            host_resident_mb: 64,
            alive: true,
        })
        .collect();
    Frame::SampleBatch { machine, samples }
}

/// The deterministic replay wave: sample `i` of machine `m` is at
/// `t = i * 15` with a square-wave load (40 samples busy, 40 idle,
/// phase-shifted per machine) — long enough stretches to drive real
/// detector transitions and occurrence records.
fn wave_sample(machine: u32, i: u64) -> WireSample {
    let busy = ((i + 7 * machine as u64) / 40) % 2 == 1;
    WireSample {
        t: i * 15,
        load: SampleLoad::Direct(if busy { 0.9 } else { 0.05 }),
        host_resident_mb: 100,
        alive: true,
    }
}

fn query_stats(client: &mut ServiceClient) -> fgcs_wire::StatsPayload {
    match client.request(&Frame::QueryStats) {
        Ok(Frame::StatsReply(stats)) => stats,
        Ok(other) => fail(&format!("stats: unexpected tag {}", other.tag())),
        Err(e) => fail(&format!("stats: {e}")),
    }
}

/// Streams the wave to the server; with `resume` set, only the samples
/// the server hasn't seen yet (per its own `last_t` book-keeping).
fn run_replay(client: &mut ServiceClient, machines: u32, samples: u64, resume: bool) {
    let mut last_t: BTreeMap<u32, u64> = BTreeMap::new();
    if resume {
        for m in query_stats(client).machines {
            last_t.insert(m.machine, m.last_t);
        }
    }
    for machine in 1..=machines {
        let from = last_t.get(&machine).copied();
        let todo: Vec<WireSample> = (0..samples)
            .map(|i| wave_sample(machine, i))
            .filter(|s| from.is_none_or(|lt| s.t > lt))
            .collect();
        for chunk in todo.chunks(50) {
            let frame = Frame::SampleBatch {
                machine,
                samples: chunk.to_vec(),
            };
            match client.request(&frame) {
                Ok(Frame::Ack { .. }) => {}
                // A shed batch would break the bit-identity the restart
                // smoke diffs on; the replay load is far below the
                // queue capacity, so Busy means something is wrong.
                Ok(other) => fail(&format!(
                    "replay machine {machine}: expected Ack, got tag {}",
                    other.tag()
                )),
                Err(e) => fail(&format!("replay machine {machine}: {e}")),
            }
        }
    }
    // Ingest is asynchronous: wait until every machine's pipeline has
    // consumed its final sample before declaring the replay done (the
    // caller may snapshot-and-diff right after we exit).
    let final_t = (samples - 1) * 15;
    for _ in 0..200 {
        let stats = query_stats(client);
        let caught_up = (1..=machines).all(|m| {
            stats
                .machines
                .iter()
                .any(|s| s.machine == m && s.last_t >= final_t)
        });
        if caught_up {
            println!("fgcs-smoke: replay OK ({machines} machines x {samples} samples)");
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    fail("replay: server did not catch up to the final sample in time");
}

fn main() {
    let mut addr = None;
    let mut token: Option<String> = None;
    let mut replay: Option<(u32, u64)> = None;
    let mut resume = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--token" => token = args.next(),
            "--replay" => {
                let spec = args.next().unwrap_or_default();
                let parsed = spec
                    .split_once(':')
                    .and_then(|(m, n)| Some((m.parse::<u32>().ok()?, n.parse::<u64>().ok()?)));
                match parsed {
                    Some((m, n)) if m >= 1 && n >= 2 => replay = Some((m, n)),
                    _ => fail("--replay needs MACHINES:SAMPLES (at least 1:2)"),
                }
            }
            "--resume" => resume = true,
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = addr else {
        fail("--addr is required");
    };

    let mut cfg = ClientConfig::new(addr.clone());
    cfg.backoff_unit_ms = 1; // keep CI fast if something is down
    cfg.token = token.clone();
    let mut client = match ServiceClient::connect(cfg.clone()) {
        Ok(c) => c,
        Err(e) => fail(&format!("connect: {e}")),
    };

    if let Some((machines, samples)) = replay {
        run_replay(&mut client, machines, samples, resume);
        return;
    }

    match client.request(&batch(7, 0)) {
        Ok(Frame::Ack { .. }) => {}
        Ok(other) => fail(&format!("batch 1: expected Ack, got tag {}", other.tag())),
        Err(e) => fail(&format!("batch 1: {e}")),
    }

    client.force_disconnect();
    match client.request(&batch(7, 240)) {
        Ok(Frame::Ack { .. }) => {}
        Ok(other) => fail(&format!(
            "batch 2 (after reconnect): expected Ack, got tag {}",
            other.tag()
        )),
        Err(e) => fail(&format!("batch 2 (after reconnect): {e}")),
    }
    if client.reconnects != 1 {
        fail(&format!("expected 1 reconnect, saw {}", client.reconnects));
    }

    match client.request(&Frame::QueryStats) {
        Ok(Frame::StatsReply(stats)) => {
            // The queue is asynchronous; both batches must at least be
            // accounted for (ingested now or still queued — an Ack
            // means accepted, so ingested catches up; poll briefly).
            let mut ingested = stats.ingested_batches;
            let mut spins = 0;
            while ingested < 2 && spins < 100 {
                std::thread::sleep(std::time::Duration::from_millis(10));
                match client.request(&Frame::QueryStats) {
                    Ok(Frame::StatsReply(s)) => ingested = s.ingested_batches,
                    Ok(other) => fail(&format!("stats poll: unexpected tag {}", other.tag())),
                    Err(e) => fail(&format!("stats poll: {e}")),
                }
                spins += 1;
            }
            if ingested < 2 {
                fail(&format!("expected >= 2 ingested batches, saw {ingested}"));
            }
        }
        Ok(other) => fail(&format!("stats: unexpected tag {}", other.tag())),
        Err(e) => fail(&format!("stats: {e}")),
    }

    if token.is_some() {
        let mut bad = ClientConfig::new(addr);
        bad.backoff_unit_ms = 1;
        bad.token = Some("definitely-not-the-token".to_string());
        match ServiceClient::connect(bad) {
            Err(e) if e.kind() == std::io::ErrorKind::PermissionDenied => {}
            Err(e) => fail(&format!(
                "wrong token: expected PermissionDenied, got {e:?}"
            )),
            Ok(_) => fail("wrong token was accepted"),
        }
    }

    println!("fgcs-smoke: OK");
}
