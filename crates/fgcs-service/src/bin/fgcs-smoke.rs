//! `fgcs-smoke`: a tiny end-to-end client probe for CI.
//!
//! ```text
//! fgcs-smoke --addr HOST:PORT [--token TOKEN]
//! ```
//!
//! Against a running server it checks, in order:
//!
//! 1. a (token-authenticated) client can send a sample batch and get
//!    an `Ack`;
//! 2. after a forced disconnect the next batch transparently
//!    reconnects (re-authenticating) and is `Ack`ed too;
//! 3. `QueryStats` reports both batches ingested;
//! 4. when a token is set, a client presenting the *wrong* token is
//!    rejected with `PermissionDenied` (the typed `Unauthorized`
//!    error), not retried into oblivion.
//!
//! Exits 0 on success, 1 with a message on the first failure — the CI
//! smoke gate for the epoll backend + auth handshake.

use std::process::exit;

use fgcs_service::{ClientConfig, ServiceClient};
use fgcs_wire::{Frame, SampleLoad, WireSample};

fn fail(msg: &str) -> ! {
    eprintln!("fgcs-smoke: FAIL: {msg}");
    exit(1);
}

fn batch(machine: u32, t0: u64) -> Frame {
    let samples = (0..4)
        .map(|i| WireSample {
            t: t0 + 60 * i,
            load: SampleLoad::Direct(0.05),
            host_resident_mb: 64,
            alive: true,
        })
        .collect();
    Frame::SampleBatch { machine, samples }
}

fn main() {
    let mut addr = None;
    let mut token: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--token" => token = args.next(),
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = addr else {
        fail("--addr is required");
    };

    let mut cfg = ClientConfig::new(addr.clone());
    cfg.backoff_unit_ms = 1; // keep CI fast if something is down
    cfg.token = token.clone();
    let mut client = match ServiceClient::connect(cfg.clone()) {
        Ok(c) => c,
        Err(e) => fail(&format!("connect: {e}")),
    };

    match client.request(&batch(7, 0)) {
        Ok(Frame::Ack { .. }) => {}
        Ok(other) => fail(&format!("batch 1: expected Ack, got tag {}", other.tag())),
        Err(e) => fail(&format!("batch 1: {e}")),
    }

    client.force_disconnect();
    match client.request(&batch(7, 240)) {
        Ok(Frame::Ack { .. }) => {}
        Ok(other) => fail(&format!(
            "batch 2 (after reconnect): expected Ack, got tag {}",
            other.tag()
        )),
        Err(e) => fail(&format!("batch 2 (after reconnect): {e}")),
    }
    if client.reconnects != 1 {
        fail(&format!("expected 1 reconnect, saw {}", client.reconnects));
    }

    match client.request(&Frame::QueryStats) {
        Ok(Frame::StatsReply(stats)) => {
            // The queue is asynchronous; both batches must at least be
            // accounted for (ingested now or still queued — an Ack
            // means accepted, so ingested catches up; poll briefly).
            let mut ingested = stats.ingested_batches;
            let mut spins = 0;
            while ingested < 2 && spins < 100 {
                std::thread::sleep(std::time::Duration::from_millis(10));
                match client.request(&Frame::QueryStats) {
                    Ok(Frame::StatsReply(s)) => ingested = s.ingested_batches,
                    Ok(other) => fail(&format!("stats poll: unexpected tag {}", other.tag())),
                    Err(e) => fail(&format!("stats poll: {e}")),
                }
                spins += 1;
            }
            if ingested < 2 {
                fail(&format!("expected >= 2 ingested batches, saw {ingested}"));
            }
        }
        Ok(other) => fail(&format!("stats: unexpected tag {}", other.tag())),
        Err(e) => fail(&format!("stats: {e}")),
    }

    if token.is_some() {
        let mut bad = ClientConfig::new(addr);
        bad.backoff_unit_ms = 1;
        bad.token = Some("definitely-not-the-token".to_string());
        match ServiceClient::connect(bad) {
            Err(e) if e.kind() == std::io::ErrorKind::PermissionDenied => {}
            Err(e) => fail(&format!(
                "wrong token: expected PermissionDenied, got {e:?}"
            )),
            Ok(_) => fail("wrong token was accepted"),
        }
    }

    println!("fgcs-smoke: OK");
}
