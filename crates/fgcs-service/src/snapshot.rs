//! Crash-safe snapshots of the ingest state (DESIGN.md §11).
//!
//! A snapshot is one self-describing JSONL file:
//!
//! ```text
//! {"kind":"snapshot","version":1,"machines":M,"elapsed_ms":E}
//! {"kind":"machine", ... one per machine, ascending id ... }
//! {"kind":"record",  ... every occurrence record, machine-major ... }
//! {"kind":"transition","machine":..,"seq":..,"at":..,"state":..}
//! {"kind":"counters", ... the ten accounting counters ... }
//! {"kind":"end","lines":N,"crc":C}
//! ```
//!
//! Record lines reuse the `fgcs-testbed` trace serialization verbatim
//! (wrapped with a `kind` discriminator the record parser ignores), so
//! the f64 availability means round-trip bit-exactly. The trailer's
//! `crc` is [`fgcs_wire::crc32`] over every byte before the trailer
//! line, and `lines` counts those lines — a file truncated mid-write
//! fails both checks and the loader falls back to the previous snapshot.
//!
//! **Atomicity protocol.** A snapshot is written to `<name>.tmp`,
//! fsynced, renamed over `<name>`, and the directory is fsynced; a
//! crash at any point leaves either the old set of complete snapshots
//! or the old set plus one new complete snapshot, never a partial file
//! under a final name. The two most recent snapshots are kept so a
//! snapshot corrupted *after* the write (disk damage) still leaves a
//! fallback.
//!
//! **Restore invariants.** A snapshot is applied all-or-nothing: the
//! whole file is parsed and every machine's state rebuilt *before*
//! anything is installed; any inconsistency (CRC, counts, a closed
//! record marked open, a transition sequence the counter would reuse)
//! rejects the file and the loader tries the next-older one.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fgcs_core::detector::DetectorSnapshot;
use fgcs_core::model::{AvailState, FailureCause, LoadBand};
use fgcs_core::monitor::MonitorSnapshot;
use fgcs_testbed::json::{self, ObjWriter, Value};
use fgcs_testbed::trace::{record_from_obj, record_to_json};
use fgcs_testbed::{RecorderSnapshot, TraceRecord};
use fgcs_wire::codec::crc32;
use fgcs_wire::WireTransition;

use crate::state::CounterValues;

/// Current snapshot format version.
pub(crate) const SNAPSHOT_VERSION: u64 = 1;

/// Everything one machine's pipeline needs to resume after a restart.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MachineSnapshot {
    pub machine: u32,
    pub monitor: MonitorSnapshot,
    pub recorder: RecorderSnapshot,
    pub last_t: Option<u64>,
    pub out_of_order: u64,
    /// The transition sequence counter — persisted so seqs continue
    /// monotonically instead of restarting at 1 and colliding.
    pub next_seq: u64,
    /// Newest replication-log seq applied to this machine — the
    /// exactly-once guard for replication resync (DESIGN.md §13).
    /// Absent in pre-replication snapshot files; parsed as 0.
    pub last_repl_seq: u64,
    pub records: Vec<TraceRecord>,
    pub transitions: Vec<WireTransition>,
}

/// One complete snapshot: every machine plus server-wide accounting.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SnapshotData {
    /// Milliseconds of serving time accumulated across all lives of
    /// this server, so restored ingest rates stay meaningful.
    pub elapsed_ms: u64,
    /// The replication floor this snapshot is consistent with: every
    /// log entry with seq ≤ this value is fully contained (the
    /// collector reads it before capturing any machine). Absent in
    /// pre-replication snapshot files; parsed as 0.
    pub repl_seq: u64,
    /// The node's fencing epoch at collection time (DESIGN.md §13.5).
    /// Absent in pre-failover snapshot files; parsed as 1.
    pub epoch: u64,
    pub counters: CounterValues,
    /// Ascending machine id.
    pub machines: Vec<MachineSnapshot>,
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn opt_pair_first(p: Option<(u64, u64)>) -> Option<u64> {
    p.map(|(a, _)| a)
}

fn opt_pair_second(p: Option<(u64, u64)>) -> Option<u64> {
    p.map(|(_, b)| b)
}

fn machine_to_json(m: &MachineSnapshot) -> String {
    let mut w = ObjWriter::new();
    w.str("kind", "machine")
        .u64("machine", m.machine as u64)
        .opt_u64("mon_busy", opt_pair_first(m.monitor.last))
        .opt_u64("mon_total", opt_pair_second(m.monitor.last))
        .u64("mon_resets", m.monitor.resets);
    match m.recorder.detector {
        DetectorSnapshot::Available {
            band,
            spike_since,
            last_t,
        } => {
            w.str("det", "avail")
                .u64("det_code", band.code() as u64)
                .opt_u64("det_since", spike_since)
                .opt_u64("det_revived", None)
                .opt_u64("det_last_t", last_t);
        }
        DetectorSnapshot::Unavailable {
            cause,
            calm_since,
            revived,
            last_t,
        } => {
            w.str("det", "unavail")
                .u64("det_code", cause.code() as u64)
                .opt_u64("det_since", calm_since)
                .opt_u64("det_revived", revived)
                .opt_u64("det_last_t", last_t);
        }
    }
    w.opt_u64("open", m.recorder.open)
        .f64("cpu_sum", m.recorder.avail_cpu_sum)
        .f64("mem_sum", m.recorder.avail_mem_sum)
        .u64("avail_samples", m.recorder.avail_samples)
        .opt_u64("last_t", m.last_t)
        .u64("out_of_order", m.out_of_order)
        .u64("next_seq", m.next_seq)
        .u64("last_repl_seq", m.last_repl_seq)
        .u64("records", m.records.len() as u64)
        .u64("transitions", m.transitions.len() as u64);
    w.finish()
}

fn counters_to_json(c: &CounterValues) -> String {
    let mut w = ObjWriter::new();
    w.str("kind", "counters")
        .u64("ingested_batches", c.ingested_batches)
        .u64("ingested_samples", c.ingested_samples)
        .u64("shed_batches", c.shed_batches)
        .u64("shed_samples", c.shed_samples)
        .u64("decode_errors", c.decode_errors)
        .u64("busy_replies", c.busy_replies)
        .u64("queries_answered", c.queries_answered)
        .u64("placements_answered", c.placements_answered)
        .u64("auth_rejects", c.auth_rejects)
        .u64("conn_rejects", c.conn_rejects);
    w.finish()
}

/// Serializes a snapshot to its complete file content, trailer included.
pub(crate) fn serialize_snapshot(data: &SnapshotData) -> String {
    let mut body = String::new();
    let mut lines = 0u64;
    let push = |body: &mut String, line: String| {
        body.push_str(&line);
        body.push('\n');
    };
    let mut header = ObjWriter::new();
    header
        .str("kind", "snapshot")
        .u64("version", SNAPSHOT_VERSION)
        .u64("machines", data.machines.len() as u64)
        .u64("elapsed_ms", data.elapsed_ms)
        .u64("repl_seq", data.repl_seq)
        .u64("epoch", data.epoch);
    push(&mut body, header.finish());
    lines += 1;
    for m in &data.machines {
        push(&mut body, machine_to_json(m));
        lines += 1;
    }
    for m in &data.machines {
        for r in &m.records {
            // Wrap the canonical record encoding with a discriminator;
            // the record parser ignores unknown fields, so the wrapped
            // line parses directly.
            let rec = record_to_json(r);
            push(&mut body, format!("{{\"kind\":\"record\",{}", &rec[1..]));
            lines += 1;
        }
    }
    for m in &data.machines {
        for t in &m.transitions {
            let mut w = ObjWriter::new();
            w.str("kind", "transition")
                .u64("machine", m.machine as u64)
                .u64("seq", t.seq)
                .u64("at", t.at)
                .u64("state", t.state as u64);
            push(&mut body, w.finish());
            lines += 1;
        }
    }
    push(&mut body, counters_to_json(&data.counters));
    lines += 1;
    let crc = crc32(body.as_bytes());
    let mut end = ObjWriter::new();
    end.str("kind", "end")
        .u64("lines", lines)
        .u64("crc", crc as u64);
    push(&mut body, end.finish());
    body
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn get<'a>(o: &'a BTreeMap<String, Value>, key: &str) -> Result<&'a Value, String> {
    o.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn get_u64(o: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    get(o, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

/// Reads a u64 field that pre-replication snapshot versions did not
/// write: a missing key yields `default` (old files restore cleanly),
/// but a present key with the wrong type is still an error.
fn get_u64_or(o: &BTreeMap<String, Value>, key: &str, default: u64) -> Result<u64, String> {
    match o.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field {key:?} is not an unsigned integer")),
    }
}

fn get_f64(o: &BTreeMap<String, Value>, key: &str) -> Result<f64, String> {
    let v = get(o, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("field {key:?} is not finite"))
    }
}

fn get_opt_u64(o: &BTreeMap<String, Value>, key: &str) -> Result<Option<u64>, String> {
    match get(o, key)? {
        Value::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} is not an unsigned integer or null")),
    }
}

fn get_str<'a>(o: &'a BTreeMap<String, Value>, key: &str) -> Result<&'a str, String> {
    get(o, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn parse_machine(o: &BTreeMap<String, Value>) -> Result<(MachineSnapshot, u64, u64), String> {
    let machine = get_u64(o, "machine")? as u32;
    let monitor = MonitorSnapshot {
        last: match (get_opt_u64(o, "mon_busy")?, get_opt_u64(o, "mon_total")?) {
            (Some(b), Some(t)) => Some((b, t)),
            (None, None) => None,
            _ => return Err("mon_busy/mon_total must both be set or both null".into()),
        },
        resets: get_u64(o, "mon_resets")?,
    };
    let det_last_t = get_opt_u64(o, "det_last_t")?;
    let det_code = get_u64(o, "det_code")? as u8;
    let detector = match get_str(o, "det")? {
        "avail" => DetectorSnapshot::Available {
            band: LoadBand::from_code(det_code)
                .ok_or_else(|| format!("bad load band code {det_code}"))?,
            spike_since: get_opt_u64(o, "det_since")?,
            last_t: det_last_t,
        },
        "unavail" => DetectorSnapshot::Unavailable {
            cause: FailureCause::from_code(det_code)
                .ok_or_else(|| format!("bad failure cause code {det_code}"))?,
            calm_since: get_opt_u64(o, "det_since")?,
            revived: get_opt_u64(o, "det_revived")?,
            last_t: det_last_t,
        },
        other => return Err(format!("unknown detector kind {other:?}")),
    };
    let recorder = RecorderSnapshot {
        machine,
        detector,
        open: get_opt_u64(o, "open")?,
        avail_cpu_sum: get_f64(o, "cpu_sum")?,
        avail_mem_sum: get_f64(o, "mem_sum")?,
        avail_samples: get_u64(o, "avail_samples")?,
    };
    let snap = MachineSnapshot {
        machine,
        monitor,
        recorder,
        last_t: get_opt_u64(o, "last_t")?,
        out_of_order: get_u64(o, "out_of_order")?,
        next_seq: get_u64(o, "next_seq")?,
        last_repl_seq: get_u64_or(o, "last_repl_seq", 0)?,
        records: Vec::new(),
        transitions: Vec::new(),
    };
    Ok((snap, get_u64(o, "records")?, get_u64(o, "transitions")?))
}

fn parse_counters(o: &BTreeMap<String, Value>) -> Result<CounterValues, String> {
    Ok(CounterValues {
        ingested_batches: get_u64(o, "ingested_batches")?,
        ingested_samples: get_u64(o, "ingested_samples")?,
        shed_batches: get_u64(o, "shed_batches")?,
        shed_samples: get_u64(o, "shed_samples")?,
        decode_errors: get_u64(o, "decode_errors")?,
        busy_replies: get_u64(o, "busy_replies")?,
        queries_answered: get_u64(o, "queries_answered")?,
        placements_answered: get_u64(o, "placements_answered")?,
        auth_rejects: get_u64(o, "auth_rejects")?,
        conn_rejects: get_u64(o, "conn_rejects")?,
    })
}

/// Parses a complete snapshot file. Any structural inconsistency —
/// truncation, a CRC mismatch, a count that doesn't add up, seqs out of
/// order — rejects the whole file; nothing is ever half-applied.
pub(crate) fn parse_snapshot(text: &str) -> Result<SnapshotData, String> {
    let trimmed = text
        .strip_suffix('\n')
        .ok_or("file does not end in a newline")?;
    let (body_end, trailer) = match trimmed.rfind('\n') {
        Some(i) => (i + 1, &trimmed[i + 1..]),
        None => return Err("missing trailer line".into()),
    };
    let t = json::parse(trailer).map_err(|e| format!("bad trailer: {e}"))?;
    let t = t.as_obj().ok_or("trailer is not an object")?;
    if get_str(t, "kind")? != "end" {
        return Err("file does not end with an end line (truncated?)".into());
    }
    let body = &text[..body_end];
    let crc = crc32(body.as_bytes());
    if get_u64(t, "crc")? != crc as u64 {
        return Err("trailer CRC mismatch".into());
    }
    let expect_lines = get_u64(t, "lines")?;

    let mut lines = body.lines();
    let header = lines.next().ok_or("empty snapshot")?;
    let h = json::parse(header).map_err(|e| format!("bad header: {e}"))?;
    let h = h.as_obj().ok_or("header is not an object")?;
    if get_str(h, "kind")? != "snapshot" {
        return Err("first line is not a snapshot header".into());
    }
    let version = get_u64(h, "version")?;
    if version != SNAPSHOT_VERSION {
        return Err(format!("unsupported snapshot version {version}"));
    }
    let n_machines = get_u64(h, "machines")? as usize;
    let elapsed_ms = get_u64(h, "elapsed_ms")?;
    let repl_seq = get_u64_or(h, "repl_seq", 0)?;
    let epoch = get_u64_or(h, "epoch", 1)?;

    let mut machines: Vec<MachineSnapshot> = Vec::with_capacity(n_machines);
    let mut expected: BTreeMap<u32, (usize, u64, u64)> = BTreeMap::new();
    let mut counters: Option<CounterValues> = None;
    let mut seen_lines = 1u64;
    for line in lines {
        seen_lines += 1;
        let v = json::parse(line).map_err(|e| format!("line {seen_lines}: {e}"))?;
        let o = v
            .as_obj()
            .ok_or_else(|| format!("line {seen_lines} is not an object"))?;
        match get_str(o, "kind")? {
            "machine" => {
                let (snap, n_rec, n_tr) = parse_machine(o)?;
                if let Some(prev) = machines.last() {
                    if snap.machine <= prev.machine {
                        return Err("machine ids not strictly ascending".into());
                    }
                }
                expected.insert(snap.machine, (machines.len(), n_rec, n_tr));
                machines.push(snap);
            }
            "record" => {
                let rec = record_from_obj(o).map_err(|e| format!("line {seen_lines}: {e}"))?;
                let (idx, ..) = *expected
                    .get(&rec.machine)
                    .ok_or_else(|| format!("record for unknown machine {}", rec.machine))?;
                machines[idx].records.push(rec);
            }
            "transition" => {
                let machine = get_u64(o, "machine")? as u32;
                let (idx, ..) = *expected
                    .get(&machine)
                    .ok_or_else(|| format!("transition for unknown machine {machine}"))?;
                let state = get_u64(o, "state")? as u8;
                AvailState::from_code(state).ok_or_else(|| format!("bad state code {state}"))?;
                let tr = WireTransition {
                    seq: get_u64(o, "seq")?,
                    at: get_u64(o, "at")?,
                    state,
                };
                if machines[idx]
                    .transitions
                    .last()
                    .is_some_and(|p| tr.seq <= p.seq)
                {
                    return Err(format!("machine {machine} transition seqs not ascending"));
                }
                machines[idx].transitions.push(tr);
            }
            "counters" => {
                if counters.is_some() {
                    return Err("duplicate counters line".into());
                }
                counters = Some(parse_counters(o)?);
            }
            other => return Err(format!("unknown line kind {other:?}")),
        }
    }
    if seen_lines != expect_lines {
        return Err(format!(
            "trailer says {expect_lines} lines, found {seen_lines}"
        ));
    }
    if machines.len() != n_machines {
        return Err(format!(
            "header says {n_machines} machines, found {}",
            machines.len()
        ));
    }
    for m in &machines {
        let (_, n_rec, n_tr) = expected[&m.machine];
        if m.records.len() as u64 != n_rec || m.transitions.len() as u64 != n_tr {
            return Err(format!(
                "machine {} record/transition counts mismatch",
                m.machine
            ));
        }
        if m.transitions.last().is_some_and(|t| m.next_seq <= t.seq) {
            return Err(format!(
                "machine {} next_seq {} would reuse a persisted transition seq",
                m.machine, m.next_seq
            ));
        }
    }
    Ok(SnapshotData {
        elapsed_ms,
        repl_seq,
        epoch,
        counters: counters.ok_or("missing counters line")?,
        machines,
    })
}

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

const SNAP_PREFIX: &str = "snap-";
const SNAP_SUFFIX: &str = ".snap";

/// How many complete snapshots are kept on disk.
const KEEP: usize = 2;

/// Lists snapshot files in `dir`, newest (highest sequence) first.
pub(crate) fn list_snapshots(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(SNAP_PREFIX)
            .and_then(|s| s.strip_suffix(SNAP_SUFFIX))
        else {
            continue;
        };
        if let Ok(seq) = stem.parse::<u64>() {
            found.push((seq, entry.path()));
        }
    }
    found.sort_unstable_by(|a, b| b.0.cmp(&a.0));
    found
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SNAP_PREFIX}{seq:010}{SNAP_SUFFIX}"))
}

/// Writes `text` under `dir` with sequence `seq` using the atomicity
/// protocol: temp file, fsync, rename, directory fsync.
fn write_atomic(dir: &Path, seq: u64, text: &str) -> io::Result<PathBuf> {
    let final_path = snapshot_path(dir, seq);
    let tmp_path = final_path.with_extension("snap.tmp");
    {
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Durably record the rename itself: fsync the directory.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

fn prune(dir: &Path) {
    for (_, path) in list_snapshots(dir).into_iter().skip(KEEP) {
        let _ = fs::remove_file(path);
    }
}

struct SinkState {
    next_file_seq: u64,
    last_write: Option<Instant>,
}

/// Serialized writer of interval-gated snapshots into one directory.
/// All checkpoint paths (the periodic hooks on both backends and the
/// final shutdown write) funnel through this one mutex, so snapshots
/// never interleave and the interval is enforced exactly once.
pub(crate) struct SnapshotSink {
    dir: PathBuf,
    interval: Duration,
    state: Mutex<SinkState>,
}

impl SnapshotSink {
    /// A sink writing to `dir` (created if missing), continuing the file
    /// numbering above whatever is already there.
    pub(crate) fn new(dir: &Path, interval_ms: u64) -> io::Result<SnapshotSink> {
        fs::create_dir_all(dir)?;
        let next_file_seq = list_snapshots(dir).first().map_or(1, |&(s, _)| s + 1);
        Ok(SnapshotSink {
            dir: dir.to_path_buf(),
            interval: Duration::from_millis(interval_ms.max(1)),
            state: Mutex::new(SinkState {
                next_file_seq,
                last_write: None,
            }),
        })
    }

    /// Writes a snapshot if the interval has elapsed since the last one.
    /// `collect` runs only when a write is actually due. Returns whether
    /// a snapshot was written.
    pub(crate) fn maybe_write(&self, collect: impl FnOnce() -> SnapshotData) -> io::Result<bool> {
        let mut st = self.state.lock().unwrap();
        if st.last_write.is_some_and(|t| t.elapsed() < self.interval) {
            return Ok(false);
        }
        self.write_locked(&mut st, &collect())?;
        Ok(true)
    }

    /// Writes a snapshot unconditionally (graceful shutdown).
    pub(crate) fn write_now(&self, data: &SnapshotData) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        self.write_locked(&mut st, data)
    }

    fn write_locked(&self, st: &mut SinkState, data: &SnapshotData) -> io::Result<()> {
        let text = serialize_snapshot(data);
        write_atomic(&self.dir, st.next_file_seq, &text)?;
        st.next_file_seq += 1;
        st.last_write = Some(Instant::now());
        prune(&self.dir);
        Ok(())
    }
}

/// Loads the newest snapshot in `dir` that parses and validates,
/// falling back over damaged ones (crash mid-checkpoint leaves a `.tmp`
/// which is never even considered). Returns `None` when no usable
/// snapshot exists.
pub(crate) fn load_latest(dir: &Path) -> Option<SnapshotData> {
    for (seq, path) in list_snapshots(dir) {
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fgcs-service: snapshot {seq} unreadable: {e}");
                continue;
            }
        };
        match parse_snapshot(&text) {
            Ok(data) => return Some(data),
            Err(e) => eprintln!("fgcs-service: snapshot {seq} rejected: {e}"),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> SnapshotData {
        let records = vec![
            TraceRecord {
                machine: 3,
                cause: FailureCause::CpuContention,
                start: 600,
                end: Some(1200),
                raw_end: Some(900),
                avail_cpu: 0.9375,
                avail_mem_mb: 812,
            },
            TraceRecord {
                machine: 3,
                cause: FailureCause::Revocation,
                start: 5000,
                end: None,
                raw_end: None,
                avail_cpu: 0.1 + 0.2, // a value that doesn't print "nicely"
                avail_mem_mb: 400,
            },
        ];
        let m3 = MachineSnapshot {
            machine: 3,
            monitor: MonitorSnapshot {
                last: Some((123, 4567)),
                resets: 2,
            },
            recorder: RecorderSnapshot {
                machine: 3,
                detector: DetectorSnapshot::Unavailable {
                    cause: FailureCause::Revocation,
                    calm_since: Some(5100),
                    revived: Some(5060),
                    last_t: Some(5130),
                },
                open: Some(1),
                avail_cpu_sum: 0.0,
                avail_mem_sum: 0.0,
                avail_samples: 0,
            },
            last_t: Some(5130),
            out_of_order: 1,
            next_seq: 5,
            last_repl_seq: 42,
            records,
            transitions: vec![
                WireTransition {
                    seq: 1,
                    at: 600,
                    state: 3,
                },
                WireTransition {
                    seq: 4,
                    at: 5000,
                    state: 5,
                },
            ],
        };
        let m9 = MachineSnapshot {
            machine: 9,
            monitor: MonitorSnapshot {
                last: None,
                resets: 0,
            },
            recorder: RecorderSnapshot {
                machine: 9,
                detector: DetectorSnapshot::Available {
                    band: LoadBand::Heavy,
                    spike_since: None,
                    last_t: Some(45),
                },
                open: None,
                avail_cpu_sum: 1.55,
                avail_mem_sum: 2048.0,
                avail_samples: 2,
            },
            last_t: Some(45),
            out_of_order: 0,
            next_seq: 2,
            last_repl_seq: 0,
            records: Vec::new(),
            transitions: vec![WireTransition {
                seq: 1,
                at: 30,
                state: 2,
            }],
        };
        SnapshotData {
            elapsed_ms: 7777,
            repl_seq: 42,
            epoch: 3,
            counters: CounterValues {
                ingested_batches: 10,
                ingested_samples: 200,
                shed_batches: 1,
                shed_samples: 4,
                decode_errors: 0,
                busy_replies: 1,
                queries_answered: 5,
                placements_answered: 2,
                auth_rejects: 3,
                conn_rejects: 0,
            },
            machines: vec![m3, m9],
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let data = sample_data();
        let text = serialize_snapshot(&data);
        let back = parse_snapshot(&text).expect("parses");
        assert_eq!(back, data);
        // Including the awkward f64: bit-exact.
        assert_eq!(
            back.machines[0].records[1].avail_cpu.to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
    }

    #[test]
    fn pre_replication_snapshots_parse_with_zero_repl_cursors() {
        // Reconstruct the format as written before the replication
        // fields existed: same lines, minus `repl_seq` in the header
        // and `last_repl_seq` on machine lines, with a recomputed
        // trailer. Such files live in real snapshot directories and
        // must keep restoring.
        let data = sample_data();
        let text = serialize_snapshot(&data);
        let body_end = text[..text.len() - 1].rfind('\n').unwrap() + 1;
        let old_body = text[..body_end]
            .replace(",\"repl_seq\":42", "")
            .replace(",\"epoch\":3", "")
            .replace(",\"last_repl_seq\":42", "")
            .replace(",\"last_repl_seq\":0", "");
        let lines = old_body.lines().count() as u64;
        let crc = crc32(old_body.as_bytes());
        let mut end = ObjWriter::new();
        end.str("kind", "end")
            .u64("lines", lines)
            .u64("crc", crc as u64);
        let old_text = format!("{old_body}{}\n", end.finish());
        let back = parse_snapshot(&old_text).expect("old format parses");
        assert_eq!(back.repl_seq, 0);
        assert_eq!(back.epoch, 1);
        assert!(back.machines.iter().all(|m| m.last_repl_seq == 0));
        assert_eq!(back.machines.len(), data.machines.len());
        assert_eq!(back.machines[0].records, data.machines[0].records);
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let text = serialize_snapshot(&sample_data());
        // Cut at every line boundary and at a few mid-line offsets: no
        // prefix of a snapshot may parse as a snapshot.
        let mut cuts: Vec<usize> = text
            .char_indices()
            .filter(|&(_, c)| c == '\n')
            .map(|(i, _)| i + 1)
            .collect();
        cuts.pop(); // the full file parses, obviously
        cuts.extend([1, text.len() / 2, text.len() - 3]);
        for cut in cuts {
            assert!(
                parse_snapshot(&text[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn corruption_is_rejected_by_the_crc() {
        let text = serialize_snapshot(&sample_data());
        // Flip one digit somewhere in the middle of the body.
        let idx = text.len() / 2;
        let mut bytes = text.into_bytes();
        bytes[idx] = if bytes[idx] == b'1' { b'2' } else { b'1' };
        let corrupted = String::from_utf8(bytes).unwrap();
        assert!(parse_snapshot(&corrupted).is_err());
    }

    #[test]
    fn seq_reuse_is_rejected() {
        let mut data = sample_data();
        data.machines[0].next_seq = 4; // would reuse the persisted seq 4
        let text = serialize_snapshot(&data);
        let err = parse_snapshot(&text).unwrap_err();
        assert!(err.contains("reuse"), "{err}");
    }

    #[test]
    fn loader_falls_back_over_a_damaged_latest_snapshot() {
        let dir = std::env::temp_dir().join(format!("fgcs-snap-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let sink = SnapshotSink::new(&dir, 1).expect("sink");
        let mut data = sample_data();
        sink.write_now(&data).unwrap();
        data.counters.ingested_batches = 11;
        sink.write_now(&data).unwrap();
        // Newest snapshot parses.
        let loaded = load_latest(&dir).expect("snapshot");
        assert_eq!(loaded.counters.ingested_batches, 11);
        // Truncate the newest file mid-record (crash during checkpoint
        // after rename — e.g. torn disk write): loader must fall back to
        // the previous complete snapshot, never half-apply the new one.
        let (seq, newest) = list_snapshots(&dir).remove(0);
        assert_eq!(seq, 2);
        let full = fs::read_to_string(&newest).unwrap();
        fs::write(&newest, &full[..full.len() * 2 / 3]).unwrap();
        let loaded = load_latest(&dir).expect("fallback snapshot");
        assert_eq!(
            loaded.counters.ingested_batches, 10,
            "previous snapshot wins"
        );
        // Pruning keeps only the newest KEEP files.
        for i in 0..4 {
            data.counters.ingested_batches = 20 + i;
            sink.write_now(&data).unwrap();
        }
        let files = list_snapshots(&dir);
        assert_eq!(files.len(), KEEP);
        assert_eq!(files[0].0, 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn loader_rejects_both_corrupt_snapshots_and_reports_a_clean_start() {
        let dir = std::env::temp_dir().join(format!("fgcs-snap-both-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let sink = SnapshotSink::new(&dir, 1).expect("sink");
        let mut data = sample_data();
        sink.write_now(&data).unwrap();
        data.counters.ingested_batches = 11;
        sink.write_now(&data).unwrap();
        let files = list_snapshots(&dir);
        assert_eq!(files.len(), KEEP, "both retained snapshots exist");
        // Damage *every* retained snapshot two different ways: the
        // newest truncated mid-record (torn write), the older with a
        // flipped payload byte (bit rot breaks the body checksum/JSON).
        let newest = &files[0].1;
        let full = fs::read_to_string(newest).unwrap();
        fs::write(newest, &full[..full.len() * 2 / 3]).unwrap();
        let older = &files[1].1;
        let mut body = fs::read_to_string(older).unwrap().into_bytes();
        let mid = body.len() / 2;
        body[mid] = body[mid].wrapping_add(1);
        fs::write(older, &body).unwrap();
        // Nothing usable: the loader must reject both *whole* — never
        // half-apply a damaged checkpoint — and report a clean start.
        assert!(
            load_latest(&dir).is_none(),
            "two corrupt snapshots must yield a clean start, not a partial restore"
        );
        // A clean start means the next checkpoint cycle works from
        // scratch: new snapshots land and load again.
        data.counters.ingested_batches = 12;
        sink.write_now(&data).unwrap();
        let loaded = load_latest(&dir).expect("fresh snapshot after the wipeout");
        assert_eq!(loaded.counters.ingested_batches, 12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_enforces_the_interval() {
        let dir = std::env::temp_dir().join(format!("fgcs-snap-iv-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let sink = SnapshotSink::new(&dir, 60_000).expect("sink");
        assert!(sink.maybe_write(sample_data).unwrap(), "first write is due");
        assert!(
            !sink
                .maybe_write(|| unreachable!("not due: collect must not run"))
                .unwrap(),
            "second write inside the interval is skipped"
        );
        assert_eq!(list_snapshots(&dir).len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
