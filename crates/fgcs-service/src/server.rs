//! The threaded TCP server: accept loop, per-connection request/reply
//! threads, and the ingest worker pool.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fgcs_core::detector::DetectorConfig;
use fgcs_testbed::{LabConfig, TraceRecord};
use fgcs_wire::{
    Decoder, ErrorCode, Frame, StatsPayload, WireTransition, MAX_TRANSITIONS_PER_FRAME,
};

use crate::state::{Batch, Shared};

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Bind address. Use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Ingest worker count; 0 means [`fgcs_par::default_workers`].
    pub workers: usize,
    /// Ingest queue capacity, in batches. Arrivals beyond this shed the
    /// oldest queued batch and earn a `Busy` reply.
    pub queue_capacity: usize,
    /// Per-connection read timeout, ms. Bounds how long a connection
    /// thread can miss a shutdown request.
    pub read_timeout_ms: u64,
    /// Detector configuration applied to every machine's stream.
    pub detector: DetectorConfig,
    /// Physical memory assumed per streamed machine, MB (for the
    /// free-for-guest computation, as in [`LabConfig`]).
    pub phys_mem_mb: u32,
    /// Kernel/system memory reserve per machine, MB.
    pub kernel_mem_mb: u32,
    /// Weekday of trace-time zero (0 = Monday), anchoring the online
    /// predictor's calendar.
    pub start_weekday: u8,
    /// Artificial per-batch ingest cost, µs. Zero in production; the
    /// overload tests use it to pin ingest capacity below offered load.
    pub ingest_delay_us: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let lab = LabConfig::default();
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 256,
            read_timeout_ms: 200,
            detector: DetectorConfig::wallclock_default(),
            phys_mem_mb: lab.phys_mem_mb,
            kernel_mem_mb: lab.kernel_mem_mb,
            start_weekday: lab.start_weekday,
            ingest_delay_us: 0,
        }
    }
}

impl ServiceConfig {
    /// A configuration matching a [`fgcs_testbed::TestbedConfig`], so a
    /// streamed lab trace reproduces the in-process pipeline exactly.
    pub fn for_testbed(cfg: &fgcs_testbed::TestbedConfig) -> Self {
        ServiceConfig {
            detector: cfg.detector,
            phys_mem_mb: cfg.lab.phys_mem_mb,
            kernel_mem_mb: cfg.lab.kernel_mem_mb,
            start_weekday: cfg.lab.start_weekday,
            ..ServiceConfig::default()
        }
    }

    /// Memory left for a guest when host processes hold `resident_mb`.
    pub(crate) fn free_for_guest_mb(&self, resident_mb: u32) -> u32 {
        self.phys_mem_mb
            .saturating_sub(self.kernel_mem_mb)
            .saturating_sub(resident_mb)
    }
}

/// A running availability server. Dropping the handle does *not* stop
/// the server; call [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts the server: one accept thread, one thread per
    /// connection, and a pool of ingest workers draining the queue.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            fgcs_par::default_workers(usize::MAX)
        };
        let read_timeout = Duration::from_millis(cfg.read_timeout_ms.max(10));
        let shared = Arc::new(Shared::new(cfg));

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || ingest_worker(&shared))
            })
            .collect();

        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shared = Arc::clone(&shared);
            let conn_handles = Arc::clone(&conn_handles);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down() {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_read_timeout(Some(read_timeout));
                    let _ = stream.set_nodelay(true);
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || serve_connection(&shared, stream));
                    conn_handles.lock().unwrap().push(handle);
                }
            })
        };

        Ok(Server {
            addr,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
            conn_handles,
        })
    }

    /// The bound address (with the OS-assigned port when binding to 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A stats snapshot, identical to what a `QueryStats` frame returns.
    pub fn stats(&self) -> StatsPayload {
        self.shared.stats_snapshot()
    }

    /// The occurrence records built so far for one machine (clone of the
    /// live recorder state), or `None` if it never streamed a sample.
    pub fn records(&self, machine: u32) -> Option<Vec<TraceRecord>> {
        self.shared
            .machine_get(machine)
            .map(|cell| cell.lock().unwrap().records().to_vec())
    }

    /// The state-transition log for one machine.
    pub fn transitions(&self, machine: u32) -> Option<Vec<WireTransition>> {
        self.shared
            .machine_get(machine)
            .map(|cell| cell.lock().unwrap().transitions().to_vec())
    }

    /// Out-of-order samples discarded for one machine.
    pub fn out_of_order(&self, machine: u32) -> u64 {
        self.shared
            .machine_get(machine)
            .map_or(0, |cell| cell.lock().unwrap().out_of_order)
    }

    /// Stops the server: drains the ingest queue, then joins every
    /// thread. Queued batches are ingested, not dropped — the
    /// reconciliation identity must hold at shutdown.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Ingest worker: claims one machine's queued batches at a time,
/// preserving per-machine sample order. Drains the queue fully before
/// exiting on shutdown.
fn ingest_worker(shared: &Shared) {
    loop {
        let claimed = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                match queue.claim() {
                    Some(work) => break Some(work),
                    None => {
                        if shared.shutting_down() && queue.len() == 0 {
                            break None;
                        }
                        // Either empty, or every queued machine is busy;
                        // a finishing worker or a new push wakes us.
                        let (q, _) = shared
                            .queue_cv
                            .wait_timeout(queue, Duration::from_millis(50))
                            .unwrap();
                        queue = q;
                    }
                }
            }
        };
        let Some((machine, batches)) = claimed else {
            return;
        };
        for batch in &batches {
            shared.ingest_batch(batch);
        }
        let mut queue = shared.queue.lock().unwrap();
        queue.finish(machine);
        drop(queue);
        // The machine may have accumulated new batches while busy, and
        // idle workers may be waiting for it to be released.
        shared.queue_cv.notify_all();
    }
}

/// Per-connection loop: strict request/reply. Every decoded frame earns
/// exactly one reply; every decode error earns an `Error` reply (and
/// closes the connection if the error is fatal).
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let mut decoder = Decoder::new();
    let mut buf = [0u8; 64 * 1024];
    // Per-connection accepted-batch sequence, echoed in `Ack`.
    let mut ack_seq: u64 = 0;
    loop {
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    let reply = handle_frame(shared, frame, &mut ack_seq);
                    if !write_frame(&mut stream, &reply) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    shared
                        .counters
                        .decode_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let reply = Frame::Error {
                        code: ErrorCode::BadFrame,
                        detail: e.to_string(),
                    };
                    let sent = write_frame(&mut stream, &reply);
                    if e.is_fatal() || !sent {
                        return;
                    }
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => decoder.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> bool {
    match frame.encode() {
        Ok(bytes) => stream.write_all(&bytes).is_ok(),
        Err(_) => false,
    }
}

fn handle_frame(shared: &Shared, frame: Frame, ack_seq: &mut u64) -> Frame {
    match frame {
        Frame::SampleBatch { machine, samples } => {
            let mut queue = shared.queue.lock().unwrap();
            let shed = queue.push(Batch { machine, samples });
            drop(queue);
            shared.queue_cv.notify_one();
            match shed {
                Some(victim) => {
                    shared.counters.shed_batches.fetch_add(1, Ordering::Relaxed);
                    shared
                        .counters
                        .shed_samples
                        .fetch_add(victim.samples.len() as u64, Ordering::Relaxed);
                    let total = shared.counters.busy_replies.fetch_add(1, Ordering::Relaxed);
                    // The arriving batch *was* accepted; Busy tells the
                    // producer the queue overflowed and sheds happened.
                    Frame::Busy {
                        shed_batches: total + 1,
                    }
                }
                None => {
                    *ack_seq += 1;
                    Frame::Ack { seq: *ack_seq }
                }
            }
        }
        Frame::QueryAvail { machine, horizon } => {
            let Some(cell) = shared.machine_get(machine) else {
                return Frame::Error {
                    code: ErrorCode::UnknownMachine,
                    detail: format!("machine {machine} has not streamed any samples"),
                };
            };
            let (state, last_t, available) = {
                let m = cell.lock().unwrap();
                (m.state(), m.last_t(), m.is_available())
            };
            let prob = if available {
                shared
                    .online
                    .lock()
                    .unwrap()
                    .predict(machine, last_t, horizon)
            } else {
                // Currently inside an unavailability occurrence: the
                // window cannot be failure-free.
                0.0
            };
            shared
                .counters
                .queries_answered
                .fetch_add(1, Ordering::Relaxed);
            Frame::AvailReply {
                machine,
                state: state.code(),
                prob,
            }
        }
        Frame::Place { job_len } => {
            // Rank currently harvestable machines (available, no spike
            // pending) by predicted survival over the job length;
            // BTreeMap order makes ties deterministic (lowest id wins).
            let candidates: Vec<u32> = {
                let map = shared.machines.lock().unwrap();
                map.iter()
                    .filter(|(_, cell)| {
                        let m = cell.lock().unwrap();
                        m.is_available() && !m.spike_active()
                    })
                    .map(|(&id, _)| id)
                    .collect()
            };
            let online = shared.online.lock().unwrap();
            let now = online.horizon();
            let mut best: Option<(u32, f64)> = None;
            for id in candidates {
                let p = online.predict(id, now, job_len);
                if best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((id, p));
                }
            }
            drop(online);
            shared
                .counters
                .placements_answered
                .fetch_add(1, Ordering::Relaxed);
            match best {
                Some((machine, prob)) => Frame::PlaceReply {
                    machine: Some(machine),
                    prob,
                },
                None => Frame::PlaceReply {
                    machine: None,
                    prob: 0.0,
                },
            }
        }
        Frame::QueryStats => Frame::StatsReply(shared.stats_snapshot()),
        Frame::QueryTransitions {
            machine,
            since_seq,
            max,
        } => {
            let Some(cell) = shared.machine_get(machine) else {
                return Frame::Error {
                    code: ErrorCode::UnknownMachine,
                    detail: format!("machine {machine} has not streamed any samples"),
                };
            };
            let cap = (max as usize).min(MAX_TRANSITIONS_PER_FRAME);
            let transitions: Vec<WireTransition> = cell
                .lock()
                .unwrap()
                .transitions()
                .iter()
                .filter(|t| t.seq >= since_seq)
                .take(cap)
                .copied()
                .collect();
            Frame::Transitions {
                machine,
                transitions,
            }
        }
        // Server-to-client frames arriving at the server are protocol
        // misuse, answered (once) rather than dropped.
        other => Frame::Error {
            code: ErrorCode::Unsupported,
            detail: format!("frame tag {} is not a request", other.tag()),
        },
    }
}
