//! The TCP server: two interchangeable connection backends in front of
//! one sharded state store. The threaded backend (thread per
//! connection) feeds a bounded queue drained by an ingest worker pool;
//! the epoll backend runs N accept-sharing event loops, each owning a
//! disjoint subset of the state shards and ingesting inline (DESIGN.md
//! §10 and §12).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fgcs_core::detector::DetectorConfig;
use fgcs_testbed::{LabConfig, TraceRecord};
use fgcs_wire::{Decoder, ErrorCode, Frame, StatsPayload, WireTransition};

use crate::conn::{handle_conn_frame, ConnCtx, IngestSink, Outcome};
use crate::state::Shared;

/// How the server multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// One OS thread per connection (the PR 3 design). Simple, but the
    /// thread budget caps fan-in; see [`ServiceConfig::max_connections`].
    #[default]
    Threads,
    /// One epoll readiness loop owning every connection as nonblocking
    /// state (Linux only). Fan-in is bounded by fds, not threads.
    Epoll,
}

impl Backend {
    /// Parses a `--backend` flag value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "threads" => Some(Backend::Threads),
            "epoll" => Some(Backend::Epoll),
            _ => None,
        }
    }

    /// The flag spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Epoll => "epoll",
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Bind address. Use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Connection backend.
    pub backend: Backend,
    /// Ingest worker count; 0 means [`fgcs_par::default_workers`].
    pub workers: usize,
    /// Ingest queue capacity, in batches. Arrivals beyond this shed the
    /// oldest queued batch and earn a `Busy` reply.
    pub queue_capacity: usize,
    /// Per-connection read timeout, ms. Bounds how long a connection
    /// thread can miss a shutdown request.
    pub read_timeout_ms: u64,
    /// Concurrent-connection cap; 0 picks the backend default (1024 for
    /// threads — a thread-budget ceiling — and 16384 for epoll).
    /// Connections beyond the cap are refused with
    /// `Error { ConnLimit }` and closed.
    pub max_connections: usize,
    /// Shard count for the per-machine state map; 0 means 16. More
    /// shards cut lock contention between ingest workers and query
    /// handlers; the read paths re-sort so results stay deterministic.
    pub state_shards: usize,
    /// Shared auth token. When set, every connection must present it in
    /// a [`Frame::Auth`] before any other frame; violations earn
    /// `Error { Unauthorized }` and a close. `None` disables the gate.
    pub auth_token: Option<String>,
    /// Detector configuration applied to every machine's stream.
    pub detector: DetectorConfig,
    /// Physical memory assumed per streamed machine, MB (for the
    /// free-for-guest computation, as in [`LabConfig`]).
    pub phys_mem_mb: u32,
    /// Kernel/system memory reserve per machine, MB.
    pub kernel_mem_mb: u32,
    /// Weekday of trace-time zero (0 = Monday), anchoring the online
    /// predictor's calendar.
    pub start_weekday: u8,
    /// Artificial per-batch ingest cost, µs. Zero in production; the
    /// overload tests use it to pin ingest capacity below offered load.
    pub ingest_delay_us: u64,
    /// Directory for crash-safe snapshots. When set, the server
    /// checkpoints its full ingest state there periodically and on
    /// graceful shutdown, and restores from the newest usable snapshot
    /// at startup (DESIGN.md §11). `None` disables snapshotting.
    pub snapshot_dir: Option<String>,
    /// Minimum milliseconds between periodic snapshots.
    pub snapshot_interval_ms: u64,
    /// Bind with `SO_REUSEADDR` (Linux, via `fgcs-sys`), so a restarted
    /// server can rebind its old port while the previous life's sockets
    /// sit in TIME_WAIT. Off by default.
    pub reuse_addr: bool,
    /// Epoll backend only: how many event loops to run, each with its
    /// own `SO_REUSEPORT` listener and an exclusive subset of the state
    /// shards (DESIGN.md §12). 0 means auto: `min(cores, shards)`.
    /// Must not exceed [`ServiceConfig::state_shards`]; ignored by the
    /// threaded backend.
    pub event_loops: usize,
    /// Testing hook: skip `SO_REUSEPORT` and run multi-loop through the
    /// single-listener fd-handoff fallback, as if the kernel lacked the
    /// option.
    pub force_fd_handoff: bool,
    /// Replication seq-log capacity, in entries. 0 disables replication
    /// on a primary (followers force a default — see
    /// [`ServiceConfig::repl_capacity`]). The log must retain enough
    /// entries to cover a follower's restart gap, or the follower falls
    /// back to a full snapshot resync (DESIGN.md §13).
    pub repl_log_capacity: usize,
    /// Run as a replication follower pulling from this primary address.
    /// A follower rejects `SampleBatch` with `Error { NotPrimary }`,
    /// answers queries from its replicated state, and can be promoted
    /// with [`fgcs_wire::Frame::Promote`].
    pub follower_of: Option<String>,
    /// Idle sleep between pulls when the follower is caught up, ms.
    pub pull_interval_ms: u64,
    /// Liveness lease this node grants with every `ReplEntries` reply,
    /// ms. A follower declares the primary dead only once this long
    /// passes without any reply AND the missed-pull threshold is hit.
    pub lease_ms: u64,
    /// Follower: self-promote when the primary's lease expires
    /// (DESIGN.md §13.5). Off by default — without it the node waits
    /// for an operator `Frame::Promote`, exactly as before.
    pub auto_promote: bool,
    /// Consecutive failed pulls (transport errors — typed errors from
    /// a live primary reset it) before a follower may declare the
    /// primary dead.
    pub missed_pull_threshold: u32,
    /// Sibling follower addresses of the same shard. Before
    /// self-promoting, a follower asks each for `ReplStatus` and
    /// defers to any peer that is strictly more caught up (ties break
    /// on the lower address), so the most-caught-up follower wins.
    pub promotion_peers: Vec<String>,
    /// Staleness bound for reads served by this node while a follower:
    /// `QueryAvail`/`Place`/`QueryStats` answer only while
    /// `primary_head_seen - applied_head <= bound`, else `TooStale`.
    /// `None` (default) serves follower reads unbounded.
    pub max_read_lag: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let lab = LabConfig::default();
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            backend: Backend::Threads,
            workers: 0,
            queue_capacity: 256,
            read_timeout_ms: 200,
            max_connections: 0,
            state_shards: 0,
            auth_token: None,
            detector: DetectorConfig::wallclock_default(),
            phys_mem_mb: lab.phys_mem_mb,
            kernel_mem_mb: lab.kernel_mem_mb,
            start_weekday: lab.start_weekday,
            ingest_delay_us: 0,
            snapshot_dir: None,
            snapshot_interval_ms: 5000,
            reuse_addr: false,
            event_loops: 0,
            force_fd_handoff: false,
            repl_log_capacity: 0,
            follower_of: None,
            pull_interval_ms: 5,
            lease_ms: 1_000,
            auto_promote: false,
            missed_pull_threshold: 3,
            promotion_peers: Vec::new(),
            max_read_lag: None,
        }
    }
}

impl ServiceConfig {
    /// A configuration matching a [`fgcs_testbed::TestbedConfig`], so a
    /// streamed lab trace reproduces the in-process pipeline exactly.
    pub fn for_testbed(cfg: &fgcs_testbed::TestbedConfig) -> Self {
        ServiceConfig {
            detector: cfg.detector,
            phys_mem_mb: cfg.lab.phys_mem_mb,
            kernel_mem_mb: cfg.lab.kernel_mem_mb,
            start_weekday: cfg.lab.start_weekday,
            ..ServiceConfig::default()
        }
    }

    /// Memory left for a guest when host processes hold `resident_mb`.
    pub(crate) fn free_for_guest_mb(&self, resident_mb: u32) -> u32 {
        self.phys_mem_mb
            .saturating_sub(self.kernel_mem_mb)
            .saturating_sub(resident_mb)
    }

    /// The resolved state-map shard count.
    pub(crate) fn state_shards(&self) -> usize {
        if self.state_shards > 0 {
            self.state_shards
        } else {
            16
        }
    }

    /// The resolved event-loop count: `event_loops` when set, else
    /// `min(cores, shards)` for the epoll backend and always 1 for the
    /// threaded backend (which has no event loops to multiply).
    pub fn resolved_event_loops(&self) -> usize {
        match self.backend {
            Backend::Threads => 1,
            Backend::Epoll => {
                if self.event_loops > 0 {
                    self.event_loops
                } else {
                    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                    cores.min(self.state_shards()).max(1)
                }
            }
        }
    }

    /// The effective replication-log capacity: the explicit setting
    /// when given; otherwise followers get a working default (a
    /// promoted follower must be able to serve its own follower) and
    /// plain primaries get 0 (replication off).
    pub(crate) fn repl_capacity(&self) -> usize {
        if self.repl_log_capacity > 0 {
            self.repl_log_capacity
        } else if self.follower_of.is_some() {
            crate::repl::DEFAULT_REPL_LOG_CAPACITY
        } else {
            0
        }
    }

    /// The resolved connection cap for this configuration's backend.
    pub fn effective_max_connections(&self) -> usize {
        if self.max_connections > 0 {
            self.max_connections
        } else {
            match self.backend {
                Backend::Threads => 1024,
                Backend::Epoll => 16384,
            }
        }
    }
}

/// One instrumented lock category's contention numbers, from
/// [`Server::lock_contention`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockContention {
    /// Category name (`online`, `queue`, `machines`, `shards`,
    /// `counters`).
    pub lock: &'static str,
    /// Total instrumented acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held.
    pub contended: u64,
    /// Microseconds spent blocked on contended acquisitions.
    pub wait_us: u64,
}

/// A running availability server. Dropping the handle does *not* stop
/// the server; call [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    backend: Backend,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    loop_handles: Vec<JoinHandle<()>>,
    #[cfg(target_os = "linux")]
    loop_wakes: Vec<Arc<fgcs_sys::EventFd>>,
    worker_handles: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    checkpoint_handle: Option<JoinHandle<()>>,
    /// The follower's replication pull loop (`follower_of` only).
    repl_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the server: the selected connection backend
    /// plus (threaded backend) a pool of ingest workers draining the
    /// queue. The epoll backend ingests on its event loops directly —
    /// each loop owns a disjoint shard subset — and spawns no workers.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Server> {
        if cfg.backend == Backend::Epoll {
            let loops = cfg.resolved_event_loops();
            if loops > cfg.state_shards() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "event loops ({loops}) must not exceed state shards ({}): \
                         every loop needs at least one shard to own",
                        cfg.state_shards()
                    ),
                ));
            }
        }
        // Build (and possibly restore) the shared state *before*
        // binding: once the listener exists, clients can connect and
        // would race the restore with fresh machine state.
        let shared = Arc::new(Shared::new(cfg)?);
        let cfg = &shared.cfg;
        let backend = cfg.backend;
        let max_conns = cfg.effective_max_connections();
        let read_timeout = Duration::from_millis(cfg.read_timeout_ms.max(10));

        // Periodic checkpoints run on a dedicated thread for both
        // backends: event loops never block on snapshot I/O, and the
        // threaded accept loop blocks in `incoming()` anyway.
        let checkpoint_handle = if shared.snapshots_enabled() {
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || {
                while !shared.shutting_down() {
                    shared.checkpoint_if_due();
                    std::thread::sleep(Duration::from_millis(50));
                }
            }))
        } else {
            None
        };

        // A follower starts its pull loop before (and independently of)
        // the listener: replication is outbound, and the node answers
        // queries from whatever state it has replicated so far.
        let repl_handle = if shared.cfg.follower_of.is_some() {
            Some(crate::repl::spawn_pull_thread(Arc::clone(&shared)))
        } else {
            None
        };

        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        match backend {
            Backend::Threads => {
                let listener = bind_listener(cfg)?;
                let addr = listener.local_addr()?;
                let workers = if cfg.workers > 0 {
                    cfg.workers
                } else {
                    fgcs_par::default_workers(usize::MAX)
                };
                let worker_handles: Vec<JoinHandle<()>> = (0..workers)
                    .map(|_| {
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || ingest_worker(&shared))
                    })
                    .collect();
                let accept_handle = {
                    let shared = Arc::clone(&shared);
                    let conn_handles = Arc::clone(&conn_handles);
                    std::thread::spawn(move || {
                        accept_loop(&shared, &listener, max_conns, read_timeout, &conn_handles)
                    })
                };
                Ok(Server {
                    addr,
                    backend,
                    shared,
                    accept_handle: Some(accept_handle),
                    loop_handles: Vec::new(),
                    #[cfg(target_os = "linux")]
                    loop_wakes: Vec::new(),
                    worker_handles,
                    conn_handles,
                    checkpoint_handle,
                    repl_handle,
                })
            }
            Backend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    let (addr, loop_handles, loop_wakes) =
                        crate::epoll::spawn_loops(&shared, max_conns)?;
                    Ok(Server {
                        addr,
                        backend,
                        shared,
                        accept_handle: None,
                        loop_handles,
                        loop_wakes,
                        worker_handles: Vec::new(),
                        conn_handles,
                        checkpoint_handle,
                        repl_handle,
                    })
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::Unsupported,
                        "the epoll backend requires Linux",
                    ))
                }
            }
        }
    }

    /// The bound address (with the OS-assigned port when binding to 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which backend this server runs.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// A stats snapshot, identical to what a `QueryStats` frame returns.
    pub fn stats(&self) -> StatsPayload {
        self.shared.stats_snapshot()
    }

    /// Streams rejected by the auth gate so far.
    pub fn auth_rejects(&self) -> u64 {
        self.shared.counters.snapshot().auth_rejects
    }

    /// Connections refused at the connection cap so far.
    pub fn conn_rejects(&self) -> u64 {
        self.shared.counters.snapshot().conn_rejects
    }

    /// The occurrence records built so far for one machine (clone of the
    /// live recorder state), or `None` if it never streamed a sample.
    pub fn records(&self, machine: u32) -> Option<Vec<TraceRecord>> {
        self.shared
            .machine_get(machine)
            .map(|cell| cell.lock().unwrap().records().to_vec())
    }

    /// The state-transition log for one machine.
    pub fn transitions(&self, machine: u32) -> Option<Vec<WireTransition>> {
        self.shared
            .machine_get(machine)
            .map(|cell| cell.lock().unwrap().transitions().to_vec())
    }

    /// Out-of-order samples discarded for one machine.
    pub fn out_of_order(&self, machine: u32) -> u64 {
        self.shared
            .machine_get(machine)
            .map_or(0, |cell| cell.lock().unwrap().out_of_order)
    }

    /// How many event loops serve connections (1 for the threaded
    /// backend).
    pub fn event_loops(&self) -> usize {
        self.shared.event_loops
    }

    /// The replication role code: 1 = primary, 2 = follower.
    pub fn role(&self) -> u8 {
        self.shared.role_code()
    }

    /// Promotes this node to primary in-process (the wire equivalent is
    /// [`fgcs_wire::Frame::Promote`]). Idempotent.
    pub fn promote(&self) {
        self.shared.promote();
    }

    /// Newest replication seq this node has allocated (primary) or
    /// applied (follower); 0 before anything was replicated.
    pub fn repl_seq(&self) -> u64 {
        self.shared.repl.head_seq()
    }

    /// Highest applied-seq a pulling follower has acknowledged.
    pub fn repl_acked_seq(&self) -> u64 {
        self.shared.repl.acked_seq()
    }

    /// Whether the follower pull loop stopped on a divergence tripwire.
    pub fn repl_failed(&self) -> bool {
        self.shared.repl_failed.load(Ordering::Acquire)
    }

    /// The node's fencing epoch (DESIGN.md §13.5): 1 at birth, bumped
    /// past everything observed on each promotion.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch()
    }

    /// Contention numbers for every instrumented lock category, in a
    /// fixed order. `counters` covers the slotted stats counters; the
    /// rest are the [`crate::state`] categories (online model, ingest
    /// queue, machine cells on the ingest path, shard maps).
    pub fn lock_contention(&self) -> Vec<LockContention> {
        let mk = |lock: &'static str, stats: &crate::state::LockStats| {
            let (acquisitions, contended, wait_ns) = stats.values();
            LockContention {
                lock,
                acquisitions,
                contended,
                wait_us: wait_ns / 1_000,
            }
        };
        vec![
            mk("online", &self.shared.locks.online),
            mk("queue", &self.shared.locks.queue),
            mk("machines", &self.shared.locks.machines),
            mk("shards", &self.shared.locks.shards),
            mk("counters", self.shared.counters.lock_stats()),
        ]
    }

    /// Stops the server: drains the ingest queue and the cross-loop
    /// forwarding rings, then joins every thread. Accepted batches are
    /// ingested, not dropped — the reconciliation identity must hold at
    /// shutdown.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        match self.backend {
            Backend::Threads => {
                // Unblock the accept loop with a throwaway connection.
                let _ = TcpStream::connect(self.addr);
            }
            Backend::Epoll => {
                // Wake every event loop out of epoll_wait.
                #[cfg(target_os = "linux")]
                for wake in &self.loop_wakes {
                    wake.signal();
                }
            }
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.loop_handles.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.checkpoint_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.repl_handle.take() {
            // The pull loop re-checks the shutdown flag between
            // requests and sleeps are capped, so this join is bounded.
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        // Final checkpoint, after every thread has quiesced: the
        // snapshot captures the fully drained state.
        self.shared.checkpoint_final();
    }
}

/// Binds the listening socket per the configuration. With `reuse_addr`
/// set (Linux), binds through `fgcs-sys` with `SO_REUSEADDR` so a
/// restarted server can reclaim a port whose old sockets are still in
/// TIME_WAIT; elsewhere, or by default, a plain std bind.
fn bind_listener(cfg: &ServiceConfig) -> std::io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    if cfg.reuse_addr {
        use std::net::ToSocketAddrs;
        let addr = cfg.addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("address {:?} resolves to nothing", cfg.addr),
            )
        })?;
        return fgcs_sys::listen_reusable(&addr);
    }
    TcpListener::bind(&cfg.addr)
}

/// The threaded backend's accept loop: one thread per connection, with
/// the connection cap enforced *before* the spawn.
fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    max_conns: usize,
    read_timeout: Duration,
    conn_handles: &Mutex<Vec<JoinHandle<()>>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if shared.active_conns.load(Ordering::Relaxed) >= max_conns as u64 {
            shared.counters.update(|c| c.conn_rejects += 1);
            // Best effort: tell the peer why before closing.
            let reject = Frame::Error {
                code: ErrorCode::ConnLimit,
                detail: format!("server is at its connection cap ({max_conns})"),
            };
            if let Ok(bytes) = reject.encode() {
                let _ = stream.write_all(&bytes);
            }
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_nodelay(true);
        let shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            serve_connection(&shared, stream);
            shared.active_conns.fetch_sub(1, Ordering::Relaxed);
        });
        conn_handles.lock().unwrap().push(handle);
    }
}

/// Ingest worker: claims one machine's queued batches at a time,
/// preserving per-machine sample order. Drains the queue fully before
/// exiting on shutdown.
fn ingest_worker(shared: &Shared) {
    loop {
        let claimed = {
            let mut queue = shared.lock_queue();
            loop {
                match queue.claim() {
                    Some(work) => break Some(work),
                    None => {
                        if shared.shutting_down() && queue.len() == 0 {
                            break None;
                        }
                        // Either empty, or every queued machine is busy;
                        // a finishing worker or a new push wakes us.
                        let (q, _) = shared
                            .queue_cv
                            .wait_timeout(queue, Duration::from_millis(50))
                            .unwrap();
                        queue = q;
                    }
                }
            }
        };
        let Some((machine, batches)) = claimed else {
            return;
        };
        for batch in &batches {
            shared.ingest_batch(batch);
        }
        let mut queue = shared.lock_queue();
        queue.finish(machine);
        drop(queue);
        // The machine may have accumulated new batches while busy, and
        // idle workers may be waiting for it to be released.
        shared.queue_cv.notify_all();
    }
}

/// Per-connection loop: strict request/reply. Every decoded frame earns
/// exactly one reply; every decode error earns an `Error` reply (and
/// closes the connection if the error is fatal).
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let mut decoder = Decoder::new();
    let mut buf = [0u8; 64 * 1024];
    let mut ctx = ConnCtx::default();
    let mut sink = IngestSink::Queue;
    loop {
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => match handle_conn_frame(shared, frame, &mut ctx, &mut sink) {
                    Outcome::Reply(reply) => {
                        if !write_frame(&mut stream, &reply) {
                            return;
                        }
                    }
                    Outcome::ReplyThenClose(reply) => {
                        let _ = write_frame(&mut stream, &reply);
                        return;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    shared.counters.update(|c| c.decode_errors += 1);
                    let reply = Frame::Error {
                        code: ErrorCode::BadFrame,
                        detail: e.to_string(),
                    };
                    let sent = write_frame(&mut stream, &reply);
                    if e.is_fatal() || !sent {
                        return;
                    }
                }
            }
        }
        // Re-check between requests, not just on read timeouts: a
        // client that never pauses (a follower pulling the replication
        // log flat-out) would otherwise keep this thread alive — and
        // `Server::shutdown` joining it — forever. Frames already
        // decoded got their replies above, so the one-reply-per-frame
        // identity holds for everything the server accepted.
        if shared.shutting_down() {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => decoder.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> bool {
    match frame.encode() {
        Ok(bytes) => stream.write_all(&bytes).is_ok(),
        Err(_) => false,
    }
}
