//! The FGCS availability service: the paper's monitor → detector →
//! predictor loop, turned into a real server/client system.
//!
//! iShare publishes machine availability so consumers can place guest
//! jobs on other people's idle cycles (§5). In this workspace that loop
//! had only existed as in-process function calls
//! (`fgcs_testbed::run_testbed`); this crate runs it across a TCP
//! boundary:
//!
//! * [`Server`] — a TCP server with two interchangeable connection
//!   backends ([`Backend`]): thread-per-connection, or N epoll
//!   readiness loops sharing one `SO_REUSEPORT` port (Linux, via the
//!   in-tree `fgcs-sys` shim), each loop owning an exclusive subset of
//!   the state shards ([`ServiceConfig::event_loops`]). Both
//!   ingest per-machine sample streams into the existing `fgcs-core`
//!   [`Monitor`](fgcs_core::monitor::Monitor) / detector (via
//!   [`fgcs_testbed::OccurrenceRecorder`], so a streamed trace yields
//!   **bit-identical** records to an in-process run — and to the other
//!   backend), maintain an online `fgcs-predict` model, and answer
//!   availability/placement queries from live state. Per-machine state
//!   is sharded ([`ServiceConfig::state_shards`]); an optional shared
//!   auth token ([`ServiceConfig::auth_token`]) gates every stream.
//! * [`ServiceClient`] — a blocking client with capped-backoff
//!   reconnection (reusing [`fgcs_testbed::SupervisorConfig`]
//!   semantics) that presents the auth token on every (re)connect.
//! * [`loadgen`] — a load generator replaying testbed traces at
//!   configurable fan-in, optionally through `fgcs-faults` frame
//!   corruption to exercise the decode error paths; plus
//!   [`run_fanin`], a connection-scaling driver running thousands of
//!   sockets from one thread on top of [`ClientPool`], the multiplexed
//!   outbound connection pool ([`pool`]).
//!
//! ## Backpressure
//!
//! Ingest capacity is bounded ([`ServiceConfig::queue_capacity`]
//! batches). In the threaded backend a batch arriving at a full queue
//! sheds the *oldest* queued batch to make room; in the epoll backend a
//! batch bound for another loop's shard that finds the forwarding ring
//! full is itself shed. Either way the producer gets a
//! [`fgcs_wire::Frame::Busy`] instead of an `Ack`. Every client frame
//! earns exactly one reply, so the accounting reconciles exactly:
//!
//! ```text
//! batches sent == ingested + shed + decode-rejected
//! acks + busys + error replies == batches sent      (client side)
//! ```
//!
//! Shed batches are *exclusion*, not silent loss: they are counted and
//! reported via `Stats`, the same discipline as censored spans in the
//! fault pipeline (DESIGN.md §8.4 and §9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
#[cfg(target_os = "linux")]
pub mod cluster;
mod conn;
#[cfg(target_os = "linux")]
mod epoll;
pub mod loadgen;
#[cfg(target_os = "linux")]
pub mod pool;
mod repl;
pub mod server;
mod snapshot;
mod state;

pub use repl::{ROLE_FOLLOWER, ROLE_PRIMARY};

pub use client::{ClientConfig, ServiceClient};
#[cfg(target_os = "linux")]
pub use cluster::{ClusterClient, ClusterConfig, ClusterMetrics, ShardSpec};
#[cfg(target_os = "linux")]
pub use loadgen::{run_fanin, FanInConfig, FanInReport};
pub use loadgen::{run_loadgen, LoadGenConfig, LoadGenReport};
#[cfg(target_os = "linux")]
pub use pool::{ClientPool, PoolCloseReason, PoolEvent};
pub use server::{Backend, LockContention, Server, ServiceConfig};
