//! The FGCS availability service: the paper's monitor → detector →
//! predictor loop, turned into a real server/client system.
//!
//! iShare publishes machine availability so consumers can place guest
//! jobs on other people's idle cycles (§5). In this workspace that loop
//! had only existed as in-process function calls
//! (`fgcs_testbed::run_testbed`); this crate runs it across a TCP
//! boundary:
//!
//! * [`Server`] — a TCP server with two interchangeable connection
//!   backends ([`Backend`]): thread-per-connection, or a single epoll
//!   readiness loop (Linux, via the in-tree `fgcs-sys` shim). Both
//!   ingest per-machine sample streams into the existing `fgcs-core`
//!   [`Monitor`](fgcs_core::monitor::Monitor) / detector (via
//!   [`fgcs_testbed::OccurrenceRecorder`], so a streamed trace yields
//!   **bit-identical** records to an in-process run — and to the other
//!   backend), maintain an online `fgcs-predict` model, and answer
//!   availability/placement queries from live state. Per-machine state
//!   is sharded ([`ServiceConfig::state_shards`]); an optional shared
//!   auth token ([`ServiceConfig::auth_token`]) gates every stream.
//! * [`ServiceClient`] — a blocking client with capped-backoff
//!   reconnection (reusing [`fgcs_testbed::SupervisorConfig`]
//!   semantics) that presents the auth token on every (re)connect.
//! * [`loadgen`] — a load generator replaying testbed traces at
//!   configurable fan-in, optionally through `fgcs-faults` frame
//!   corruption to exercise the decode error paths; plus
//!   [`run_fanin`], a single-threaded epoll-driven connection-scaling
//!   driver (64 → 4096 sockets from one thread).
//!
//! ## Backpressure
//!
//! The ingest queue is bounded ([`ServiceConfig::queue_capacity`]
//! batches). When a batch arrives at a full queue the *oldest* queued
//! batch is shed to make room and the producer gets a
//! [`fgcs_wire::Frame::Busy`] instead of an `Ack`. Every client frame
//! earns exactly one reply, so the accounting reconciles exactly:
//!
//! ```text
//! batches sent == ingested + shed + decode-rejected
//! acks + busys + error replies == batches sent      (client side)
//! ```
//!
//! Shed batches are *exclusion*, not silent loss: they are counted and
//! reported via `Stats`, the same discipline as censored spans in the
//! fault pipeline (DESIGN.md §8.4 and §9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod conn;
#[cfg(target_os = "linux")]
mod epoll;
pub mod loadgen;
pub mod server;
mod snapshot;
mod state;

pub use client::{ClientConfig, ServiceClient};
#[cfg(target_os = "linux")]
pub use loadgen::{run_fanin, FanInConfig, FanInReport};
pub use loadgen::{run_loadgen, LoadGenConfig, LoadGenReport};
pub use server::{Backend, Server, ServiceConfig};
