//! Cluster routing client: rendezvous-hashed sharding over a
//! fault-hardened [`ClientPool`] transport (Linux only).
//!
//! A cluster is K *shards*, each a primary `fgcs-serve` plus the
//! follower replicating its seq log (DESIGN.md §13). Machine ids map to
//! shards by rendezvous (highest-random-weight) hashing over the shard
//! *names*: every `(name, machine)` pair gets an independent score and
//! the highest score owns the machine. Removing a shard therefore only
//! moves the machines it owned (everyone else's argmax is unchanged) —
//! pinned by a property test — and ownership never depends on list
//! order or on which endpoint (primary/follower) currently serves.
//!
//! [`ClusterClient`] is the blocking request façade on top of that map,
//! hardened end to end:
//!
//! * **per-request deadlines** — every attempt (connect + auth + reply)
//!   runs against one deadline; a hung server surfaces as `TimedOut`,
//!   not a wedged caller;
//! * **capped-exponential-backoff retries with jitter** — the shared
//!   [`BackoffPolicy`] used by [`crate::ServiceClient`] and the testbed
//!   supervisor;
//! * **failover** — on connect errors, timeouts, or a typed
//!   [`ErrorCode::NotPrimary`] rejection the router flips the shard to
//!   its other endpoint (primary ⇄ follower) and retries there, so a
//!   SIGKILLed primary plus its follower's self-promotion (DESIGN.md
//!   §13.5) heals in one flip, no operator step;
//! * **at-most-once ingest resume** — a retry after an *ambiguous*
//!   failure (the connection died after the batch was sent; the server
//!   may or may not have applied it) first locates the current primary
//!   (both endpoints are probed with `ReplStatus`; the node claiming
//!   the primary role at the highest epoch wins, so a paused-then-
//!   revived old primary can't answer with a stale cursor), then asks
//!   it how far the machine got (`QueryStats` carries per-machine
//!   `last_t`) and resends only the strict `t > last_t` suffix.
//!   Strictness matters: a duplicate of the `last_t` sample would be
//!   *accepted* (only `t < last_t` is out-of-order) and double-count;
//! * **follower reads** — [`ClusterClient::read_on`] sends queries
//!   (`QueryAvail`/`Place`/`QueryStats`) to the follower endpoint
//!   first, falling back to the write path on a transport error or a
//!   typed [`ErrorCode::TooStale`] rejection from the follower's
//!   staleness gate. Writes always take the primary route.

use std::io;
use std::time::{Duration, Instant};

use fgcs_core::backoff::BackoffPolicy;
use fgcs_wire::{ErrorCode, Frame, StatsPayload, WireSample};

use crate::pool::{ClientPool, PoolCloseReason, PoolEvent};

/// One shard of the cluster: the primary and the follower replicating
/// it.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Stable shard name fed to rendezvous hashing. Ownership is a
    /// function of the *name*, not the addresses, so promoting the
    /// follower (or moving a node to a new port) never reshuffles keys.
    pub name: String,
    /// Address of the shard's primary.
    pub primary_addr: String,
    /// Address of the shard's follower; `None` runs the shard
    /// unreplicated (failover disabled, errors surface after retries).
    pub follower_addr: Option<String>,
}

/// [`ClusterClient`] configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The shards, in any order (ownership ignores order).
    pub shards: Vec<ShardSpec>,
    /// Auth token presented on every fresh connection; `None` sends no
    /// `Auth` frame.
    pub token: Option<String>,
    /// Deadline per attempt (connect + auth + one reply), ms.
    pub request_timeout_ms: u64,
    /// Per-slot nonblocking connect deadline, ms ([`ClientPool::add`]).
    pub connect_timeout_ms: u64,
    /// Total attempts per request before the last error surfaces.
    pub max_attempts: u32,
    /// Backoff between attempts, ms; jittered to half-open
    /// `[delay/2, delay]` so a fleet of routers doesn't thunder back.
    pub backoff: BackoffPolicy,
    /// Jitter seed; vary per router instance to decorrelate them.
    pub seed: u64,
}

impl ClusterConfig {
    /// Defaults: 2 s request deadline, 1 s connect deadline, 8
    /// attempts, 20 ms → 500 ms backoff, no token.
    pub fn new(shards: Vec<ShardSpec>) -> Self {
        ClusterConfig {
            shards,
            token: None,
            request_timeout_ms: 2_000,
            connect_timeout_ms: 1_000,
            max_attempts: 8,
            backoff: BackoffPolicy { base: 20, cap: 500 },
            seed: 0x5eed_cafe,
        }
    }
}

/// Router fault/recovery counters, for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Attempts re-run after a transport error, timeout, or
    /// `NotPrimary` rejection.
    pub retries: u64,
    /// Endpoint flips (primary ⇄ follower).
    pub failovers: u64,
    /// Ingest batches that went through the `t > last_t` resume filter
    /// after an ambiguous failure.
    pub resumed_batches: u64,
    /// Samples the resume filter dropped as already applied.
    pub skipped_samples: u64,
    /// `NotPrimary` reroutes that skipped the backoff sleep: the
    /// rejection is a routing signal naming a healthy endpoint, so the
    /// first flip per request retries immediately.
    pub instant_reroutes: u64,
    /// Read requests answered by a follower endpoint (the rest fell
    /// back to the write path).
    pub follower_reads: u64,
}

/// Per-shard connection state.
struct ShardState {
    /// Whether requests currently target the follower endpoint.
    on_follower: bool,
    /// The pool slot holding this shard's write connection, if open.
    slot: Option<usize>,
    /// The pool slot pinned to the follower endpoint for reads, if
    /// open. Kept separate from the write slot so read traffic never
    /// evicts the primary connection (and vice versa).
    read_slot: Option<usize>,
}

/// The blocking cluster router. See the module docs for the fault
/// model; one instance is single-threaded (one request in flight).
pub struct ClusterClient {
    cfg: ClusterConfig,
    pool: ClientPool,
    shards: Vec<ShardState>,
    /// Fault/recovery counters.
    pub metrics: ClusterMetrics,
    /// Monotone salt folded into the jitter seed per sleep.
    salt: u64,
}

/// Rendezvous (highest-random-weight) score of shard `name` for `key`:
/// FNV-1a over the name then the key bytes, finished with an avalanche
/// mix so near-identical names still score independently.
pub fn rendezvous_score(name: &str, key: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    for b in key.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // splitmix64 finalizer.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Index of the shard owning `key`: argmax of [`rendezvous_score`],
/// ties broken toward the lexically smallest name so ownership is a
/// pure function of the name *set* (list order never matters).
///
/// # Panics
/// On an empty `names` slice — a cluster has at least one shard.
pub fn rendezvous_owner<S: AsRef<str>>(names: &[S], key: u32) -> usize {
    assert!(!names.is_empty(), "rendezvous over zero shards");
    let mut best = 0usize;
    for i in 1..names.len() {
        let (bi, bn) = (rendezvous_score(names[i].as_ref(), key), names[i].as_ref());
        let (bb, nb) = (
            rendezvous_score(names[best].as_ref(), key),
            names[best].as_ref(),
        );
        if bi > bb || (bi == bb && bn < nb) {
            best = i;
        }
    }
    best
}

impl ClusterClient {
    /// Builds a router over `cfg.shards`. Connections are opened
    /// lazily, so a dead node costs nothing until a request routes to
    /// it. Errors only on epoll setup failure or zero shards.
    pub fn connect(cfg: ClusterConfig) -> io::Result<ClusterClient> {
        if cfg.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard",
            ));
        }
        let shards = cfg
            .shards
            .iter()
            .map(|_| ShardState {
                on_follower: false,
                slot: None,
                read_slot: None,
            })
            .collect();
        Ok(ClusterClient {
            pool: ClientPool::new()?,
            shards,
            metrics: ClusterMetrics::default(),
            salt: 0,
            cfg,
        })
    }

    /// Number of shards the router spans.
    pub fn shard_count(&self) -> usize {
        self.cfg.shards.len()
    }

    /// The shard owning `machine` under rendezvous hashing.
    pub fn shard_for(&self, machine: u32) -> usize {
        rendezvous_owner(
            &self
                .cfg
                .shards
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>(),
            machine,
        )
    }

    /// The endpoint shard `s` currently targets.
    pub fn endpoint_of(&self, s: usize) -> &str {
        let spec = &self.cfg.shards[s];
        match &spec.follower_addr {
            Some(f) if self.shards[s].on_follower => f,
            _ => &spec.primary_addr,
        }
    }

    /// Streams one machine's samples to its owning shard with
    /// at-most-once delivery: retries after ambiguous failures resend
    /// only the strict `t > last_t` suffix the shard has not applied.
    /// Returns the final server reply (`Ack`, or `Busy` under shed).
    pub fn ingest(&mut self, machine: u32, samples: Vec<WireSample>) -> io::Result<Frame> {
        let shard = self.shard_for(machine);
        let mut pending = samples;
        let mut attempt: u32 = 0;
        let mut rerouting = false;
        loop {
            if pending.is_empty() {
                // Everything was applied before the failure; nothing
                // left to deliver.
                return Ok(Frame::Ack { seq: 0 });
            }
            let frame = Frame::SampleBatch {
                machine,
                samples: pending.clone(),
            };
            match self.try_on(shard, &frame) {
                Ok(Frame::Error {
                    code: ErrorCode::NotPrimary,
                    detail,
                }) => {
                    // A routing signal, not an ambiguous failure: the
                    // follower applied nothing, so the full remainder
                    // goes to the flipped endpoint.
                    self.bounce(shard, &mut attempt, &detail, !rerouting)?;
                    rerouting = true;
                }
                Ok(reply) => return Ok(reply),
                Err(e) if e.kind() == io::ErrorKind::PermissionDenied => return Err(e),
                Err(e) => {
                    // Ambiguous: the server may have applied the batch
                    // before the connection died. Fail over, locate the
                    // *current* primary (an old primary revived mid-
                    // failover still answers stats, with a cursor that
                    // includes writes the new primary never got — a
                    // stale `last_t` here would silently drop the
                    // pending suffix), then ask it how far this machine
                    // actually got and resume strictly after that.
                    self.bounce(shard, &mut attempt, &e.to_string(), false)
                        .map_err(|_| e)?;
                    rerouting = false;
                    self.aim_at_primary(shard);
                    let applied_t = self
                        .stats_of(shard)?
                        .machines
                        .iter()
                        .find(|m| m.machine == machine)
                        .map(|m| m.last_t);
                    if let Some(last_t) = applied_t {
                        let before = pending.len();
                        pending.retain(|s| s.t > last_t);
                        self.metrics.resumed_batches += 1;
                        self.metrics.skipped_samples += (before - pending.len()) as u64;
                    }
                }
            }
        }
    }

    /// Availability query for `machine` on its owning shard, preferring
    /// the follower replica ([`ClusterClient::read_on`]).
    pub fn query_avail(&mut self, machine: u32, horizon: u64) -> io::Result<Frame> {
        let shard = self.shard_for(machine);
        self.read_on(shard, &Frame::QueryAvail { machine, horizon })
    }

    /// Placement query against shard `s`, preferring the follower
    /// replica ([`ClusterClient::read_on`]).
    pub fn place_on(&mut self, s: usize, job_len: u64) -> io::Result<Frame> {
        self.read_on(s, &Frame::Place { job_len })
    }

    /// `QueryStats` against shard `s`'s *write* endpoint. Authoritative
    /// by construction: the ingest resume filter derives its `t >
    /// last_t` floor from this, and a follower's floor may lag.
    pub fn stats_of(&mut self, s: usize) -> io::Result<StatsPayload> {
        match self.request_on(s, &Frame::QueryStats)? {
            Frame::StatsReply(stats) => Ok(stats),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply to QueryStats: tag {}", other.tag()),
            )),
        }
    }

    /// `QueryStats` against shard `s`, preferring the follower replica.
    /// Fine for dashboards and load checks; never feed the result into
    /// a dedup decision (see [`ClusterClient::stats_of`]).
    pub fn read_stats_of(&mut self, s: usize) -> io::Result<StatsPayload> {
        match self.read_on(s, &Frame::QueryStats)? {
            Frame::StatsReply(stats) => Ok(stats),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply to QueryStats: tag {}", other.tag()),
            )),
        }
    }

    /// Sends a read-only `frame` to shard `s`, preferring its follower
    /// endpoint. One attempt goes to the follower; a transport failure
    /// or a typed `TooStale`/`NotPrimary` rejection falls back to the
    /// full write path (retries, failover and all), so a read is never
    /// *less* available than before follower reads existed. Any other
    /// typed error from the follower (UnknownMachine on a caught-up
    /// replica, say) is a real answer and returns as-is.
    pub fn read_on(&mut self, s: usize, frame: &Frame) -> io::Result<Frame> {
        if self.cfg.shards[s].follower_addr.is_some() {
            match self.try_read(s, frame) {
                Ok(Frame::Error { code, .. })
                    if code == ErrorCode::TooStale || code == ErrorCode::NotPrimary => {}
                Ok(reply) => {
                    self.metrics.follower_reads += 1;
                    return Ok(reply);
                }
                Err(e) if e.kind() == io::ErrorKind::PermissionDenied => return Err(e),
                Err(_) => {}
            }
        }
        self.request_on(s, frame)
    }

    /// Sends `frame` to shard `s` with the full retry/failover
    /// discipline. Use [`ClusterClient::ingest`] for sample batches —
    /// this path retries verbatim, which is at-least-once.
    pub fn request_on(&mut self, s: usize, frame: &Frame) -> io::Result<Frame> {
        let mut attempt: u32 = 0;
        let mut rerouting = false;
        loop {
            match self.try_on(s, frame) {
                // Both rejections are routing signals from a live
                // follower: NotPrimary for writes, TooStale for reads
                // behind a staleness gate. Flip and retry.
                Ok(Frame::Error { code, detail })
                    if code == ErrorCode::NotPrimary || code == ErrorCode::TooStale =>
                {
                    self.bounce(s, &mut attempt, &detail, !rerouting)?;
                    rerouting = true;
                }
                Ok(reply) => return Ok(reply),
                Err(e) if e.kind() == io::ErrorKind::PermissionDenied => return Err(e),
                Err(e) => {
                    self.bounce(s, &mut attempt, "transport", false)
                        .map_err(|_| e)?;
                    rerouting = false;
                }
            }
        }
    }

    /// One failure step: drop the shard's connection, flip its
    /// endpoint (if replicated), charge the retry budget, and sleep the
    /// jittered backoff. `Err` when the budget is spent.
    ///
    /// `instant` skips the sleep: a `NotPrimary` rejection is a routing
    /// signal from a live node — the flipped endpoint is known-good, so
    /// the first reroute per request should not burn a backoff step.
    /// Only the *first* consecutive one gets this (the caller clears it
    /// after use); if both endpoints claim not-primary (promotion still
    /// in flight) the subsequent flips back off normally rather than
    /// ping-ponging hot between the two.
    fn bounce(&mut self, s: usize, attempt: &mut u32, why: &str, instant: bool) -> io::Result<()> {
        if let Some(slot) = self.shards[s].slot.take() {
            self.pool.close(slot);
        }
        if self.cfg.shards[s].follower_addr.is_some() {
            self.shards[s].on_follower = !self.shards[s].on_follower;
            self.metrics.failovers += 1;
        }
        *attempt += 1;
        if *attempt >= self.cfg.max_attempts {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("shard {s}: retries exhausted ({why})"),
            ));
        }
        self.metrics.retries += 1;
        if instant {
            self.metrics.instant_reroutes += 1;
            return Ok(());
        }
        let delay = self
            .cfg
            .backoff
            .delay_jittered(*attempt, self.cfg.seed ^ self.salt);
        self.salt = self.salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
        std::thread::sleep(Duration::from_millis(delay));
        Ok(())
    }

    /// One attempt: connect (+auth) if needed, send, await the reply,
    /// all against a single deadline.
    fn try_on(&mut self, s: usize, frame: &Frame) -> io::Result<Frame> {
        let deadline = Instant::now() + Duration::from_millis(self.cfg.request_timeout_ms.max(1));
        let slot = self.ensure_slot(s, deadline)?;
        if !self.pool.send(slot, frame) {
            self.unmap(slot);
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection died before the request was written",
            ));
        }
        self.await_reply(slot, deadline)
    }

    /// One attempt against shard `s`'s follower endpoint, over the
    /// shard's dedicated read slot. No retries here — the caller falls
    /// back to the write path on failure.
    fn try_read(&mut self, s: usize, frame: &Frame) -> io::Result<Frame> {
        let deadline = Instant::now() + Duration::from_millis(self.cfg.request_timeout_ms.max(1));
        let slot = match self.shards[s].read_slot {
            Some(slot) if self.pool.is_open(slot) => slot,
            _ => {
                self.shards[s].read_slot = None;
                let addr = self.cfg.shards[s]
                    .follower_addr
                    .clone()
                    .expect("read path requires a follower endpoint");
                let slot = self.pool.add(&addr, self.cfg.connect_timeout_ms)?;
                self.shards[s].read_slot = Some(slot);
                if let Err(e) = self.handshake(slot, deadline) {
                    self.shards[s].read_slot = None;
                    return Err(e);
                }
                slot
            }
        };
        if !self.pool.send(slot, frame) {
            self.unmap(slot);
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection died before the request was written",
            ));
        }
        self.await_reply(slot, deadline)
    }

    /// Points shard `s`'s write route at whichever endpoint currently
    /// holds the primary role at the highest epoch. Both endpoints are
    /// probed with `ReplStatus` over throwaway connections; a node that
    /// answers as a follower — or not at all — can't win, and between
    /// two self-styled primaries the higher epoch does (the lower one
    /// is a revenant that paused through its own replacement). No
    /// change when neither endpoint claims the role (failover still in
    /// flight: the caller's retry loop keeps flipping normally). The
    /// ingest resume calls this before trusting a `last_t` floor.
    pub fn aim_at_primary(&mut self, s: usize) {
        let Some(follower_addr) = self.cfg.shards[s].follower_addr.clone() else {
            return;
        };
        let primary_addr = self.cfg.shards[s].primary_addr.clone();
        let mut best: Option<(u64, bool)> = None; // (epoch, use follower endpoint)
        for (addr, on_follower) in [(primary_addr, false), (follower_addr, true)] {
            if let Some((role, epoch)) = self.probe_role(&addr) {
                if role == crate::repl::ROLE_PRIMARY && best.is_none_or(|(be, _)| epoch > be) {
                    best = Some((epoch, on_follower));
                }
            }
        }
        if let Some((_, on_follower)) = best {
            if self.shards[s].on_follower != on_follower {
                if let Some(slot) = self.shards[s].slot.take() {
                    self.pool.close(slot);
                }
                self.shards[s].on_follower = on_follower;
            }
        }
    }

    /// `ReplStatus` against one address over a throwaway connection:
    /// `Some((role, epoch))` on a well-formed reply, `None` otherwise.
    fn probe_role(&mut self, addr: &str) -> Option<(u8, u64)> {
        let deadline = Instant::now() + Duration::from_millis(self.cfg.request_timeout_ms.max(1));
        let slot = self.pool.add(addr, self.cfg.connect_timeout_ms).ok()?;
        let result = (|| {
            self.handshake(slot, deadline).ok()?;
            if !self.pool.send(slot, &Frame::ReplStatus) {
                return None;
            }
            match self.await_reply(slot, deadline) {
                Ok(Frame::ReplStatusReply { role, epoch, .. }) => Some((role, epoch)),
                _ => None,
            }
        })();
        self.pool.close(slot);
        result
    }

    /// Returns an open slot for shard `s`, dialing its current
    /// endpoint (and authenticating) if none is cached. Sends are
    /// buffered while the nonblocking connect resolves, so no
    /// round-trip is spent waiting for the handshake itself.
    fn ensure_slot(&mut self, s: usize, deadline: Instant) -> io::Result<usize> {
        if let Some(slot) = self.shards[s].slot {
            if self.pool.is_open(slot) {
                return Ok(slot);
            }
            self.shards[s].slot = None;
        }
        let addr = self.endpoint_of(s).to_string();
        let slot = self.pool.add(&addr, self.cfg.connect_timeout_ms)?;
        self.shards[s].slot = Some(slot);
        if let Err(e) = self.handshake(slot, deadline) {
            self.shards[s].slot = None;
            return Err(e);
        }
        Ok(slot)
    }

    /// Authenticates a freshly added slot when the cluster has a token
    /// (no-op otherwise). On failure the slot is closed; the caller
    /// must drop its reference.
    fn handshake(&mut self, slot: usize, deadline: Instant) -> io::Result<()> {
        let Some(token) = self.cfg.token.clone() else {
            return Ok(());
        };
        if !self.pool.send(slot, &Frame::Auth { token }) {
            self.unmap(slot);
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection died before Auth was written",
            ));
        }
        match self.await_reply(slot, deadline)? {
            Frame::Ack { .. } => Ok(()),
            Frame::Error { code, detail } => {
                self.pool.close(slot);
                let kind = if code == ErrorCode::Unauthorized {
                    // Terminal: backoff cannot fix a wrong secret.
                    io::ErrorKind::PermissionDenied
                } else {
                    io::ErrorKind::ConnectionRefused
                };
                Err(io::Error::new(kind, format!("auth rejected: {detail}")))
            }
            other => {
                self.pool.close(slot);
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected reply to Auth: tag {}", other.tag()),
                ))
            }
        }
    }

    /// Pumps the pool until `slot` yields a frame, dies, or the
    /// deadline passes (which closes the slot: a late reply to an
    /// abandoned request must never be mistaken for the next one).
    fn await_reply(&mut self, slot: usize, deadline: Instant) -> io::Result<Frame> {
        let mut events: Vec<PoolEvent> = Vec::new();
        loop {
            let now = Instant::now();
            if now >= deadline {
                self.pool.close(slot);
                self.unmap(slot);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request deadline exceeded",
                ));
            }
            let budget = deadline
                .saturating_duration_since(now)
                .as_millis()
                .clamp(1, i32::MAX as u128) as i32;
            events.clear();
            self.pool.poll(budget, &mut events)?;
            let mut reply: Option<Frame> = None;
            let mut died: Option<PoolCloseReason> = None;
            for ev in events.drain(..) {
                match ev {
                    PoolEvent::Connected { .. } => {}
                    PoolEvent::Frame { slot: from, frame } if from == slot => {
                        if reply.is_none() {
                            reply = Some(frame);
                        }
                    }
                    // A frame on another shard's slot with no request
                    // outstanding there: a late reply to an abandoned
                    // request. Dropping it is exactly why timed-out
                    // slots are closed, but be safe against races.
                    PoolEvent::Frame { .. } => {}
                    PoolEvent::Closed { slot: from, reason } => {
                        self.unmap(from);
                        if from == slot {
                            died = Some(reason);
                        }
                    }
                }
            }
            if let Some(frame) = reply {
                return Ok(frame);
            }
            if let Some(reason) = died {
                let kind = match reason {
                    PoolCloseReason::ConnectTimeout => io::ErrorKind::TimedOut,
                    PoolCloseReason::Eof => io::ErrorKind::UnexpectedEof,
                    _ => io::ErrorKind::ConnectionReset,
                };
                return Err(io::Error::new(
                    kind,
                    format!("connection closed ({reason:?})"),
                ));
            }
        }
    }

    /// Clears whichever shard holds pool slot `slot` (write or read).
    fn unmap(&mut self, slot: usize) {
        for st in &mut self.shards {
            if st.slot == Some(slot) {
                st.slot = None;
            }
            if st.read_slot == Some(slot) {
                st.read_slot = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Server, ServiceConfig};
    use fgcs_wire::SampleLoad;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    #[test]
    fn rendezvous_spreads_keys_and_ignores_list_order() {
        let fwd = names(4);
        let mut counts = [0usize; 4];
        for key in 0..1_000u32 {
            counts[rendezvous_owner(&fwd, key)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (100..500).contains(c),
                "shard {i} owns {c} of 1000 keys — distribution is badly skewed"
            );
        }
        // Ownership is a function of the name set: permuting the list
        // maps every key to the same *name*.
        let mut rev = fwd.clone();
        rev.reverse();
        for key in 0..1_000u32 {
            assert_eq!(
                fwd[rendezvous_owner(&fwd, key)],
                rev[rendezvous_owner(&rev, key)]
            );
        }
    }

    fn wave(machine: u32, n: u64) -> Vec<WireSample> {
        (0..n)
            .map(|i| WireSample {
                t: i * 15,
                load: SampleLoad::Direct(if ((i + 7 * machine as u64) / 40) % 2 == 1 {
                    0.9
                } else {
                    0.05
                }),
                host_resident_mb: 100,
                alive: true,
            })
            .collect()
    }

    #[test]
    fn router_routes_ingest_and_queries_per_shard() {
        let a = Server::start(ServiceConfig {
            backend: Backend::Threads,
            ..Default::default()
        })
        .unwrap();
        let b = Server::start(ServiceConfig {
            backend: Backend::Threads,
            ..Default::default()
        })
        .unwrap();
        let cfg = ClusterConfig::new(vec![
            ShardSpec {
                name: "a".into(),
                primary_addr: a.local_addr().to_string(),
                follower_addr: None,
            },
            ShardSpec {
                name: "b".into(),
                primary_addr: b.local_addr().to_string(),
                follower_addr: None,
            },
        ]);
        let mut router = ClusterClient::connect(cfg).unwrap();
        for machine in 1..=8u32 {
            let reply = router.ingest(machine, wave(machine, 20)).unwrap();
            assert!(
                matches!(reply, Frame::Ack { .. }),
                "machine {machine}: {reply:?}"
            );
        }
        // Every machine landed on exactly its owning shard.
        let spin = |r: &mut ClusterClient, s: usize| -> StatsPayload {
            for _ in 0..200 {
                let st = r.stats_of(s).unwrap();
                if st.queue_depth == 0 {
                    return st;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            panic!("shard {s} never drained");
        };
        let (sa, sb) = (spin(&mut router, 0), spin(&mut router, 1));
        assert_eq!(sa.ingested_batches + sb.ingested_batches, 8);
        for machine in 1..=8u32 {
            let owner = router.shard_for(machine);
            let (on, off) = if owner == 0 { (&sa, &sb) } else { (&sb, &sa) };
            assert!(on.machines.iter().any(|m| m.machine == machine));
            assert!(!off.machines.iter().any(|m| m.machine == machine));
        }
        assert_eq!(router.metrics.retries, 0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn router_fails_over_on_not_primary_and_resumes_after_a_dead_endpoint() {
        // The "primary" endpoint is actually a follower (it rejects
        // ingest with NotPrimary); the real primary is listed as the
        // follower endpoint. One flip must heal the route.
        let primary = Server::start(ServiceConfig {
            backend: Backend::Threads,
            ..Default::default()
        })
        .unwrap();
        let follower = Server::start(ServiceConfig {
            backend: Backend::Threads,
            // Points at a dead port: the pull loop just backs off, and
            // the node keeps rejecting ingest as a follower.
            follower_of: Some("127.0.0.1:1".to_string()),
            ..Default::default()
        })
        .unwrap();
        let mut cfg = ClusterConfig::new(vec![ShardSpec {
            name: "s".into(),
            primary_addr: follower.local_addr().to_string(),
            follower_addr: Some(primary.local_addr().to_string()),
        }]);
        cfg.backoff = BackoffPolicy { base: 1, cap: 4 };
        let mut router = ClusterClient::connect(cfg).unwrap();
        let reply = router.ingest(9, wave(9, 12)).unwrap();
        assert!(matches!(reply, Frame::Ack { .. }));
        assert_eq!(router.metrics.failovers, 1, "one flip lands on the primary");

        // The flipped route keeps serving reads too.
        let avail = router.query_avail(9, 60);
        assert!(avail.is_ok(), "queries survive the flip: {avail:?}");
        primary.shutdown();
        follower.shutdown();
    }
}
