//! Trace-replaying load generator: N machines × M samples/s against a
//! running server, optionally through frame corruption.
//!
//! One thread per simulated machine, each with its own
//! [`ServiceClient`] and its own deterministic
//! [`FrameCorruptor`](fgcs_faults::FrameCorruptor) stream. The report
//! carries both sides of the client accounting identity:
//! `acks + busys + error_replies == batches_sent`.

use std::io;
use std::time::{Duration, Instant};

use fgcs_faults::{FaultConfig, FrameCorruptor};
use fgcs_testbed::{LabConfig, MachinePlan, SupervisorConfig};
use fgcs_wire::{Frame, SampleLoad, WireSample, HEADER_LEN};

use crate::client::{ClientConfig, ServiceClient};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Lab model whose machines are replayed (`lab.machines` = fan-in).
    pub lab: LabConfig,
    /// Samples per `SampleBatch` frame.
    pub batch_size: usize,
    /// Pacing per machine, samples/second of wall clock; 0 = as fast as
    /// possible (the overload mode).
    pub samples_per_sec: u64,
    /// Fault injection; only `corrupt_rate` (frame corruption) and
    /// `seed` are consulted.
    pub faults: FaultConfig,
    /// Reconnect policy for each machine's client.
    pub sup: SupervisorConfig,
    /// Milliseconds per supervisor "second" (see
    /// [`ClientConfig::backoff_unit_ms`]).
    pub backoff_unit_ms: u64,
    /// Cap on samples replayed per machine; `None` replays the whole
    /// span.
    pub max_samples_per_machine: Option<u64>,
    /// Issue a `QueryAvail` every this many batches (per machine),
    /// measuring reply latency; 0 disables querying.
    pub query_every_batches: u64,
    /// Horizon for those queries, seconds of trace time.
    pub query_horizon: u64,
}

impl LoadGenConfig {
    /// A small, fast configuration replaying `lab` unpaced and clean.
    pub fn new(lab: LabConfig) -> Self {
        LoadGenConfig {
            lab,
            batch_size: 64,
            samples_per_sec: 0,
            faults: FaultConfig::off(0),
            sup: SupervisorConfig::default(),
            backoff_unit_ms: 1,
            max_samples_per_machine: None,
            query_every_batches: 0,
            query_horizon: 1_800,
        }
    }
}

/// What one load-generation run did and observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadGenReport {
    /// Machines replayed.
    pub machines: usize,
    /// `SampleBatch` frames sent (including corrupted ones).
    pub batches_sent: u64,
    /// Samples inside those frames.
    pub samples_sent: u64,
    /// Frames the injector corrupted before sending.
    pub frames_corrupted: u64,
    /// `Ack` replies received.
    pub acks: u64,
    /// `Busy` replies received.
    pub busys: u64,
    /// `Error` replies received *to sample batches* (the corrupted
    /// ones; must equal `frames_corrupted` exactly).
    pub error_replies: u64,
    /// `QueryAvail` requests issued.
    pub queries_sent: u64,
    /// `AvailReply`s received (a query for a machine the server has not
    /// ingested yet earns an `Error` instead; those are not counted
    /// here or in `error_replies`).
    pub queries_answered: u64,
    /// Reply latency of every query, µs, in issue order.
    pub query_latencies_us: Vec<u64>,
    /// Transparent reconnections across all clients.
    pub reconnects: u64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_secs: f64,
}

impl LoadGenReport {
    fn merge(&mut self, other: LoadGenReport) {
        self.machines += other.machines;
        self.batches_sent += other.batches_sent;
        self.samples_sent += other.samples_sent;
        self.frames_corrupted += other.frames_corrupted;
        self.acks += other.acks;
        self.busys += other.busys;
        self.error_replies += other.error_replies;
        self.queries_sent += other.queries_sent;
        self.queries_answered += other.queries_answered;
        self.query_latencies_us.extend(other.query_latencies_us);
        self.reconnects += other.reconnects;
        self.elapsed_secs = self.elapsed_secs.max(other.elapsed_secs);
    }
}

/// Replays every machine of `cfg.lab` against the server at `addr`,
/// one thread per machine. Returns the merged report; fails on the
/// first machine whose client gives up entirely.
pub fn run_loadgen(addr: &str, cfg: &LoadGenConfig) -> io::Result<LoadGenReport> {
    let started = Instant::now();
    let ids: Vec<usize> = (0..cfg.lab.machines).collect();
    let results: Vec<io::Result<LoadGenReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| scope.spawn(move || replay_machine(addr, cfg, id)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let mut report = LoadGenReport::default();
    for r in results {
        report.merge(r?);
    }
    report.elapsed_secs = started.elapsed().as_secs_f64();
    Ok(report)
}

fn replay_machine(addr: &str, cfg: &LoadGenConfig, machine_id: usize) -> io::Result<LoadGenReport> {
    let started = Instant::now();
    let mut client = ServiceClient::connect(ClientConfig {
        addr: addr.to_string(),
        sup: cfg.sup,
        backoff_unit_ms: cfg.backoff_unit_ms,
        read_timeout_ms: 10_000,
    })?;
    let mut corruptor = FrameCorruptor::new(&cfg.faults, machine_id as u64);
    let plan = MachinePlan::generate(&cfg.lab, machine_id);
    let mut report = LoadGenReport {
        machines: 1,
        ..Default::default()
    };

    let batch_size = cfg.batch_size.max(1);
    let pace = if cfg.samples_per_sec > 0 {
        // Per-batch sleep that yields the configured per-machine rate.
        Some(Duration::from_micros(
            (batch_size as u64).saturating_mul(1_000_000) / cfg.samples_per_sec,
        ))
    } else {
        None
    };

    let mut pending: Vec<WireSample> = Vec::with_capacity(batch_size);
    let mut taken = 0u64;
    let mut samples = plan.samples();
    loop {
        let sample = samples.next();
        if let Some(s) = &sample {
            if cfg.max_samples_per_machine.is_some_and(|cap| taken >= cap) {
                // Cap reached: flush what's pending and stop.
            } else {
                taken += 1;
                pending.push(WireSample {
                    t: s.t,
                    load: SampleLoad::Direct(s.host_load),
                    host_resident_mb: s.host_resident_mb,
                    alive: s.alive,
                });
                if pending.len() < batch_size {
                    continue;
                }
            }
        }
        if !pending.is_empty() {
            let batch = Frame::SampleBatch {
                machine: machine_id as u32,
                samples: std::mem::take(&mut pending),
            };
            let mut bytes = batch
                .encode()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            corruptor.corrupt(&mut bytes, HEADER_LEN);
            let sample_count = match &batch {
                Frame::SampleBatch { samples, .. } => samples.len() as u64,
                _ => unreachable!(),
            };
            report.batches_sent += 1;
            report.samples_sent += sample_count;
            match client.request_encoded(&bytes)? {
                Frame::Ack { .. } => report.acks += 1,
                Frame::Busy { .. } => report.busys += 1,
                Frame::Error { .. } => report.error_replies += 1,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected reply to SampleBatch: tag {}", other.tag()),
                    ))
                }
            }
            if let Some(d) = pace {
                std::thread::sleep(d);
            }
            if cfg.query_every_batches > 0
                && report.batches_sent.is_multiple_of(cfg.query_every_batches)
            {
                let q = Frame::QueryAvail {
                    machine: machine_id as u32,
                    horizon: cfg.query_horizon,
                };
                let sent_at = Instant::now();
                let reply = client.request(&q)?;
                report
                    .query_latencies_us
                    .push(sent_at.elapsed().as_micros() as u64);
                report.queries_sent += 1;
                if matches!(reply, Frame::AvailReply { .. }) {
                    report.queries_answered += 1;
                }
            }
        }
        let capped = cfg.max_samples_per_machine.is_some_and(|cap| taken >= cap);
        if sample.is_none() || capped {
            break;
        }
    }
    report.frames_corrupted = corruptor.frames_corrupted;
    report.reconnects = client.reconnects;
    report.elapsed_secs = started.elapsed().as_secs_f64();
    Ok(report)
}
