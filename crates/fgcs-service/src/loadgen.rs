//! Trace-replaying load generator: N machines × M samples/s against a
//! running server, optionally through frame corruption.
//!
//! One thread per simulated machine, each with its own
//! [`ServiceClient`] and its own deterministic
//! [`FrameCorruptor`](fgcs_faults::FrameCorruptor) stream. The report
//! carries both sides of the client accounting identity:
//! `acks + busys + error_replies == batches_sent`.

use std::io;
use std::time::{Duration, Instant};

use fgcs_faults::{FaultConfig, FrameCorruptor};
use fgcs_testbed::{LabConfig, MachinePlan, SupervisorConfig};
use fgcs_wire::{Frame, SampleLoad, WireSample, HEADER_LEN};

use crate::client::{ClientConfig, ServiceClient};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Lab model whose machines are replayed (`lab.machines` = fan-in).
    pub lab: LabConfig,
    /// Samples per `SampleBatch` frame.
    pub batch_size: usize,
    /// Pacing per machine, samples/second of wall clock; 0 = as fast as
    /// possible (the overload mode).
    pub samples_per_sec: u64,
    /// Fault injection; only `corrupt_rate` (frame corruption) and
    /// `seed` are consulted.
    pub faults: FaultConfig,
    /// Reconnect policy for each machine's client.
    pub sup: SupervisorConfig,
    /// Milliseconds per supervisor "second" (see
    /// [`ClientConfig::backoff_unit_ms`]).
    pub backoff_unit_ms: u64,
    /// Cap on samples replayed per machine; `None` replays the whole
    /// span.
    pub max_samples_per_machine: Option<u64>,
    /// Issue a `QueryAvail` every this many batches (per machine),
    /// measuring reply latency; 0 disables querying.
    pub query_every_batches: u64,
    /// Horizon for those queries, seconds of trace time.
    pub query_horizon: u64,
    /// Auth token each machine's client presents on connect.
    pub token: Option<String>,
}

impl LoadGenConfig {
    /// A small, fast configuration replaying `lab` unpaced and clean.
    pub fn new(lab: LabConfig) -> Self {
        LoadGenConfig {
            lab,
            batch_size: 64,
            samples_per_sec: 0,
            faults: FaultConfig::off(0),
            sup: SupervisorConfig::default(),
            backoff_unit_ms: 1,
            max_samples_per_machine: None,
            query_every_batches: 0,
            query_horizon: 1_800,
            token: None,
        }
    }
}

/// What one load-generation run did and observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadGenReport {
    /// Machines replayed.
    pub machines: usize,
    /// `SampleBatch` frames sent (including corrupted ones).
    pub batches_sent: u64,
    /// Samples inside those frames.
    pub samples_sent: u64,
    /// Frames the injector corrupted before sending.
    pub frames_corrupted: u64,
    /// `Ack` replies received.
    pub acks: u64,
    /// `Busy` replies received.
    pub busys: u64,
    /// `Error` replies received *to sample batches* (the corrupted
    /// ones; must equal `frames_corrupted` exactly).
    pub error_replies: u64,
    /// `QueryAvail` requests issued.
    pub queries_sent: u64,
    /// `AvailReply`s received (a query for a machine the server has not
    /// ingested yet earns an `Error` instead; those are not counted
    /// here or in `error_replies`).
    pub queries_answered: u64,
    /// Reply latency of every query, µs, in issue order.
    pub query_latencies_us: Vec<u64>,
    /// Transparent reconnections across all clients.
    pub reconnects: u64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_secs: f64,
}

impl LoadGenReport {
    fn merge(&mut self, other: LoadGenReport) {
        self.machines += other.machines;
        self.batches_sent += other.batches_sent;
        self.samples_sent += other.samples_sent;
        self.frames_corrupted += other.frames_corrupted;
        self.acks += other.acks;
        self.busys += other.busys;
        self.error_replies += other.error_replies;
        self.queries_sent += other.queries_sent;
        self.queries_answered += other.queries_answered;
        self.query_latencies_us.extend(other.query_latencies_us);
        self.reconnects += other.reconnects;
        self.elapsed_secs = self.elapsed_secs.max(other.elapsed_secs);
    }
}

/// Replays every machine of `cfg.lab` against the server at `addr`,
/// one thread per machine. Returns the merged report; fails on the
/// first machine whose client gives up entirely.
pub fn run_loadgen(addr: &str, cfg: &LoadGenConfig) -> io::Result<LoadGenReport> {
    let started = Instant::now();
    let ids: Vec<usize> = (0..cfg.lab.machines).collect();
    let results: Vec<io::Result<LoadGenReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| scope.spawn(move || replay_machine(addr, cfg, id)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let mut report = LoadGenReport::default();
    for r in results {
        report.merge(r?);
    }
    report.elapsed_secs = started.elapsed().as_secs_f64();
    Ok(report)
}

fn replay_machine(addr: &str, cfg: &LoadGenConfig, machine_id: usize) -> io::Result<LoadGenReport> {
    let started = Instant::now();
    let mut client = ServiceClient::connect(ClientConfig {
        addr: addr.to_string(),
        sup: cfg.sup,
        backoff_unit_ms: cfg.backoff_unit_ms,
        read_timeout_ms: 10_000,
        token: cfg.token.clone(),
    })?;
    let mut corruptor = FrameCorruptor::new(&cfg.faults, machine_id as u64);
    let plan = MachinePlan::generate(&cfg.lab, machine_id);
    let mut report = LoadGenReport {
        machines: 1,
        ..Default::default()
    };

    let batch_size = cfg.batch_size.max(1);
    // Per-batch sleep that yields the configured per-machine rate
    // (unpaced when the rate is 0).
    let pace = (batch_size as u64)
        .saturating_mul(1_000_000)
        .checked_div(cfg.samples_per_sec)
        .map(Duration::from_micros);

    let mut pending: Vec<WireSample> = Vec::with_capacity(batch_size);
    let mut taken = 0u64;
    let mut samples = plan.samples();
    loop {
        let sample = samples.next();
        if let Some(s) = &sample {
            if cfg.max_samples_per_machine.is_some_and(|cap| taken >= cap) {
                // Cap reached: flush what's pending and stop.
            } else {
                taken += 1;
                pending.push(WireSample {
                    t: s.t,
                    load: SampleLoad::Direct(s.host_load),
                    host_resident_mb: s.host_resident_mb,
                    alive: s.alive,
                });
                if pending.len() < batch_size {
                    continue;
                }
            }
        }
        if !pending.is_empty() {
            let batch = Frame::SampleBatch {
                machine: machine_id as u32,
                samples: std::mem::take(&mut pending),
            };
            let mut bytes = batch
                .encode()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            corruptor.corrupt(&mut bytes, HEADER_LEN);
            let sample_count = match &batch {
                Frame::SampleBatch { samples, .. } => samples.len() as u64,
                _ => unreachable!(),
            };
            report.batches_sent += 1;
            report.samples_sent += sample_count;
            match client.request_encoded(&bytes)? {
                Frame::Ack { .. } => report.acks += 1,
                Frame::Busy { .. } => report.busys += 1,
                Frame::Error { .. } => report.error_replies += 1,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected reply to SampleBatch: tag {}", other.tag()),
                    ))
                }
            }
            if let Some(d) = pace {
                std::thread::sleep(d);
            }
            if cfg.query_every_batches > 0
                && report.batches_sent.is_multiple_of(cfg.query_every_batches)
            {
                let q = Frame::QueryAvail {
                    machine: machine_id as u32,
                    horizon: cfg.query_horizon,
                };
                let sent_at = Instant::now();
                let reply = client.request(&q)?;
                report
                    .query_latencies_us
                    .push(sent_at.elapsed().as_micros() as u64);
                report.queries_sent += 1;
                if matches!(reply, Frame::AvailReply { .. }) {
                    report.queries_answered += 1;
                }
            }
        }
        let capped = cfg.max_samples_per_machine.is_some_and(|cap| taken >= cap);
        if sample.is_none() || capped {
            break;
        }
    }
    report.frames_corrupted = corruptor.frames_corrupted;
    report.reconnects = client.reconnects;
    report.elapsed_secs = started.elapsed().as_secs_f64();
    Ok(report)
}

#[cfg(target_os = "linux")]
pub use fanin::{run_fanin, FanInConfig, FanInReport};

/// The connection-scaling driver: thousands of monitor connections from
/// one thread (Linux only), multiplexed over [`crate::ClientPool`] —
/// the same epoll shim the server's readiness-loop backend runs on.
///
/// `run_loadgen` spends one OS thread per machine, which is exactly the
/// limitation the scaling experiment measures on the *server* — the
/// client must not hit it first. Here every connection is a small
/// protocol state machine (handshake → paced batches → replies →
/// optional query) driven by the pool's transport events, so a single
/// driver thread sustains 8192 concurrent streams at a fixed aggregate
/// sample rate.
#[cfg(target_os = "linux")]
mod fanin {
    use std::io;
    use std::time::{Duration, Instant};

    use fgcs_wire::{ErrorCode, Frame, SampleLoad, WireSample};

    use crate::pool::{ClientPool, PoolCloseReason, PoolEvent};

    /// Fan-in driver configuration.
    #[derive(Debug, Clone)]
    pub struct FanInConfig {
        /// Concurrent connections to open (one synthetic machine each;
        /// machine id == connection index).
        pub conns: usize,
        /// `SampleBatch` frames each connection sends.
        pub batches_per_conn: u64,
        /// Samples per batch.
        pub batch_size: usize,
        /// Aggregate offered load across *all* connections,
        /// samples/second; 0 = unpaced.
        pub aggregate_samples_per_sec: u64,
        /// Issue a `QueryAvail` after every this many batches (per
        /// connection), measuring reply latency; 0 disables.
        pub query_every_batches: u64,
        /// Horizon for those queries, seconds of trace time.
        pub query_horizon: u64,
        /// Auth token presented as each connection's first frame.
        pub token: Option<String>,
        /// Give up (marking unfinished connections failed) after this
        /// many wall-clock seconds.
        pub deadline_secs: u64,
    }

    impl FanInConfig {
        /// `conns` connections, 4 batches × 32 samples each, unpaced,
        /// no queries, 120 s deadline.
        pub fn new(conns: usize) -> Self {
            FanInConfig {
                conns,
                batches_per_conn: 4,
                batch_size: 32,
                aggregate_samples_per_sec: 0,
                query_every_batches: 0,
                query_horizon: 1_800,
                token: None,
                deadline_secs: 120,
            }
        }
    }

    /// What a fan-in run did and observed. The batch identity is
    /// `acks + busys + error_replies == batches_sent` (client side),
    /// reconciling against the server's `ingested + shed +
    /// decode-rejected` — but only when `conns_failed == 0`: a failed
    /// connection may have a batch in flight with no reply.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct FanInReport {
        /// Connections requested.
        pub conns_requested: usize,
        /// Connections that established TCP.
        pub conns_connected: usize,
        /// Connections that completed every batch (the scaling curve's
        /// "sustained" number).
        pub conns_sustained: usize,
        /// Connections the server refused during the handshake (conn
        /// cap or auth); they sent zero batches.
        pub conns_rejected: usize,
        /// Connections that died after the handshake (should be zero).
        pub conns_failed: usize,
        /// `SampleBatch` frames sent.
        pub batches_sent: u64,
        /// Samples inside those frames.
        pub samples_sent: u64,
        /// `Ack` replies received.
        pub acks: u64,
        /// `Busy` replies received.
        pub busys: u64,
        /// `Error` replies received to sample batches.
        pub error_replies: u64,
        /// `QueryAvail` requests issued.
        pub queries_sent: u64,
        /// `AvailReply`s received.
        pub queries_answered: u64,
        /// `Error` replies received to queries.
        pub query_errors: u64,
        /// Reply latency of every answered query, µs.
        pub query_latencies_us: Vec<u64>,
        /// Wall-clock duration of the run, seconds.
        pub elapsed_secs: f64,
        /// Seconds of `elapsed_secs` spent establishing connections and
        /// sending handshakes, before the paced streaming window began.
        /// Throughput over the streaming window alone is
        /// `samples_sent / (elapsed_secs - connect_secs)` — at
        /// thousands of serial TCP connects the setup phase would
        /// otherwise dominate and flatten any scaling comparison.
        pub connect_secs: f64,
    }

    #[derive(Debug)]
    enum Phase {
        /// `Auth` sent, awaiting `Ack`.
        AwaitAuth,
        /// `QueryStats` probe sent, awaiting `StatsReply`. The probe
        /// forces the server to commit before any batch is sent: a
        /// refused connection (conn cap, bad token) answers — or
        /// closes — here, so rejected connections send zero batches
        /// and the batch identity stays exact.
        AwaitProbe,
        /// Waiting until the pacing deadline to send the next batch.
        Idle,
        /// Batch sent, awaiting `Ack`/`Busy`/`Error`.
        AwaitBatchReply,
        /// `QueryAvail` sent, awaiting its reply.
        AwaitQueryReply { sent_at: Instant },
        /// All batches acknowledged.
        Done,
    }

    /// Per-connection protocol state, indexed by pool slot (the pool
    /// owns the transport: socket, reassembly, write buffering).
    struct SlotState {
        phase: Phase,
        batches_done: u64,
        /// Next sample timestamp for this machine's synthetic stream.
        next_t: u64,
        due: Instant,
    }

    /// Builds the next synthetic batch for a machine: one-minute
    /// samples, light steady load — enough to drive the full decode →
    /// queue → detector path without detector-state churn.
    fn next_batch(machine: u32, state: &mut SlotState, batch_size: usize) -> Frame {
        let samples: Vec<WireSample> = (0..batch_size)
            .map(|i| WireSample {
                t: state.next_t + 60 * i as u64,
                load: SampleLoad::Direct(0.05),
                host_resident_mb: 100,
                alive: true,
            })
            .collect();
        state.next_t += 60 * batch_size as u64;
        Frame::SampleBatch { machine, samples }
    }

    enum Fate {
        Keep,
        Rejected,
        Failed,
        Finished,
    }

    /// Advances one connection's state machine on a received frame.
    fn on_frame(
        slot: usize,
        state: &mut SlotState,
        frame: Frame,
        cfg: &FanInConfig,
        report: &mut FanInReport,
        period: Option<Duration>,
        pool: &mut ClientPool,
    ) -> Fate {
        // A typed handshake rejection (conn cap or bad token) is a
        // rejection, not a failure, whatever phase follows it.
        if let Frame::Error { code, .. } = &frame {
            if matches!(state.phase, Phase::AwaitAuth | Phase::AwaitProbe)
                && matches!(code, ErrorCode::ConnLimit | ErrorCode::Unauthorized)
            {
                return Fate::Rejected;
            }
        }
        match state.phase {
            Phase::AwaitAuth => match frame {
                Frame::Ack { .. } => {
                    state.phase = Phase::AwaitProbe;
                    if pool.send(slot, &Frame::QueryStats) {
                        Fate::Keep
                    } else {
                        Fate::Rejected
                    }
                }
                _ => Fate::Rejected,
            },
            Phase::AwaitProbe => match frame {
                Frame::StatsReply(_) => {
                    state.phase = Phase::Idle;
                    Fate::Keep
                }
                _ => Fate::Rejected,
            },
            Phase::AwaitBatchReply => {
                match frame {
                    Frame::Ack { .. } => report.acks += 1,
                    Frame::Busy { .. } => report.busys += 1,
                    Frame::Error { .. } => report.error_replies += 1,
                    _ => return Fate::Failed,
                }
                state.batches_done += 1;
                if state.batches_done >= cfg.batches_per_conn {
                    state.phase = Phase::Done;
                    return Fate::Finished;
                }
                if cfg.query_every_batches > 0
                    && state.batches_done.is_multiple_of(cfg.query_every_batches)
                {
                    let q = Frame::QueryAvail {
                        machine: slot as u32,
                        horizon: cfg.query_horizon,
                    };
                    report.queries_sent += 1;
                    state.phase = Phase::AwaitQueryReply {
                        sent_at: Instant::now(),
                    };
                    if pool.send(slot, &q) {
                        Fate::Keep
                    } else {
                        Fate::Failed
                    }
                } else {
                    state.phase = Phase::Idle;
                    if let Some(p) = period {
                        state.due += p;
                    }
                    Fate::Keep
                }
            }
            Phase::AwaitQueryReply { sent_at } => {
                match frame {
                    Frame::AvailReply { .. } => {
                        report.queries_answered += 1;
                        report
                            .query_latencies_us
                            .push(sent_at.elapsed().as_micros() as u64);
                    }
                    Frame::Error { .. } => report.query_errors += 1,
                    _ => return Fate::Failed,
                }
                state.phase = Phase::Idle;
                if let Some(p) = period {
                    state.due += p;
                }
                Fate::Keep
            }
            Phase::Idle | Phase::Done => Fate::Failed, // unsolicited frame
        }
    }

    /// Maps a transport close to a protocol fate. A handshake-phase
    /// close is a rejection: the server refused before any batch was
    /// sent (a refusing server's close often arrives as an RST that
    /// races ahead of its typed error frame, so `Err` in the handshake
    /// counts the same as a clean EOF there).
    fn close_fate(state: &SlotState, reason: PoolCloseReason) -> Fate {
        match reason {
            PoolCloseReason::Eof | PoolCloseReason::Err => match state.phase {
                Phase::AwaitAuth | Phase::AwaitProbe => Fate::Rejected,
                Phase::Done if matches!(reason, PoolCloseReason::Eof) => Fate::Finished,
                _ => Fate::Failed,
            },
            PoolCloseReason::Decode => Fate::Failed,
            // The fan-in driver opens slots with the blocking
            // constructor, but classify anyway: a timed-out connect
            // never carried a batch.
            PoolCloseReason::ConnectTimeout => Fate::Rejected,
        }
    }

    /// Runs the fan-in scaling driver against `addr`.
    pub fn run_fanin(addr: &str, cfg: &FanInConfig) -> io::Result<FanInReport> {
        let started = Instant::now();
        let deadline = started + Duration::from_secs(cfg.deadline_secs.max(1));
        let batch_size = cfg.batch_size.max(1);
        // Fixed aggregate rate: each connection sends a batch every
        // `period`, so conns × batch_size / period == the target rate.
        let period = (batch_size as u64)
            .saturating_mul(cfg.conns as u64)
            .saturating_mul(1_000_000_000)
            .checked_div(cfg.aggregate_samples_per_sec)
            .map(Duration::from_nanos);
        let mut report = FanInReport {
            conns_requested: cfg.conns,
            ..Default::default()
        };

        let mut pool = ClientPool::connect(addr, cfg.conns)?;
        report.conns_connected = pool.open_count();
        report.conns_rejected = cfg.conns - pool.open_count();

        let mut states: Vec<Option<SlotState>> = Vec::with_capacity(cfg.conns);
        for slot in 0..cfg.conns {
            if !pool.is_open(slot) {
                states.push(None);
                continue;
            }
            let mut state = SlotState {
                phase: Phase::AwaitProbe,
                batches_done: 0,
                next_t: 0,
                due: started,
            };
            let first = match &cfg.token {
                Some(token) => {
                    state.phase = Phase::AwaitAuth;
                    Frame::Auth {
                        token: token.clone(),
                    }
                }
                None => Frame::QueryStats,
            };
            if !pool.send(slot, &first) {
                report.conns_rejected += 1;
                states.push(None);
                continue;
            }
            states.push(Some(state));
        }

        // Stagger first-send deadlines across one period so the
        // aggregate rate is flat, not conns-sized bursts. Re-based
        // *after* the connect loop: at thousands of connections the
        // serial connects take longer than a period, and dues anchored
        // at `started` would all be past — one thundering burst.
        let t0 = Instant::now();
        report.connect_secs = (t0 - started).as_secs_f64();
        if let Some(p) = period {
            for (slot, state) in states.iter_mut().enumerate() {
                if let Some(s) = state {
                    s.due = t0 + p * slot as u32 / cfg.conns as u32;
                }
            }
        }

        let mut open = states.iter().filter(|s| s.is_some()).count();
        let mut events: Vec<PoolEvent> = Vec::new();

        while open > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // Fire every idle connection whose pacing deadline passed.
            let mut next_due: Option<Instant> = None;
            for slot in 0..states.len() {
                let Some(state) = states[slot].as_mut() else {
                    continue;
                };
                if !matches!(state.phase, Phase::Idle) {
                    continue;
                }
                if state.due <= now {
                    let batch = next_batch(slot as u32, state, batch_size);
                    report.batches_sent += 1;
                    report.samples_sent += batch_size as u64;
                    state.phase = Phase::AwaitBatchReply;
                    if !pool.send(slot, &batch) {
                        report.conns_failed += 1;
                        states[slot] = None;
                        open -= 1;
                    }
                } else {
                    next_due = Some(next_due.map_or(state.due, |d: Instant| d.min(state.due)));
                }
            }
            let timeout_ms = match next_due {
                Some(d) => (d.saturating_duration_since(now).as_millis() as i32).clamp(0, 50),
                None => 50,
            };
            pool.poll(timeout_ms, &mut events)?;
            for ev in events.drain(..) {
                let (slot, fate) = match ev {
                    // Blocking connects: slots are established before
                    // the loop, so no Connected events arrive here.
                    PoolEvent::Connected { .. } => continue,
                    PoolEvent::Frame { slot, frame } => {
                        let Some(state) = states[slot].as_mut() else {
                            continue; // slot already resolved this drain
                        };
                        (
                            slot,
                            on_frame(slot, state, frame, cfg, &mut report, period, &mut pool),
                        )
                    }
                    PoolEvent::Closed { slot, reason } => {
                        let Some(state) = states[slot].as_ref() else {
                            continue;
                        };
                        (slot, close_fate(state, reason))
                    }
                };
                match fate {
                    Fate::Keep => {}
                    Fate::Rejected => {
                        report.conns_rejected += 1;
                        pool.close(slot);
                        states[slot] = None;
                        open -= 1;
                    }
                    Fate::Failed => {
                        report.conns_failed += 1;
                        pool.close(slot);
                        states[slot] = None;
                        open -= 1;
                    }
                    Fate::Finished => {
                        report.conns_sustained += 1;
                        pool.close(slot);
                        states[slot] = None;
                        open -= 1;
                    }
                }
            }
        }
        // Deadline hit with connections still open: they failed.
        for slot in 0..states.len() {
            if states[slot].is_some() {
                report.conns_failed += 1;
                pool.close(slot);
                states[slot] = None;
            }
        }
        report.elapsed_secs = started.elapsed().as_secs_f64();
        Ok(report)
    }
}
