//! Server-side state: per-machine detector pipelines, the bounded
//! ingest queue, and the shared counters behind the `Stats` frame.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use fgcs_core::model::AvailState;
use fgcs_core::monitor::{Monitor, Observation, ResourceProbe};
use fgcs_predict::OnlineAvailabilityModel;
use fgcs_testbed::{OccurrenceRecorder, TraceRecord};
use fgcs_wire::{MachineStat, ReplEntry, SampleLoad, StatsPayload, WireSample, WireTransition};

use crate::repl::{ReplLog, ROLE_FOLLOWER, ROLE_PRIMARY};
use crate::server::ServiceConfig;
use crate::snapshot::{self, MachineSnapshot, SnapshotData, SnapshotSink};

/// A queued sample batch.
#[derive(Debug)]
pub(crate) struct Batch {
    pub machine: u32,
    pub samples: Vec<WireSample>,
}

/// Bounded multi-machine FIFO. Two invariants matter:
///
/// * **Per-machine order.** A worker claims *all* queued batches of one
///   machine at once and the machine is marked busy until it finishes,
///   so two workers can never interleave one machine's samples — the
///   detector requires non-decreasing timestamps.
/// * **Shed oldest first.** On overflow the globally oldest queued
///   batch is dropped (and returned for accounting); the arriving batch
///   is always accepted. Old samples describe state the detector has
///   already moved past; the freshest data is the most valuable.
#[derive(Debug)]
pub(crate) struct IngestQueue {
    cap: usize,
    total: usize,
    /// Machine id per queued batch, in global arrival order.
    order: VecDeque<u32>,
    per_machine: BTreeMap<u32, VecDeque<Batch>>,
    /// Machines currently claimed by a worker.
    busy: BTreeSet<u32>,
}

impl IngestQueue {
    pub(crate) fn new(cap: usize) -> Self {
        IngestQueue {
            cap: cap.max(1),
            total: 0,
            order: VecDeque::new(),
            per_machine: BTreeMap::new(),
            busy: BTreeSet::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.total
    }

    /// Enqueues a batch; if the queue was full, sheds and returns the
    /// oldest queued batch.
    pub(crate) fn push(&mut self, batch: Batch) -> Option<Batch> {
        let shed = if self.total >= self.cap {
            let victim = self
                .order
                .pop_front()
                .expect("full queue has an order entry");
            let q = self
                .per_machine
                .get_mut(&victim)
                .expect("order entry has a batch");
            let b = q.pop_front().expect("order entry has a batch");
            if q.is_empty() {
                self.per_machine.remove(&victim);
            }
            self.total -= 1;
            Some(b)
        } else {
            None
        };
        self.order.push_back(batch.machine);
        self.per_machine
            .entry(batch.machine)
            .or_default()
            .push_back(batch);
        self.total += 1;
        shed
    }

    /// Claims the first machine (in arrival order) not already being
    /// drained, removing *all* its queued batches and marking it busy.
    /// Returns `None` if every queued machine is busy (or the queue is
    /// empty).
    pub(crate) fn claim(&mut self) -> Option<(u32, VecDeque<Batch>)> {
        let machine = self
            .order
            .iter()
            .copied()
            .find(|m| !self.busy.contains(m))?;
        let batches = self
            .per_machine
            .remove(&machine)
            .expect("ordered machine has batches");
        self.total -= batches.len();
        self.order.retain(|&m| m != machine);
        self.busy.insert(machine);
        Some((machine, batches))
    }

    /// Releases a machine claimed by [`IngestQueue::claim`].
    pub(crate) fn finish(&mut self, machine: u32) {
        self.busy.remove(&machine);
    }
}

/// Probe adapter turning a counter-level [`WireSample`] into one
/// `ResourceProbe` read, so remote counter streams run through the same
/// `Monitor` (baseline diffs, reset absorption) as local ones.
struct WireProbe {
    busy: u64,
    total: u64,
    free_mem_mb: u32,
    alive: bool,
}

impl ResourceProbe for WireProbe {
    fn cpu_counters(&self) -> (u64, u64) {
        (self.busy, self.total)
    }

    fn free_mem_for_guest_mb(&self) -> u32 {
        self.free_mem_mb
    }

    fn service_alive(&self) -> bool {
        self.alive
    }
}

/// One machine's ingest pipeline: monitor → recorder (detector +
/// occurrence records) → transition log.
#[derive(Debug)]
pub(crate) struct MachineState {
    monitor: Monitor,
    recorder: OccurrenceRecorder,
    transitions: Vec<WireTransition>,
    last_t: Option<u64>,
    pub(crate) out_of_order: u64,
    /// Sequence for the next transition. A dedicated counter (not
    /// `transitions.len() + 1`): it is persisted in snapshots, so seqs
    /// keep climbing monotonically across a restart instead of
    /// restarting at 1 and colliding with what clients already saw.
    next_seq: u64,
    /// Newest replication-log seq applied to (primary: stamped onto)
    /// this machine, persisted in snapshots. The exactly-once guard:
    /// a restoring or resyncing node skips any pulled entry at or
    /// below this stamp (DESIGN.md §13).
    pub(crate) last_repl_seq: u64,
}

impl MachineState {
    fn new(machine: u32, cfg: &ServiceConfig) -> Self {
        MachineState {
            monitor: Monitor::new(),
            recorder: OccurrenceRecorder::new(machine, cfg.detector),
            transitions: Vec::new(),
            last_t: None,
            out_of_order: 0,
            next_seq: 1,
            last_repl_seq: 0,
        }
    }

    /// Captures everything this pipeline needs to resume after a
    /// restart.
    pub(crate) fn snapshot(&self, machine: u32) -> MachineSnapshot {
        MachineSnapshot {
            machine,
            monitor: self.monitor.snapshot(),
            recorder: self.recorder.snapshot(),
            last_t: self.last_t,
            out_of_order: self.out_of_order,
            next_seq: self.next_seq,
            last_repl_seq: self.last_repl_seq,
            records: self.recorder.records().to_vec(),
            transitions: self.transitions.clone(),
        }
    }

    /// Rebuilds a pipeline from a snapshot, validating it against the
    /// current detector config. The caller applies snapshots
    /// all-or-nothing: a single failing machine rejects the whole file.
    pub(crate) fn restore(cfg: &ServiceConfig, snap: MachineSnapshot) -> Result<Self, String> {
        if snap
            .transitions
            .last()
            .is_some_and(|t| snap.next_seq <= t.seq)
        {
            return Err(format!(
                "machine {}: next_seq {} would reuse a persisted seq",
                snap.machine, snap.next_seq
            ));
        }
        let recorder = OccurrenceRecorder::restore(cfg.detector, &snap.recorder, snap.records)
            .map_err(|e| format!("machine {}: {e}", snap.machine))?;
        Ok(MachineState {
            monitor: Monitor::restore(snap.monitor),
            recorder,
            transitions: snap.transitions,
            last_t: snap.last_t,
            out_of_order: snap.out_of_order,
            next_seq: snap.next_seq,
            last_repl_seq: snap.last_repl_seq,
        })
    }

    /// Feeds one wire sample. Returns the starts of any unavailability
    /// occurrences this sample triggered (for the online model).
    fn ingest_sample(&mut self, cfg: &ServiceConfig, s: &WireSample) -> Vec<u64> {
        // The detector requires non-decreasing timestamps; late
        // deliveries are discarded and counted, as in the supervised
        // testbed tracer.
        if self.last_t.is_some_and(|lt| s.t < lt) {
            self.out_of_order += 1;
            return Vec::new();
        }
        self.last_t = Some(s.t);

        let free_mem_mb = cfg.free_for_guest_mb(s.host_resident_mb);
        let obs = match s.load {
            SampleLoad::Direct(host_load) => {
                if s.alive {
                    Observation {
                        host_load,
                        free_mem_mb,
                        alive: true,
                    }
                } else {
                    Observation::dead()
                }
            }
            SampleLoad::Counters { busy, total } => self.monitor.sample(&WireProbe {
                busy,
                total,
                free_mem_mb,
                alive: s.alive,
            }),
        };

        let before = self.recorder.state();
        let step = self.recorder.observe(s.t, &obs);
        if step.state != before {
            self.transitions.push(WireTransition {
                seq: self.next_seq,
                at: s.t,
                state: step.state.code(),
            });
            self.next_seq += 1;
        }
        step.edges
            .iter()
            .filter_map(|e| match *e {
                fgcs_core::detector::EventEdge::Started { at, .. } => Some(at),
                _ => None,
            })
            .collect()
    }

    pub(crate) fn state(&self) -> AvailState {
        self.recorder.state()
    }

    pub(crate) fn is_available(&self) -> bool {
        self.recorder.is_available()
    }

    pub(crate) fn spike_active(&self) -> bool {
        self.recorder.spike_active()
    }

    pub(crate) fn last_t(&self) -> u64 {
        self.last_t.unwrap_or(0)
    }

    pub(crate) fn last_t_opt(&self) -> Option<u64> {
        self.last_t
    }

    /// The transition-seq counter, exposed for the replication
    /// divergence tripwires (`ReplEntry::next_seq_after`).
    pub(crate) fn next_transition_seq(&self) -> u64 {
        self.next_seq
    }

    pub(crate) fn records(&self) -> &[TraceRecord] {
        self.recorder.records()
    }

    pub(crate) fn transitions(&self) -> &[WireTransition] {
        &self.transitions
    }
}

/// The accounting counters behind the `Stats` frame, as plain values.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CounterValues {
    pub ingested_batches: u64,
    pub ingested_samples: u64,
    pub shed_batches: u64,
    pub shed_samples: u64,
    pub decode_errors: u64,
    pub busy_replies: u64,
    pub queries_answered: u64,
    pub placements_answered: u64,
    /// Streams rejected by the auth gate (not part of `StatsPayload`:
    /// the reject happens before the stream is trusted).
    pub auth_rejects: u64,
    /// Connections refused at the cap with `Error { ConnLimit }`.
    pub conn_rejects: u64,
}

impl CounterValues {
    /// Field-wise sum, for folding per-slot counters on read.
    fn accumulate(&mut self, o: &CounterValues) {
        self.ingested_batches += o.ingested_batches;
        self.ingested_samples += o.ingested_samples;
        self.shed_batches += o.shed_batches;
        self.shed_samples += o.shed_samples;
        self.decode_errors += o.decode_errors;
        self.busy_replies += o.busy_replies;
        self.queries_answered += o.queries_answered;
        self.placements_answered += o.placements_answered;
        self.auth_rejects += o.auth_rejects;
        self.conn_rejects += o.conn_rejects;
    }
}

/// Contention statistics for one instrumented lock category. All
/// relaxed atomics: the numbers feed the X12 contention table, not any
/// control flow.
#[derive(Debug, Default)]
pub(crate) struct LockStats {
    /// Total lock acquisitions through [`lock_timed`].
    pub acquisitions: AtomicU64,
    /// Acquisitions that found the lock held (`try_lock` failed).
    pub contended: AtomicU64,
    /// Nanoseconds spent blocked on contended acquisitions.
    pub wait_ns: AtomicU64,
}

impl LockStats {
    pub(crate) fn values(&self) -> (u64, u64, u64) {
        (
            self.acquisitions.load(Ordering::Relaxed),
            self.contended.load(Ordering::Relaxed),
            self.wait_ns.load(Ordering::Relaxed),
        )
    }
}

/// Locks a mutex while charging the acquisition to `stats`: an
/// uncontended `try_lock` costs two relaxed increments; only the
/// contended path reads the clock (twice), so instrumentation adds
/// nothing measurable to an uncontended hot path.
pub(crate) fn lock_timed<'a, T>(
    m: &'a Mutex<T>,
    stats: &LockStats,
) -> std::sync::MutexGuard<'a, T> {
    stats.acquisitions.fetch_add(1, Ordering::Relaxed);
    match m.try_lock() {
        Ok(g) => g,
        Err(std::sync::TryLockError::WouldBlock) => {
            stats.contended.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let g = m.lock().unwrap();
            stats
                .wait_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            g
        }
        Err(std::sync::TryLockError::Poisoned(e)) => panic!("poisoned lock: {e}"),
    }
}

/// The instrumented lock categories of [`Shared`] (the counters track
/// their own stats inside [`Counters`]). Per category, not per mutex:
/// all 16 shard-map locks fold into `shards`, every machine cell into
/// `machines` — the question the X12 table answers is "which *kind* of
/// lock still costs time", not which instance.
#[derive(Debug, Default)]
pub(crate) struct LockStatsSet {
    /// The global online-model mutex (the one remaining shared hot-path
    /// lock in the multi-loop backend).
    pub online: LockStats,
    /// The bounded ingest queue (threaded backend hot path; idle under
    /// the epoll backend, which ingests loop-locally).
    pub queue: LockStats,
    /// Per-machine pipeline cells, ingest path only.
    pub machines: LockStats,
    /// Shard map locks (machine-id → cell lookup).
    pub shards: LockStats,
}

/// How many counter slots to allocate at minimum; covers every event
/// loop plus the checkpointer and stats readers without collisions at
/// the loop counts the experiments run (≤ 8).
const COUNTER_SLOT_FLOOR: usize = 16;

/// Returns this thread's counter-slot index in `0..n`. Threads get
/// distinct slots round-robin on first use, so as long as at most `n`
/// threads ever touch the counters (true for the epoll backend: one
/// slot per loop) no two threads share a slot; beyond that (threaded
/// backend with many conn threads) slots are shared and the mutex per
/// slot keeps updates atomic.
fn thread_slot(n: usize) -> usize {
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    SLOT.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            s.set(v);
        }
        v
    }) % n
}

/// One counter slot, padded to a cache line so two loops bumping
/// adjacent slots don't false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CounterSlot(Mutex<CounterValues>);

/// Monotone counters behind the `Stats` frame, sliced into per-thread
/// slots folded on read.
///
/// A mutex (per slot) instead of relaxed atomics: a shed event bumps
/// three counters at once, and with independent atomics a concurrent
/// stats read could observe the batch shed but not its samples (a torn
/// snapshot). Slotting restores what the single lock took away: each
/// event loop lands in its own slot (see [`thread_slot`]), so loops
/// never serialize on a shared counter lock during ingest, while
/// [`Counters::snapshot`] holds *all* slot locks at once — the fold is
/// still a consistent set, which the on-disk snapshots rely on.
#[derive(Debug)]
pub(crate) struct Counters {
    slots: Box<[CounterSlot]>,
    stats: LockStats,
}

impl Default for Counters {
    fn default() -> Self {
        Counters::new(COUNTER_SLOT_FLOOR)
    }
}

impl Counters {
    pub(crate) fn new(slots: usize) -> Self {
        let n = slots.max(COUNTER_SLOT_FLOOR);
        Counters {
            slots: (0..n).map(|_| CounterSlot::default()).collect(),
            stats: LockStats::default(),
        }
    }

    /// Applies one atomic update to this thread's counter slot.
    pub(crate) fn update<R>(&self, f: impl FnOnce(&mut CounterValues) -> R) -> R {
        let slot = &self.slots[thread_slot(self.slots.len())];
        f(&mut lock_timed(&slot.0, &self.stats))
    }

    /// A consistent fold of all slots: every slot lock is held
    /// simultaneously (acquired in index order, so concurrent snapshots
    /// can't deadlock; updaters only ever hold one), which means no
    /// multi-counter update can be observed half-applied.
    pub(crate) fn snapshot(&self) -> CounterValues {
        let guards: Vec<_> = self.slots.iter().map(|s| s.0.lock().unwrap()).collect();
        let mut sum = CounterValues::default();
        for g in &guards {
            sum.accumulate(g);
        }
        sum
    }

    /// Replaces the entire counter set (snapshot restore): the restored
    /// values land in slot 0, every other slot is zeroed, all under
    /// simultaneously-held locks.
    pub(crate) fn set_all(&self, values: CounterValues) {
        let mut guards: Vec<_> = self.slots.iter().map(|s| s.0.lock().unwrap()).collect();
        for g in guards.iter_mut() {
            **g = CounterValues::default();
        }
        *guards[0] = values;
    }

    /// Contention stats for the slot locks.
    pub(crate) fn lock_stats(&self) -> &LockStats {
        &self.stats
    }
}

/// One shard of the per-machine state map.
type StateShard = Mutex<BTreeMap<u32, Arc<Mutex<MachineState>>>>;

/// Everything the accept loop, connection threads and ingest workers
/// share.
pub(crate) struct Shared {
    pub cfg: ServiceConfig,
    /// Per-machine pipelines, sharded by machine id so ingest workers
    /// and query handlers touching different machines stop serializing
    /// on one map lock (DESIGN.md §10). Deterministic read paths
    /// (stats, placement) re-sort by id after collecting across shards.
    shards: Box<[StateShard]>,
    pub online: Mutex<OnlineAvailabilityModel>,
    pub queue: Mutex<IngestQueue>,
    pub queue_cv: Condvar,
    pub shutdown: AtomicBool,
    pub counters: Counters,
    /// Contention instrumentation for the remaining shared locks.
    pub locks: LockStatsSet,
    /// Batches accepted (Ack'd) by one event loop but still in flight
    /// on a cross-loop forwarding ring. Counted into `queue_depth` so
    /// "queue empty" keeps meaning "everything accepted is ingested"
    /// under the multi-loop backend too.
    pub pending_forwarded: AtomicU64,
    /// Resolved event-loop count (1 for the threaded backend); the
    /// divisor of the shard→loop ownership map.
    pub event_loops: usize,
    /// Connections currently served (threaded backend: live conn
    /// threads; epoll backend: registered conn fds). Stays a plain
    /// atomic — it is instantaneous occupancy, not accounting.
    pub active_conns: AtomicU64,
    pub started_at: Instant,
    /// Serving time accumulated by previous lives of this server
    /// (restored from snapshot), so `ingest_rate` spans restarts.
    /// Atomic because a runtime snapshot install (follower resync)
    /// rewrites it through `&self`.
    prior_elapsed_ms: AtomicU64,
    /// Where periodic and shutdown checkpoints go; `None` disables
    /// snapshotting entirely.
    snapshots: Option<SnapshotSink>,
    /// The replication seq log (capacity 0 when replication is off).
    pub(crate) repl: ReplLog,
    /// Replication role: `ROLE_PRIMARY` or `ROLE_FOLLOWER`. A follower
    /// rejects `SampleBatch` with `NotPrimary` and runs the pull loop;
    /// `Promote` flips this exactly once.
    role: AtomicU8,
    /// Set when the pull loop hit a divergence tripwire and stopped —
    /// the node keeps answering queries from its frozen state but must
    /// never be promoted.
    pub(crate) repl_failed: AtomicBool,
    /// Fencing epoch (DESIGN.md §13.5). Every node starts at 1; a
    /// promotion allocates `max(observed) + 1`, and a node that sees a
    /// strictly higher epoch on an incoming `ReplPull` demotes itself —
    /// a paused-then-revived primary is fenced to `NotPrimary` instead
    /// of splitting the brain. Persisted in snapshots.
    epoch: AtomicU64,
    /// The newest primary log head a follower's pull loop has observed
    /// (`ReplEntries::head_seq`). Own applied head versus this is the
    /// staleness bound follower reads are gated on; 0 until the first
    /// successful pull.
    pub(crate) primary_head_seen: AtomicU64,
}

impl Shared {
    /// Builds the shared state, restoring from the newest usable
    /// snapshot when `cfg.snapshot_dir` is set. Restore happens here —
    /// before the caller binds the listener — so early client traffic
    /// can never race the restore with fresh machine state.
    pub(crate) fn new(cfg: ServiceConfig) -> io::Result<Self> {
        let queue = IngestQueue::new(cfg.queue_capacity);
        let online = OnlineAvailabilityModel::new(cfg.start_weekday);
        let n_shards = cfg.state_shards();
        let shards: Box<[StateShard]> =
            (0..n_shards).map(|_| Mutex::new(BTreeMap::new())).collect();
        let snapshots = match &cfg.snapshot_dir {
            Some(dir) => Some(SnapshotSink::new(Path::new(dir), cfg.snapshot_interval_ms)?),
            None => None,
        };
        let event_loops = cfg.resolved_event_loops().max(1);
        let role = if cfg.follower_of.is_some() {
            ROLE_FOLLOWER
        } else {
            ROLE_PRIMARY
        };
        let repl = ReplLog::new(cfg.repl_capacity());
        let shared = Shared {
            shards,
            online: Mutex::new(online),
            queue: Mutex::new(queue),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::new(event_loops),
            locks: LockStatsSet::default(),
            pending_forwarded: AtomicU64::new(0),
            event_loops,
            active_conns: AtomicU64::new(0),
            started_at: Instant::now(),
            prior_elapsed_ms: AtomicU64::new(0),
            snapshots,
            repl,
            role: AtomicU8::new(role),
            repl_failed: AtomicBool::new(false),
            epoch: AtomicU64::new(1),
            primary_head_seen: AtomicU64::new(0),
            cfg,
        };
        if let Some(dir) = shared.cfg.snapshot_dir.clone() {
            if let Some(data) = snapshot::load_latest(Path::new(&dir)) {
                if let Err(e) = shared.install_snapshot(data) {
                    // A snapshot that parsed but doesn't fit the current
                    // config (e.g. a changed detector) — start fresh
                    // rather than guess.
                    eprintln!("fgcs-service: snapshot not applicable, starting fresh: {e}");
                }
            }
        }
        Ok(shared)
    }

    /// Applies a parsed snapshot all-or-nothing: every machine is
    /// rebuilt and validated before anything is installed. Works
    /// through `&self` so a follower can install a snapshot-resync
    /// pulled from its primary at runtime (DESIGN.md §13) — existing
    /// state is discarded shard by shard, so concurrent queries may
    /// briefly see a mix of old and new machines mid-install; a node
    /// being resynced was serving stale state anyway.
    pub(crate) fn install_snapshot(&self, data: SnapshotData) -> Result<(), String> {
        let repl_floor = data.repl_seq;
        let mut restored: Vec<(u32, MachineState)> = Vec::with_capacity(data.machines.len());
        for snap in data.machines {
            let machine = snap.machine;
            restored.push((machine, MachineState::restore(&self.cfg, snap)?));
        }
        // The online model is not persisted: it is rebuilt exactly from
        // the restored occurrence records (each record start is one
        // Started edge) plus the latest observed time. This matches the
        // streamed model bit for bit — pinned by a fgcs-predict test.
        let mut online = OnlineAvailabilityModel::new(self.cfg.start_weekday);
        let mut horizon = None;
        for (id, st) in &restored {
            online.ensure_machine(*id);
            for r in st.records() {
                online.record_event(*id, r.start);
            }
            if let Some(t) = st.last_t_opt() {
                horizon = Some(horizon.map_or(t, |h: u64| h.max(t)));
            }
        }
        if let Some(h) = horizon {
            online.observe_time(h);
        }
        let max_stamp = restored
            .iter()
            .map(|(_, st)| st.last_repl_seq)
            .max()
            .unwrap_or(0);
        for shard in self.shards.iter() {
            lock_timed(shard, &self.locks.shards).clear();
        }
        for (id, st) in restored {
            let shard = &self.shards[id as usize % self.shards.len()];
            shard.lock().unwrap().insert(id, Arc::new(Mutex::new(st)));
        }
        *self.online.lock().unwrap() = online;
        self.counters.set_all(data.counters);
        self.prior_elapsed_ms
            .store(data.elapsed_ms, Ordering::Release);
        // Epochs only move forward: a restored snapshot (or a resync
        // pulled from the primary) can raise ours, never lower it.
        self.observe_epoch(data.epoch);
        if self.is_primary() {
            // A restarted primary must never re-allocate a seq some
            // machine cell already carries (the snapshot header is a
            // floor: stamps above it come from entries logged while
            // the snapshot was being collected).
            self.repl.raise_next(repl_floor.max(max_stamp) + 1);
        } else {
            // A follower resumes pulling just past the snapshot's
            // floor; entries in (floor, max_stamp] that some machines
            // already contain are skipped by their per-machine stamp.
            self.repl.reset_to(repl_floor);
        }
        Ok(())
    }

    /// Total serving time across all lives of this server, in ms.
    fn elapsed_ms(&self) -> u64 {
        self.prior_elapsed_ms.load(Ordering::Acquire) + self.started_at.elapsed().as_millis() as u64
    }

    /// Collects a complete snapshot of the current state. Machines are
    /// captured one at a time under their own locks (per-machine
    /// consistency); the counters are copied under their single lock, so
    /// they are mutually consistent as a set.
    ///
    /// The replication floor is read **before** any machine is
    /// captured: log append/apply and the machine mutation share the
    /// machine's critical section, so every entry at or below the head
    /// observed here is fully contained in the captures that follow.
    /// Entries above the floor may be partially contained; a restoring
    /// node resumes pulling just past the floor and the per-machine
    /// `last_repl_seq` stamps skip exactly the contained overlap.
    pub(crate) fn collect_snapshot(&self) -> SnapshotData {
        let repl_seq = self.repl.head_seq();
        let machines = self
            .machines_sorted()
            .into_iter()
            .map(|(id, cell)| cell.lock().unwrap().snapshot(id))
            .collect();
        SnapshotData {
            elapsed_ms: self.elapsed_ms(),
            repl_seq,
            epoch: self.epoch(),
            counters: self.counters.snapshot(),
            machines,
        }
    }

    /// Periodic checkpoint hook — called from the dedicated
    /// checkpointer thread (both backends; event loops never block on
    /// snapshot I/O). The sink's single mutex gates the interval and
    /// serializes writers. A write failure is logged, never fatal.
    pub(crate) fn checkpoint_if_due(&self) {
        let Some(sink) = &self.snapshots else { return };
        if let Err(e) = sink.maybe_write(|| self.collect_snapshot()) {
            eprintln!("fgcs-service: checkpoint failed: {e}");
        }
    }

    /// Unconditional final checkpoint, for graceful shutdown.
    pub(crate) fn checkpoint_final(&self) {
        let Some(sink) = &self.snapshots else { return };
        if let Err(e) = sink.write_now(&self.collect_snapshot()) {
            eprintln!("fgcs-service: final checkpoint failed: {e}");
        }
    }

    /// Whether snapshotting is enabled.
    pub(crate) fn snapshots_enabled(&self) -> bool {
        self.snapshots.is_some()
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Whether this node currently accepts `SampleBatch` ingest.
    pub(crate) fn is_primary(&self) -> bool {
        self.role.load(Ordering::Acquire) == ROLE_PRIMARY
    }

    /// The wire role code (`ReplStatusReply::role`).
    pub(crate) fn role_code(&self) -> u8 {
        self.role.load(Ordering::Acquire)
    }

    /// Promotes a follower to primary (idempotent). The pull loop
    /// observes the flip and exits; the allocation cursor is raised
    /// past every stamp any machine carries so the new primary can
    /// never re-allocate an applied seq, and the epoch is bumped past
    /// everything observed so the old primary can be fenced.
    pub(crate) fn promote(&self) {
        if self.role.swap(ROLE_PRIMARY, Ordering::AcqRel) == ROLE_PRIMARY {
            return;
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let max_stamp = self
            .machines_sorted()
            .into_iter()
            .map(|(_, cell)| cell.lock().unwrap().last_repl_seq)
            .max()
            .unwrap_or(0);
        self.repl.raise_next(max_stamp + 1);
    }

    /// The node's current fencing epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Adopts a higher epoch observed on the wire (monotone max, e.g.
    /// from a primary's `ReplEntries`), without any role change.
    pub(crate) fn observe_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// The fencing write: an incoming `ReplPull` carrying a strictly
    /// higher epoch proves a newer primary exists. Adopt the epoch,
    /// and if this node still thought it was a primary, demote it —
    /// ingest flips to `NotPrimary` before this call returns, so a
    /// revived pre-failover primary can never double-count a batch.
    /// Returns `true` when a demotion happened.
    pub(crate) fn fence_if_superseded(&self, peer_epoch: u64) -> bool {
        if peer_epoch <= self.epoch.load(Ordering::Acquire) {
            return false;
        }
        self.epoch.fetch_max(peer_epoch, Ordering::AcqRel);
        self.role.swap(ROLE_FOLLOWER, Ordering::AcqRel) == ROLE_PRIMARY
    }

    fn shard(&self, machine: u32) -> &StateShard {
        &self.shards[machine as usize % self.shards.len()]
    }

    /// Which event loop owns a machine's shard. Shards are partitioned
    /// round-robin across loops (`shard % loops`), so every loop owns
    /// `shards/loops` of them exclusively; a connection whose batch
    /// lands on a non-owning loop forwards it to the home loop instead
    /// of locking across loops.
    pub(crate) fn home_loop(&self, machine: u32) -> usize {
        (machine as usize % self.shards.len()) % self.event_loops
    }

    /// The online-model lock, instrumented.
    pub(crate) fn lock_online(&self) -> std::sync::MutexGuard<'_, OnlineAvailabilityModel> {
        lock_timed(&self.online, &self.locks.online)
    }

    /// The ingest-queue lock, instrumented.
    pub(crate) fn lock_queue(&self) -> std::sync::MutexGuard<'_, IngestQueue> {
        lock_timed(&self.queue, &self.locks.queue)
    }

    /// Looks up (or creates) the state cell for a machine.
    pub(crate) fn machine_entry(&self, machine: u32) -> Arc<Mutex<MachineState>> {
        let mut map = lock_timed(self.shard(machine), &self.locks.shards);
        if let Some(m) = map.get(&machine) {
            return Arc::clone(m);
        }
        let m = Arc::new(Mutex::new(MachineState::new(machine, &self.cfg)));
        map.insert(machine, Arc::clone(&m));
        drop(map);
        self.lock_online().ensure_machine(machine);
        m
    }

    /// Looks up a machine without creating it.
    pub(crate) fn machine_get(&self, machine: u32) -> Option<Arc<Mutex<MachineState>>> {
        lock_timed(self.shard(machine), &self.locks.shards)
            .get(&machine)
            .map(Arc::clone)
    }

    /// Every known machine, sorted by id — the same order the single
    /// pre-shard BTreeMap used to iterate in, so stats and placement
    /// stay deterministic (lowest id wins ties).
    pub(crate) fn machines_sorted(&self) -> Vec<(u32, Arc<Mutex<MachineState>>)> {
        let mut all: Vec<(u32, Arc<Mutex<MachineState>>)> = Vec::new();
        for shard in self.shards.iter() {
            let map = lock_timed(shard, &self.locks.shards);
            all.extend(map.iter().map(|(&id, cell)| (id, Arc::clone(cell))));
        }
        all.sort_unstable_by_key(|&(id, _)| id);
        all
    }

    /// Ingests one claimed batch into its machine's pipeline and the
    /// online model. Called from ingest workers (threaded backend) or
    /// the machine's home event loop (epoll backend) only.
    pub(crate) fn ingest_batch(&self, batch: &Batch) {
        if self.cfg.ingest_delay_us > 0 {
            // Artificial per-batch cost, used by overload tests to pin
            // the server's ingest capacity below the offered load.
            std::thread::sleep(std::time::Duration::from_micros(self.cfg.ingest_delay_us));
        }
        let cell = self.machine_entry(batch.machine);
        let mut started = Vec::new();
        let mut max_t = None;
        {
            let mut m = lock_timed(&cell, &self.locks.machines);
            for s in &batch.samples {
                started.extend(m.ingest_sample(&self.cfg, s));
                max_t = Some(max_t.map_or(s.t, |t: u64| t.max(s.t)));
            }
            if self.repl.enabled() && self.is_primary() {
                // Seq allocation nests the log lock inside the machine
                // lock (machine → log, the fixed order), so log order
                // equals seq order and the stamp lands in the same
                // critical section as the mutation it describes.
                let seq = self.repl.append_local(
                    batch.machine,
                    batch.samples.clone(),
                    m.last_t(),
                    m.next_transition_seq(),
                );
                m.last_repl_seq = seq;
            }
        }
        self.finish_ingest(batch.machine, batch.samples.len(), started, max_t);
    }

    /// The post-machine-lock half of ingest: online-model updates
    /// (under the model's own lock) and the accounting counters.
    fn finish_ingest(&self, machine: u32, n_samples: usize, started: Vec<u64>, max_t: Option<u64>) {
        let mut online = self.lock_online();
        if let Some(t) = max_t {
            online.observe_time(t);
        }
        for at in started {
            online.record_event(machine, at);
        }
        drop(online);
        self.counters.update(|c| {
            c.ingested_batches += 1;
            c.ingested_samples += n_samples as u64;
        });
    }

    /// Applies one pulled replication entry (follower side): replays
    /// the raw samples through the normal ingest path, stamps the
    /// machine, mirrors the entry into this node's own log, and
    /// asserts the divergence tripwires. An entry at or below the
    /// machine's stamp is a duplicate delivery and skipped whole —
    /// only the log cursor advances. Errors are fatal to replication.
    pub(crate) fn apply_repl_entry(&self, entry: &ReplEntry) -> Result<(), String> {
        let cell = self.machine_entry(entry.machine);
        let mut started = Vec::new();
        let mut max_t = None;
        let mut applied = false;
        {
            let mut m = lock_timed(&cell, &self.locks.machines);
            if entry.seq > m.last_repl_seq {
                for s in &entry.samples {
                    started.extend(m.ingest_sample(&self.cfg, s));
                    max_t = Some(max_t.map_or(s.t, |t: u64| t.max(s.t)));
                }
                m.last_repl_seq = entry.seq;
                if m.last_t() != entry.last_t_after
                    || m.next_transition_seq() != entry.next_seq_after
                {
                    return Err(format!(
                        "machine {} seq {}: cursors landed at last_t {} / next_seq {}, \
                         primary had {} / {}",
                        entry.machine,
                        entry.seq,
                        m.last_t(),
                        m.next_transition_seq(),
                        entry.last_t_after,
                        entry.next_seq_after
                    ));
                }
                applied = true;
            }
            self.repl.append_remote(entry)?;
        }
        if applied {
            self.finish_ingest(entry.machine, entry.samples.len(), started, max_t);
        }
        Ok(())
    }

    /// Snapshot for the `Stats` frame (also exposed on [`crate::Server`]).
    pub(crate) fn stats_snapshot(&self) -> StatsPayload {
        let c = self.counters.snapshot();
        let elapsed = self.elapsed_ms() as f64 / 1000.0;
        let machines: Vec<MachineStat> = self
            .machines_sorted()
            .into_iter()
            .map(|(id, cell)| {
                let m = cell.lock().unwrap();
                MachineStat {
                    machine: id,
                    state: m.state().code(),
                    last_t: m.last_t(),
                    occurrences: m.records().len() as u64,
                    transitions: m.transitions().len() as u64,
                    harvestable: m.is_available() && !m.spike_active(),
                }
            })
            .collect();
        StatsPayload {
            ingested_batches: c.ingested_batches,
            ingested_samples: c.ingested_samples,
            shed_batches: c.shed_batches,
            shed_samples: c.shed_samples,
            decode_errors: c.decode_errors,
            busy_replies: c.busy_replies,
            queue_depth: self.queue.lock().unwrap().len() as u64
                + self.pending_forwarded.load(Ordering::Acquire),
            queries_answered: c.queries_answered,
            placements_answered: c.placements_answered,
            ingest_rate: if elapsed > 0.0 {
                c.ingested_samples as f64 / elapsed
            } else {
                0.0
            },
            machines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(machine: u32, n: usize) -> Batch {
        Batch {
            machine,
            samples: vec![
                WireSample {
                    t: 0,
                    load: SampleLoad::Direct(0.1),
                    host_resident_mb: 100,
                    alive: true
                };
                n
            ],
        }
    }

    #[test]
    fn queue_sheds_oldest_on_overflow() {
        let mut q = IngestQueue::new(2);
        assert!(q.push(batch(1, 3)).is_none());
        assert!(q.push(batch(2, 4)).is_none());
        let shed = q.push(batch(3, 5)).expect("overflow sheds");
        assert_eq!(shed.machine, 1, "oldest batch goes first");
        assert_eq!(shed.samples.len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn claim_drains_one_machine_and_blocks_reclaim_until_finish() {
        let mut q = IngestQueue::new(10);
        q.push(batch(1, 1));
        q.push(batch(2, 1));
        q.push(batch(1, 2));
        let (m, batches) = q.claim().expect("work available");
        assert_eq!(m, 1, "machine 1 arrived first");
        assert_eq!(batches.len(), 2, "claim takes all of machine 1's batches");
        assert_eq!(q.len(), 1);
        // Machine 1 is busy: a new batch for it queues but cannot be
        // claimed; machine 2 can.
        q.push(batch(1, 3));
        let (m2, _) = q.claim().expect("machine 2 claimable");
        assert_eq!(m2, 2);
        assert!(q.claim().is_none(), "machine 1 is busy");
        q.finish(1);
        let (m1, b1) = q.claim().expect("machine 1 released");
        assert_eq!(m1, 1);
        assert_eq!(b1.len(), 1);
    }

    #[test]
    fn sharded_map_keeps_sorted_iteration_order() {
        let cfg = crate::server::ServiceConfig {
            state_shards: 4,
            ..Default::default()
        };
        let shared = Shared::new(cfg).expect("no snapshot dir, infallible");
        // Insert in scrambled order, across all shards.
        for id in [9u32, 2, 7, 0, 13, 4, 11, 6] {
            shared.machine_entry(id);
        }
        let ids: Vec<u32> = shared.machines_sorted().iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 2, 4, 6, 7, 9, 11, 13]);
        // Entry is idempotent and get finds what entry created.
        shared.machine_entry(7);
        assert_eq!(shared.machines_sorted().len(), 8);
        assert!(shared.machine_get(13).is_some());
        assert!(shared.machine_get(14).is_none());
    }

    #[test]
    fn slotted_counters_fold_and_replace_consistently() {
        let c = Counters::new(4);
        // Updates from many threads land in (possibly different) slots;
        // the fold must see every one exactly once.
        let c = Arc::new(c);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    c.update(|v| {
                        v.shed_batches += 1;
                        v.shed_samples += 3;
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = c.snapshot();
        assert_eq!(snap.shed_batches, 800);
        assert_eq!(snap.shed_samples, 2400);
        // A multi-field update is never observed torn: the ratio is
        // exact in every snapshot because snapshot() holds all slots.
        assert_eq!(snap.shed_samples, 3 * snap.shed_batches);
        // set_all replaces everything, across all slots.
        let restored = CounterValues {
            ingested_batches: 42,
            ..Default::default()
        };
        c.set_all(restored);
        let snap = c.snapshot();
        assert_eq!(snap.ingested_batches, 42);
        assert_eq!(snap.shed_batches, 0, "old slot contents cleared");
        assert!(c.lock_stats().values().0 >= 800, "acquisitions counted");
    }

    #[test]
    fn home_loop_partitions_shards_exclusively() {
        let cfg = crate::server::ServiceConfig {
            state_shards: 16,
            event_loops: 4,
            backend: crate::server::Backend::Epoll,
            ..Default::default()
        };
        let shared = Shared::new(cfg).unwrap();
        assert_eq!(shared.event_loops, 4);
        // Every machine maps to exactly one loop, and two machines in
        // the same shard always share a home loop.
        for m in 0..200u32 {
            let home = shared.home_loop(m);
            assert!(home < 4);
            assert_eq!(home, (m as usize % 16) % 4);
            assert_eq!(shared.home_loop(m + 16), home, "same shard, same loop");
        }
        // All four loops own at least one shard.
        let owners: std::collections::BTreeSet<usize> =
            (0..16u32).map(|m| shared.home_loop(m)).collect();
        assert_eq!(owners.len(), 4);
    }

    #[test]
    fn lock_timed_counts_contention_only_when_blocked() {
        let m = Mutex::new(0u32);
        let stats = LockStats::default();
        // Uncontended: acquisitions tick, contended does not.
        *lock_timed(&m, &stats) += 1;
        *lock_timed(&m, &stats) += 1;
        let (acq, cont, _) = stats.values();
        assert_eq!((acq, cont), (2, 0));
        // Contended: hold the lock in another thread while this one
        // acquires.
        std::thread::scope(|s| {
            let g = lock_timed(&m, &stats);
            let h = s.spawn(|| {
                *lock_timed(&m, &stats) += 1;
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(g);
            h.join().unwrap();
        });
        let (acq, cont, wait) = stats.values();
        assert_eq!(acq, 4);
        assert_eq!(cont, 1);
        assert!(wait > 0, "blocked time recorded");
    }

    #[test]
    fn queue_capacity_is_at_least_one() {
        let mut q = IngestQueue::new(0);
        assert!(q.push(batch(1, 1)).is_none(), "cap clamps to 1");
        assert!(q.push(batch(2, 1)).is_some());
    }

    /// One square wave per machine: long enough busy/idle stretches to
    /// drive real transitions and occurrence records.
    fn wave_batch(machine: u32, from: usize, n: usize) -> Batch {
        let samples = (from..from + n)
            .map(|i| WireSample {
                t: i as u64 * 15,
                load: SampleLoad::Direct(if (i / 40) % 2 == 1 { 0.9 } else { 0.05 }),
                host_resident_mb: 100,
                alive: true,
            })
            .collect();
        Batch { machine, samples }
    }

    fn snap_cfg(dir: &std::path::Path) -> ServiceConfig {
        ServiceConfig {
            snapshot_dir: Some(dir.to_string_lossy().into_owned()),
            snapshot_interval_ms: 60_000,
            ..Default::default()
        }
    }

    #[test]
    fn shared_state_survives_a_snapshot_restore_cycle() {
        let dir = std::env::temp_dir().join(format!("fgcs-shared-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let first = Shared::new(snap_cfg(&dir)).expect("shared");
        for m in [1u32, 5] {
            first.ingest_batch(&wave_batch(m, 0, 200));
        }
        first.counters.update(|c| {
            c.queries_answered = 7;
            c.auth_rejects = 2;
        });
        let before = first.stats_snapshot();
        assert!(
            before.machines.iter().all(|m| m.transitions > 0),
            "the wave must produce transitions for the test to mean anything"
        );
        first.checkpoint_final();
        drop(first);

        // A brand-new Shared on the same dir resumes where we left off.
        let second = Shared::new(snap_cfg(&dir)).expect("restored shared");
        let after = second.stats_snapshot();
        assert_eq!(after.machines, before.machines);
        assert_eq!(after.ingested_batches, before.ingested_batches);
        assert_eq!(after.ingested_samples, before.ingested_samples);
        assert_eq!(after.queries_answered, 7);
        for m in [1u32, 5] {
            let orig = Shared::new(ServiceConfig::default()).unwrap();
            orig.ingest_batch(&wave_batch(m, 0, 200));
            let orig_cell = orig.machine_get(m).unwrap();
            let orig_state = orig_cell.lock().unwrap();
            let cell = second.machine_get(m).expect("machine restored");
            let st = cell.lock().unwrap();
            assert_eq!(st.records(), orig_state.records(), "machine {m} records");
            assert_eq!(
                st.transitions(),
                orig_state.transitions(),
                "machine {m} transitions"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transition_seqs_continue_across_restore_and_resume_is_exact() {
        let dir = std::env::temp_dir().join(format!("fgcs-seq-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Uninterrupted reference run.
        let reference = Shared::new(ServiceConfig::default()).unwrap();
        reference.ingest_batch(&wave_batch(1, 0, 400));

        // Interrupted run: first half, checkpoint, new Shared, second half.
        let first = Shared::new(snap_cfg(&dir)).expect("shared");
        first.ingest_batch(&wave_batch(1, 0, 200));
        first.checkpoint_final();
        drop(first);
        let second = Shared::new(snap_cfg(&dir)).expect("restored");
        second.ingest_batch(&wave_batch(1, 200, 200));

        let ref_cell = reference.machine_get(1).unwrap();
        let ref_state = ref_cell.lock().unwrap();
        let cell = second.machine_get(1).unwrap();
        let st = cell.lock().unwrap();
        assert_eq!(st.records(), ref_state.records(), "bit-identical records");
        assert_eq!(
            st.transitions(),
            ref_state.transitions(),
            "seqs continue monotonically past the restart — no restart at 1"
        );
        let seqs: Vec<u64> = st.transitions().iter().map(|t| t.seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[1] > w[0]),
            "strictly increasing seqs: {seqs:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_timestamp_resend_does_not_double_count() {
        // The resend protocol replays samples with strictly t > last_t;
        // this pins why: a sample at exactly last_t is *accepted* by the
        // out-of-order check (which only rejects t < last_t) and would
        // skew the availability means if replayed.
        let shared = Shared::new(ServiceConfig::default()).unwrap();
        shared.ingest_batch(&wave_batch(1, 0, 100));
        let cell = shared.machine_get(1).unwrap();
        let oo = cell.lock().unwrap().out_of_order;
        assert_eq!(oo, 0);
        // Replay the last sample (t == last_t): not counted out-of-order.
        let last = wave_batch(1, 99, 1);
        shared.ingest_batch(&last);
        assert_eq!(cell.lock().unwrap().out_of_order, 0);
        // A genuinely old sample is rejected and counted.
        shared.ingest_batch(&wave_batch(1, 50, 1));
        assert_eq!(cell.lock().unwrap().out_of_order, 1);
    }
}
