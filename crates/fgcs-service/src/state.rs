//! Server-side state: per-machine detector pipelines, the bounded
//! ingest queue, and the shared counters behind the `Stats` frame.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use fgcs_core::model::AvailState;
use fgcs_core::monitor::{Monitor, Observation, ResourceProbe};
use fgcs_predict::OnlineAvailabilityModel;
use fgcs_testbed::{OccurrenceRecorder, TraceRecord};
use fgcs_wire::{MachineStat, SampleLoad, StatsPayload, WireSample, WireTransition};

use crate::server::ServiceConfig;

/// A queued sample batch.
#[derive(Debug)]
pub(crate) struct Batch {
    pub machine: u32,
    pub samples: Vec<WireSample>,
}

/// Bounded multi-machine FIFO. Two invariants matter:
///
/// * **Per-machine order.** A worker claims *all* queued batches of one
///   machine at once and the machine is marked busy until it finishes,
///   so two workers can never interleave one machine's samples — the
///   detector requires non-decreasing timestamps.
/// * **Shed oldest first.** On overflow the globally oldest queued
///   batch is dropped (and returned for accounting); the arriving batch
///   is always accepted. Old samples describe state the detector has
///   already moved past; the freshest data is the most valuable.
#[derive(Debug)]
pub(crate) struct IngestQueue {
    cap: usize,
    total: usize,
    /// Machine id per queued batch, in global arrival order.
    order: VecDeque<u32>,
    per_machine: BTreeMap<u32, VecDeque<Batch>>,
    /// Machines currently claimed by a worker.
    busy: BTreeSet<u32>,
}

impl IngestQueue {
    pub(crate) fn new(cap: usize) -> Self {
        IngestQueue {
            cap: cap.max(1),
            total: 0,
            order: VecDeque::new(),
            per_machine: BTreeMap::new(),
            busy: BTreeSet::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.total
    }

    /// Enqueues a batch; if the queue was full, sheds and returns the
    /// oldest queued batch.
    pub(crate) fn push(&mut self, batch: Batch) -> Option<Batch> {
        let shed = if self.total >= self.cap {
            let victim = self
                .order
                .pop_front()
                .expect("full queue has an order entry");
            let q = self
                .per_machine
                .get_mut(&victim)
                .expect("order entry has a batch");
            let b = q.pop_front().expect("order entry has a batch");
            if q.is_empty() {
                self.per_machine.remove(&victim);
            }
            self.total -= 1;
            Some(b)
        } else {
            None
        };
        self.order.push_back(batch.machine);
        self.per_machine
            .entry(batch.machine)
            .or_default()
            .push_back(batch);
        self.total += 1;
        shed
    }

    /// Claims the first machine (in arrival order) not already being
    /// drained, removing *all* its queued batches and marking it busy.
    /// Returns `None` if every queued machine is busy (or the queue is
    /// empty).
    pub(crate) fn claim(&mut self) -> Option<(u32, VecDeque<Batch>)> {
        let machine = self
            .order
            .iter()
            .copied()
            .find(|m| !self.busy.contains(m))?;
        let batches = self
            .per_machine
            .remove(&machine)
            .expect("ordered machine has batches");
        self.total -= batches.len();
        self.order.retain(|&m| m != machine);
        self.busy.insert(machine);
        Some((machine, batches))
    }

    /// Releases a machine claimed by [`IngestQueue::claim`].
    pub(crate) fn finish(&mut self, machine: u32) {
        self.busy.remove(&machine);
    }
}

/// Probe adapter turning a counter-level [`WireSample`] into one
/// `ResourceProbe` read, so remote counter streams run through the same
/// `Monitor` (baseline diffs, reset absorption) as local ones.
struct WireProbe {
    busy: u64,
    total: u64,
    free_mem_mb: u32,
    alive: bool,
}

impl ResourceProbe for WireProbe {
    fn cpu_counters(&self) -> (u64, u64) {
        (self.busy, self.total)
    }

    fn free_mem_for_guest_mb(&self) -> u32 {
        self.free_mem_mb
    }

    fn service_alive(&self) -> bool {
        self.alive
    }
}

/// One machine's ingest pipeline: monitor → recorder (detector +
/// occurrence records) → transition log.
#[derive(Debug)]
pub(crate) struct MachineState {
    monitor: Monitor,
    recorder: OccurrenceRecorder,
    transitions: Vec<WireTransition>,
    last_t: Option<u64>,
    pub(crate) out_of_order: u64,
}

impl MachineState {
    fn new(machine: u32, cfg: &ServiceConfig) -> Self {
        MachineState {
            monitor: Monitor::new(),
            recorder: OccurrenceRecorder::new(machine, cfg.detector),
            transitions: Vec::new(),
            last_t: None,
            out_of_order: 0,
        }
    }

    /// Feeds one wire sample. Returns the starts of any unavailability
    /// occurrences this sample triggered (for the online model).
    fn ingest_sample(&mut self, cfg: &ServiceConfig, s: &WireSample) -> Vec<u64> {
        // The detector requires non-decreasing timestamps; late
        // deliveries are discarded and counted, as in the supervised
        // testbed tracer.
        if self.last_t.is_some_and(|lt| s.t < lt) {
            self.out_of_order += 1;
            return Vec::new();
        }
        self.last_t = Some(s.t);

        let free_mem_mb = cfg.free_for_guest_mb(s.host_resident_mb);
        let obs = match s.load {
            SampleLoad::Direct(host_load) => {
                if s.alive {
                    Observation {
                        host_load,
                        free_mem_mb,
                        alive: true,
                    }
                } else {
                    Observation::dead()
                }
            }
            SampleLoad::Counters { busy, total } => self.monitor.sample(&WireProbe {
                busy,
                total,
                free_mem_mb,
                alive: s.alive,
            }),
        };

        let before = self.recorder.state();
        let step = self.recorder.observe(s.t, &obs);
        if step.state != before {
            self.transitions.push(WireTransition {
                seq: self.transitions.len() as u64 + 1,
                at: s.t,
                state: step.state.code(),
            });
        }
        step.edges
            .iter()
            .filter_map(|e| match *e {
                fgcs_core::detector::EventEdge::Started { at, .. } => Some(at),
                _ => None,
            })
            .collect()
    }

    pub(crate) fn state(&self) -> AvailState {
        self.recorder.state()
    }

    pub(crate) fn is_available(&self) -> bool {
        self.recorder.is_available()
    }

    pub(crate) fn spike_active(&self) -> bool {
        self.recorder.spike_active()
    }

    pub(crate) fn last_t(&self) -> u64 {
        self.last_t.unwrap_or(0)
    }

    pub(crate) fn records(&self) -> &[TraceRecord] {
        self.recorder.records()
    }

    pub(crate) fn transitions(&self) -> &[WireTransition] {
        &self.transitions
    }
}

/// Monotone counters behind the `Stats` frame.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub ingested_batches: AtomicU64,
    pub ingested_samples: AtomicU64,
    pub shed_batches: AtomicU64,
    pub shed_samples: AtomicU64,
    pub decode_errors: AtomicU64,
    pub busy_replies: AtomicU64,
    pub queries_answered: AtomicU64,
    pub placements_answered: AtomicU64,
    /// Streams rejected by the auth gate (not part of `StatsPayload`:
    /// the reject happens before the stream is trusted).
    pub auth_rejects: AtomicU64,
    /// Connections refused at the cap with `Error { ConnLimit }`.
    pub conn_rejects: AtomicU64,
}

/// One shard of the per-machine state map.
type StateShard = Mutex<BTreeMap<u32, Arc<Mutex<MachineState>>>>;

/// Everything the accept loop, connection threads and ingest workers
/// share.
pub(crate) struct Shared {
    pub cfg: ServiceConfig,
    /// Per-machine pipelines, sharded by machine id so ingest workers
    /// and query handlers touching different machines stop serializing
    /// on one map lock (DESIGN.md §10). Deterministic read paths
    /// (stats, placement) re-sort by id after collecting across shards.
    shards: Box<[StateShard]>,
    pub online: Mutex<OnlineAvailabilityModel>,
    pub queue: Mutex<IngestQueue>,
    pub queue_cv: Condvar,
    pub shutdown: AtomicBool,
    pub counters: Counters,
    /// Connections currently served (threaded backend: live conn
    /// threads; epoll backend: registered conn fds).
    pub active_conns: AtomicU64,
    pub started_at: Instant,
}

impl Shared {
    pub(crate) fn new(cfg: ServiceConfig) -> Self {
        let queue = IngestQueue::new(cfg.queue_capacity);
        let online = OnlineAvailabilityModel::new(cfg.start_weekday);
        let n_shards = cfg.state_shards();
        let shards: Box<[StateShard]> =
            (0..n_shards).map(|_| Mutex::new(BTreeMap::new())).collect();
        Shared {
            cfg,
            shards,
            online: Mutex::new(online),
            queue: Mutex::new(queue),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            active_conns: AtomicU64::new(0),
            started_at: Instant::now(),
        }
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn shard(&self, machine: u32) -> &StateShard {
        &self.shards[machine as usize % self.shards.len()]
    }

    /// Looks up (or creates) the state cell for a machine.
    pub(crate) fn machine_entry(&self, machine: u32) -> Arc<Mutex<MachineState>> {
        let mut map = self.shard(machine).lock().unwrap();
        if let Some(m) = map.get(&machine) {
            return Arc::clone(m);
        }
        let m = Arc::new(Mutex::new(MachineState::new(machine, &self.cfg)));
        map.insert(machine, Arc::clone(&m));
        drop(map);
        self.online.lock().unwrap().ensure_machine(machine);
        m
    }

    /// Looks up a machine without creating it.
    pub(crate) fn machine_get(&self, machine: u32) -> Option<Arc<Mutex<MachineState>>> {
        self.shard(machine)
            .lock()
            .unwrap()
            .get(&machine)
            .map(Arc::clone)
    }

    /// Every known machine, sorted by id — the same order the single
    /// pre-shard BTreeMap used to iterate in, so stats and placement
    /// stay deterministic (lowest id wins ties).
    pub(crate) fn machines_sorted(&self) -> Vec<(u32, Arc<Mutex<MachineState>>)> {
        let mut all: Vec<(u32, Arc<Mutex<MachineState>>)> = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.lock().unwrap();
            all.extend(map.iter().map(|(&id, cell)| (id, Arc::clone(cell))));
        }
        all.sort_unstable_by_key(|&(id, _)| id);
        all
    }

    /// Ingests one claimed batch into its machine's pipeline and the
    /// online model. Called from ingest workers only.
    pub(crate) fn ingest_batch(&self, batch: &Batch) {
        if self.cfg.ingest_delay_us > 0 {
            // Artificial per-batch cost, used by overload tests to pin
            // the server's ingest capacity below the offered load.
            std::thread::sleep(std::time::Duration::from_micros(self.cfg.ingest_delay_us));
        }
        let cell = self.machine_entry(batch.machine);
        let mut started = Vec::new();
        let mut max_t = None;
        {
            let mut m = cell.lock().unwrap();
            for s in &batch.samples {
                started.extend(m.ingest_sample(&self.cfg, s));
                max_t = Some(max_t.map_or(s.t, |t: u64| t.max(s.t)));
            }
        }
        // Online-model updates happen outside the machine lock; the
        // model has its own.
        let mut online = self.online.lock().unwrap();
        if let Some(t) = max_t {
            online.observe_time(t);
        }
        for at in started {
            online.record_event(batch.machine, at);
        }
        drop(online);
        self.counters
            .ingested_batches
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .ingested_samples
            .fetch_add(batch.samples.len() as u64, Ordering::Relaxed);
    }

    /// Snapshot for the `Stats` frame (also exposed on [`crate::Server`]).
    pub(crate) fn stats_snapshot(&self) -> StatsPayload {
        let c = &self.counters;
        let ingested_samples = c.ingested_samples.load(Ordering::Relaxed);
        let elapsed = self.started_at.elapsed().as_secs_f64();
        let machines: Vec<MachineStat> = self
            .machines_sorted()
            .into_iter()
            .map(|(id, cell)| {
                let m = cell.lock().unwrap();
                MachineStat {
                    machine: id,
                    state: m.state().code(),
                    last_t: m.last_t(),
                    occurrences: m.records().len() as u64,
                    transitions: m.transitions().len() as u64,
                }
            })
            .collect();
        StatsPayload {
            ingested_batches: c.ingested_batches.load(Ordering::Relaxed),
            ingested_samples,
            shed_batches: c.shed_batches.load(Ordering::Relaxed),
            shed_samples: c.shed_samples.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
            busy_replies: c.busy_replies.load(Ordering::Relaxed),
            queue_depth: self.queue.lock().unwrap().len() as u64,
            queries_answered: c.queries_answered.load(Ordering::Relaxed),
            placements_answered: c.placements_answered.load(Ordering::Relaxed),
            ingest_rate: if elapsed > 0.0 {
                ingested_samples as f64 / elapsed
            } else {
                0.0
            },
            machines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(machine: u32, n: usize) -> Batch {
        Batch {
            machine,
            samples: vec![
                WireSample {
                    t: 0,
                    load: SampleLoad::Direct(0.1),
                    host_resident_mb: 100,
                    alive: true
                };
                n
            ],
        }
    }

    #[test]
    fn queue_sheds_oldest_on_overflow() {
        let mut q = IngestQueue::new(2);
        assert!(q.push(batch(1, 3)).is_none());
        assert!(q.push(batch(2, 4)).is_none());
        let shed = q.push(batch(3, 5)).expect("overflow sheds");
        assert_eq!(shed.machine, 1, "oldest batch goes first");
        assert_eq!(shed.samples.len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn claim_drains_one_machine_and_blocks_reclaim_until_finish() {
        let mut q = IngestQueue::new(10);
        q.push(batch(1, 1));
        q.push(batch(2, 1));
        q.push(batch(1, 2));
        let (m, batches) = q.claim().expect("work available");
        assert_eq!(m, 1, "machine 1 arrived first");
        assert_eq!(batches.len(), 2, "claim takes all of machine 1's batches");
        assert_eq!(q.len(), 1);
        // Machine 1 is busy: a new batch for it queues but cannot be
        // claimed; machine 2 can.
        q.push(batch(1, 3));
        let (m2, _) = q.claim().expect("machine 2 claimable");
        assert_eq!(m2, 2);
        assert!(q.claim().is_none(), "machine 1 is busy");
        q.finish(1);
        let (m1, b1) = q.claim().expect("machine 1 released");
        assert_eq!(m1, 1);
        assert_eq!(b1.len(), 1);
    }

    #[test]
    fn sharded_map_keeps_sorted_iteration_order() {
        let cfg = crate::server::ServiceConfig {
            state_shards: 4,
            ..Default::default()
        };
        let shared = Shared::new(cfg);
        // Insert in scrambled order, across all shards.
        for id in [9u32, 2, 7, 0, 13, 4, 11, 6] {
            shared.machine_entry(id);
        }
        let ids: Vec<u32> = shared.machines_sorted().iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 2, 4, 6, 7, 9, 11, 13]);
        // Entry is idempotent and get finds what entry created.
        shared.machine_entry(7);
        assert_eq!(shared.machines_sorted().len(), 8);
        assert!(shared.machine_get(13).is_some());
        assert!(shared.machine_get(14).is_none());
    }

    #[test]
    fn queue_capacity_is_at_least_one() {
        let mut q = IngestQueue::new(0);
        assert!(q.push(batch(1, 1)).is_none(), "cap clamps to 1");
        assert!(q.push(batch(2, 1)).is_some());
    }
}
