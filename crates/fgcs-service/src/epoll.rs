//! The epoll readiness-loop backend (Linux only) — N accept-sharing
//! event loops pinned to disjoint subsets of the state shards.
//!
//! Each loop owns its connections outright: the conn sockets are
//! nonblocking and registered with the loop's own epoll instance
//! (level-triggered). With `loops > 1`, every loop also gets its own
//! `SO_REUSEPORT` listener on the shared address (the kernel spreads
//! incoming connections across them); where `SO_REUSEPORT` is
//! unavailable — or `force_fd_handoff` is set — loop 0 keeps a single
//! listener and hands accepted sockets to the other loops round-robin
//! over bounded channels.
//!
//! Invariants (DESIGN.md §10 and §12):
//!
//! * **Buffer reuse.** One shared 64 KiB read scratch and one shared
//!   encode scratch serve every connection of a loop; each connection's
//!   write buffer is cleared (capacity kept) once flushed. Steady state
//!   allocates nothing per frame.
//! * **Partial-frame reassembly.** Each connection owns a
//!   `fgcs_wire::Decoder`; bytes are pushed as they arrive and frames
//!   pulled out whole. A connection that dies mid-frame takes its
//!   decoder (and the fragment) with it — no cross-connection state.
//! * **Identical semantics.** Every decoded frame goes through the same
//!   [`handle_conn_frame`] as the threaded backend; decode errors are
//!   counted and answered the same way.
//! * **Loop-local ingest.** A loop ingests batches for its own shards
//!   inline (no queue, no worker pool); batches homed on another loop
//!   travel over an SPSC ring ([`std::sync::mpsc::sync_channel`], one
//!   per ordered loop pair) and an `eventfd` wake — the hot path takes
//!   no cross-loop locks.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use fgcs_sys::{
    accept_nonblocking, Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT,
    EPOLLRDHUP,
};
use fgcs_wire::{encode_into, Decoder, ErrorCode, Frame};

use crate::conn::{handle_conn_frame, ConnCtx, IngestSink, Outcome};
use crate::state::{Batch, Shared};

/// Capacity of each loop-0 → loop-i accepted-socket handoff channel.
const HANDOFF_RING_CAP: usize = 1024;

/// One connection's state inside the event loop.
struct Conn {
    stream: TcpStream,
    decoder: Decoder,
    ctx: ConnCtx,
    /// Bytes queued for the peer that the socket would not take yet.
    out: Vec<u8>,
    out_pos: usize,
    /// Close once `out` drains (auth reject / fatal decode error).
    close_after_flush: bool,
    /// Whether the current epoll interest set includes `EPOLLOUT`.
    registered_writable: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            decoder: Decoder::new(),
            ctx: ConnCtx::default(),
            out: Vec::new(),
            out_pos: 0,
            close_after_flush: false,
            registered_writable: false,
        }
    }

    fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// A loop's view of the shard-ownership map: enough to decide, per
/// batch, between inline ingest and forwarding to the home loop.
pub(crate) struct LoopRouter {
    loop_id: usize,
    /// `tx[dst]`: the SPSC ring into loop `dst`; `None` for self.
    forward_tx: Vec<Option<SyncSender<Batch>>>,
    /// Every loop's wake eventfd, to nudge a forward's recipient out of
    /// `epoll_wait`.
    wakes: Vec<Arc<EventFd>>,
}

impl LoopRouter {
    /// Routes one accepted batch. Owned shard → ingest inline, return
    /// `None`. Foreign shard → forward; a full ring sheds the arriving
    /// batch (returned for the caller's shed accounting + Busy reply).
    pub(crate) fn submit(&mut self, shared: &Shared, batch: Batch) -> Option<Batch> {
        let home = shared.home_loop(batch.machine);
        if home == self.loop_id {
            shared.ingest_batch(&batch);
            return None;
        }
        let tx = self.forward_tx[home]
            .as_ref()
            .expect("every loop pair has a forwarding ring");
        // Count the batch in flight *before* sending: once it is in the
        // ring its Ack may race ahead of the ingest, and queue_depth
        // must never claim "drained" while it is.
        shared.pending_forwarded.fetch_add(1, Ordering::AcqRel);
        match tx.try_send(batch) {
            Ok(()) => {
                self.wakes[home].signal();
                None
            }
            Err(TrySendError::Full(b)) | Err(TrySendError::Disconnected(b)) => {
                shared.pending_forwarded.fetch_sub(1, Ordering::AcqRel);
                Some(b)
            }
        }
    }
}

/// Everything one event loop needs, built by [`spawn_loops`].
struct LoopCtx {
    loop_id: usize,
    max_conns: usize,
    /// This loop's own listener: every loop in `SO_REUSEPORT` mode,
    /// loop 0 only in fd-handoff mode.
    listener: Option<TcpListener>,
    /// Handoff mode, loops 1..N: accepted sockets arriving from loop 0.
    accept_rx: Option<Receiver<TcpStream>>,
    /// Handoff mode, loop 0: `tx[dst]` distributes accepted sockets.
    accept_tx: Vec<Option<SyncSender<TcpStream>>>,
    /// `rx[src]`: forwarded batches from loop `src`; `None` for self.
    forward_rx: Vec<Option<Receiver<Batch>>>,
    /// `tx[dst]`: forwarding rings out; `None` for self.
    forward_tx: Vec<Option<SyncSender<Batch>>>,
    /// This loop's wake eventfd (registered `EPOLLIN` in its epoll).
    wake: Arc<EventFd>,
    /// Every loop's wake eventfd, indexed by loop id.
    wakes: Vec<Arc<EventFd>>,
}

/// Writes as much of `buf` as the nonblocking socket takes. Returns the
/// byte count written; `WouldBlock` stops early without error.
fn write_some(stream: &mut TcpStream, buf: &[u8]) -> io::Result<usize> {
    let mut written = 0;
    while written < buf.len() {
        match stream.write(&buf[written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => return Err(e),
        }
    }
    Ok(written)
}

/// Flushes the connection's pending output; clears the buffer (keeping
/// its capacity — the reuse invariant) once fully drained.
fn flush_out(conn: &mut Conn) -> io::Result<()> {
    if !conn.has_pending_out() {
        return Ok(());
    }
    let w = write_some(&mut conn.stream, &conn.out[conn.out_pos..])?;
    conn.out_pos += w;
    if !conn.has_pending_out() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    Ok(())
}

/// Encodes `reply` through the shared scratch and sends it: straight to
/// the socket while no backlog exists, else appended to the
/// connection's write buffer (order preserved). `false` = connection
/// is dead.
fn queue_reply(conn: &mut Conn, reply: &Frame, ebuf: &mut Vec<u8>) -> bool {
    if encode_into(reply, ebuf).is_err() {
        return false;
    }
    if conn.has_pending_out() {
        conn.out.extend_from_slice(ebuf);
        return true;
    }
    match write_some(&mut conn.stream, ebuf) {
        Ok(w) if w == ebuf.len() => true,
        Ok(w) => {
            conn.out.extend_from_slice(&ebuf[w..]);
            true
        }
        Err(_) => false,
    }
}

/// Decodes and answers every complete frame buffered on the connection.
/// `false` = connection is dead (write failure).
fn drain_frames(
    shared: &Shared,
    conn: &mut Conn,
    ebuf: &mut Vec<u8>,
    router: &mut LoopRouter,
) -> bool {
    while !conn.close_after_flush {
        match conn.decoder.next_frame() {
            Ok(Some(frame)) => {
                let mut sink = IngestSink::Loop(router);
                match handle_conn_frame(shared, frame, &mut conn.ctx, &mut sink) {
                    Outcome::Reply(reply) => {
                        if !queue_reply(conn, &reply, ebuf) {
                            return false;
                        }
                    }
                    Outcome::ReplyThenClose(reply) => {
                        let _ = queue_reply(conn, &reply, ebuf);
                        conn.close_after_flush = true;
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                shared.counters.update(|c| c.decode_errors += 1);
                let reply = Frame::Error {
                    code: ErrorCode::BadFrame,
                    detail: e.to_string(),
                };
                if !queue_reply(conn, &reply, ebuf) {
                    return false;
                }
                if e.is_fatal() {
                    conn.close_after_flush = true;
                }
            }
        }
    }
    true
}

/// Handles one readiness event for a connection. `false` = close now.
fn process_conn(
    shared: &Shared,
    conn: &mut Conn,
    readiness: u32,
    rbuf: &mut [u8],
    ebuf: &mut Vec<u8>,
    router: &mut LoopRouter,
) -> bool {
    if readiness & EPOLLERR != 0 {
        return false;
    }
    if readiness & EPOLLOUT != 0 && flush_out(conn).is_err() {
        return false;
    }
    if !conn.close_after_flush && readiness & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0 {
        loop {
            match conn.stream.read(rbuf) {
                Ok(0) => return false, // peer closed
                Ok(n) => {
                    conn.decoder.push(&rbuf[..n]);
                    if !drain_frames(shared, conn, ebuf, router) {
                        return false;
                    }
                    if conn.close_after_flush {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }
    // A closing connection with nothing left to flush is done.
    !conn.close_after_flush || conn.has_pending_out()
}

/// Re-registers the connection when its `EPOLLOUT` need changed.
fn sync_interest(ep: &Epoll, conn: &mut Conn, fd: RawFd) {
    let wants_write = conn.has_pending_out();
    if wants_write != conn.registered_writable {
        let mut interest = EPOLLIN | EPOLLRDHUP;
        if wants_write {
            interest |= EPOLLOUT;
        }
        if ep.modify(fd, interest, fd as u64).is_ok() {
            conn.registered_writable = wants_write;
        }
    }
}

fn close_conn(ep: &Epoll, conns: &mut HashMap<RawFd, Conn>, fd: RawFd, shared: &Shared) {
    let _ = ep.delete(fd);
    if conns.remove(&fd).is_some() {
        shared.active_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Registers an accepted (already nonblocking) socket with this loop.
fn register_conn(ep: &Epoll, conns: &mut HashMap<RawFd, Conn>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let fd = stream.as_raw_fd();
    if ep.add(fd, EPOLLIN | EPOLLRDHUP, fd as u64).is_ok() {
        conns.insert(fd, Conn::new(stream));
    }
}

/// Accepts every pending connection on this loop's listener, refusing
/// beyond the *global* `max_conns` with a best-effort
/// `Error { ConnLimit }`. In fd-handoff mode (loop 0 only), kept
/// connections are dealt round-robin across all loops; a loop whose
/// handoff ring is full keeps the connection here instead.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    shared: &Shared,
    listener: &TcpListener,
    ep: &Epoll,
    conns: &mut HashMap<RawFd, Conn>,
    max_conns: usize,
    ebuf: &mut Vec<u8>,
    ctx: &LoopCtx,
    next_handoff: &mut usize,
) {
    loop {
        match accept_nonblocking(listener) {
            Ok(Some(mut stream)) => {
                // The cap is global occupancy across all loops, like the
                // threaded backend's pre-spawn check.
                if shared.active_conns.load(Ordering::Relaxed) >= max_conns as u64 {
                    shared.counters.update(|c| c.conn_rejects += 1);
                    let reject = Frame::Error {
                        code: ErrorCode::ConnLimit,
                        detail: format!("server is at its connection cap ({max_conns})"),
                    };
                    if encode_into(&reject, ebuf).is_ok() {
                        let _ = write_some(&mut stream, ebuf);
                    }
                    continue; // drop closes
                }
                // Counted by the acceptor, decremented by whichever loop
                // ends up closing it.
                shared.active_conns.fetch_add(1, Ordering::Relaxed);
                if !ctx.accept_tx.is_empty() {
                    let target = *next_handoff % ctx.accept_tx.len();
                    *next_handoff += 1;
                    if let Some(tx) = &ctx.accept_tx[target] {
                        match tx.try_send(stream) {
                            Ok(()) => {
                                ctx.wakes[target].signal();
                                continue;
                            }
                            Err(TrySendError::Full(s)) | Err(TrySendError::Disconnected(s)) => {
                                stream = s; // keep it locally instead
                            }
                        }
                    }
                }
                register_conn(ep, conns, stream);
            }
            Ok(None) => break,
            Err(_) => break,
        }
    }
}

/// Ingests everything currently queued on this loop's forwarding rings,
/// in source-loop order.
fn drain_forwarded(shared: &Shared, forward_rx: &[Option<Receiver<Batch>>]) {
    for rx in forward_rx.iter().flatten() {
        loop {
            match rx.try_recv() {
                Ok(batch) => {
                    shared.ingest_batch(&batch);
                    shared.pending_forwarded.fetch_sub(1, Ordering::AcqRel);
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
    }
}

/// One event loop. Runs until [`Shared::shutting_down`]; the shutdown
/// path signals every loop's eventfd (and the 50 ms wait timeout bounds
/// the latency regardless). On exit the loop drops its connections and
/// forward senders, then drains its inbound rings to completion —
/// batches accepted (Ack'd) before shutdown are ingested, not dropped.
fn run_event_loop(shared: &Arc<Shared>, mut ctx: LoopCtx) -> io::Result<()> {
    let ep = Epoll::new()?;
    let listen_token = match &ctx.listener {
        Some(l) => {
            let fd = l.as_raw_fd();
            ep.add(fd, EPOLLIN, fd as u64)?;
            Some(fd as u64)
        }
        None => None,
    };
    let wake_token = ctx.wake.fd() as u64;
    ep.add(ctx.wake.fd(), EPOLLIN, wake_token)?;

    let mut router = LoopRouter {
        loop_id: ctx.loop_id,
        forward_tx: std::mem::take(&mut ctx.forward_tx),
        wakes: ctx.wakes.clone(),
    };
    let mut conns: HashMap<RawFd, Conn> = HashMap::new();
    let mut events = vec![EpollEvent::zeroed(); 1024];
    let mut rbuf = vec![0u8; 64 * 1024];
    let mut ebuf: Vec<u8> = Vec::with_capacity(4096);
    let mut next_handoff = 0usize;

    loop {
        let n = ep.wait(&mut events, 50)?;
        if shared.shutting_down() {
            break;
        }
        // Connection events first, accepts second: a fd closed in this
        // batch can then never be reused (by an accept) while stale
        // readiness for its previous owner is still queued behind it.
        for ev in &events[..n] {
            let token = ev.token();
            if Some(token) == listen_token || token == wake_token {
                continue;
            }
            let fd = token as RawFd;
            let Some(conn) = conns.get_mut(&fd) else {
                continue;
            };
            if process_conn(
                shared,
                conn,
                ev.readiness(),
                &mut rbuf,
                &mut ebuf,
                &mut router,
            ) {
                sync_interest(&ep, conn, fd);
            } else {
                close_conn(&ep, &mut conns, fd, shared);
            }
        }
        if events[..n].iter().any(|ev| ev.token() == wake_token) {
            ctx.wake.drain();
        }
        // Adopt connections handed off by loop 0 (handoff mode only).
        if let Some(rx) = &ctx.accept_rx {
            while let Ok(stream) = rx.try_recv() {
                register_conn(&ep, &mut conns, stream);
            }
        }
        // Ingest batches other loops forwarded for our shards. Checked
        // every iteration — the eventfd wake only bounds idle latency;
        // correctness never depends on catching a specific signal.
        drain_forwarded(shared, &ctx.forward_rx);
        for ev in &events[..n] {
            if Some(ev.token()) == listen_token {
                let listener = ctx.listener.as_ref().expect("token implies listener");
                accept_ready(
                    shared,
                    listener,
                    &ep,
                    &mut conns,
                    ctx.max_conns,
                    &mut ebuf,
                    &ctx,
                    &mut next_handoff,
                );
            }
        }
    }

    // Shutdown drain protocol (DESIGN.md §12). Order matters:
    //   1. stop accepting and drop our connections (no new batches),
    //   2. drop our forward *senders* and handoff senders,
    //   3. blocking-drain every inbound ring until its sender side
    //      disconnects.
    // Every loop drops its senders (step 2) before its first blocking
    // recv (step 3), so each drain terminates — no cyclic wait.
    let count = conns.len() as u64;
    drop(conns);
    shared.active_conns.fetch_sub(count, Ordering::Relaxed);
    drop(ctx.listener.take());
    drop(router);
    ctx.accept_tx.clear();
    if let Some(rx) = ctx.accept_rx.take() {
        // Handed-off sockets we never adopted: counted by the acceptor,
        // dropped unserved (exactly like a conn dropped at shutdown).
        while let Ok(stream) = rx.try_recv() {
            drop(stream);
            shared.active_conns.fetch_sub(1, Ordering::Relaxed);
        }
    }
    for rx in ctx.forward_rx.iter().flatten() {
        while let Ok(batch) = rx.recv() {
            shared.ingest_batch(&batch);
            shared.pending_forwarded.fetch_sub(1, Ordering::AcqRel);
        }
    }
    Ok(())
}

fn resolve_addr(addr: &str) -> io::Result<SocketAddr> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("address {addr:?} resolves to nothing"),
        )
    })
}

/// Binds `loops` listeners sharing one address via `SO_REUSEPORT`: the
/// first bind resolves a concrete port (the configured one, or an
/// OS-assigned one for port 0), the rest join it.
fn bind_reuseport_set(addr: &SocketAddr, loops: usize) -> io::Result<Vec<TcpListener>> {
    let first = fgcs_sys::listen_reuseport(addr)?;
    let concrete = first.local_addr()?;
    let mut listeners = vec![first];
    for _ in 1..loops {
        listeners.push(fgcs_sys::listen_reuseport(&concrete)?);
    }
    Ok(listeners)
}

/// Binds the listener set and spawns all event loops. Returns the bound
/// address, the loop join handles, and each loop's wake eventfd (for
/// shutdown signalling).
pub(crate) fn spawn_loops(
    shared: &Arc<Shared>,
    max_conns: usize,
) -> io::Result<(SocketAddr, Vec<JoinHandle<()>>, Vec<Arc<EventFd>>)> {
    let loops = shared.event_loops;
    let cfg = &shared.cfg;
    let addr = resolve_addr(&cfg.addr)?;

    let mut listeners: Vec<TcpListener> = Vec::new();
    if loops > 1 && !cfg.force_fd_handoff {
        match bind_reuseport_set(&addr, loops) {
            Ok(set) => listeners = set,
            Err(e) => {
                eprintln!(
                    "fgcs-service: SO_REUSEPORT bind failed ({e}); \
                     falling back to fd handoff from one listener"
                );
            }
        }
    }
    if listeners.is_empty() {
        // Single listener: one loop, forced handoff, or reuseport
        // unavailable. SO_REUSEADDR still honors `reuse_addr`.
        let l = if cfg.reuse_addr {
            fgcs_sys::listen_reusable(&addr)?
        } else {
            TcpListener::bind(addr)?
        };
        listeners.push(l);
    }
    for l in &listeners {
        l.set_nonblocking(true)?;
    }
    let local = listeners[0].local_addr()?;
    let handoff = listeners.len() < loops;

    let wakes: Vec<Arc<EventFd>> = (0..loops)
        .map(|_| EventFd::new().map(Arc::new))
        .collect::<io::Result<_>>()?;

    // One SPSC ring per ordered loop pair: src owns tx_mat[src][dst],
    // dst owns rx_mat[dst][src]. Strictly one producer and one consumer
    // per channel, so std's array-backed sync_channel runs lock-free.
    let ring_cap = cfg.queue_capacity.max(1);
    let mut tx_mat: Vec<Vec<Option<SyncSender<Batch>>>> = (0..loops)
        .map(|_| (0..loops).map(|_| None).collect())
        .collect();
    let mut rx_mat: Vec<Vec<Option<Receiver<Batch>>>> = (0..loops)
        .map(|_| (0..loops).map(|_| None).collect())
        .collect();
    for src in 0..loops {
        for dst in 0..loops {
            if src != dst {
                let (tx, rx) = sync_channel(ring_cap);
                tx_mat[src][dst] = Some(tx);
                rx_mat[dst][src] = Some(rx);
            }
        }
    }

    let mut accept_tx: Vec<Option<SyncSender<TcpStream>>> = (0..loops).map(|_| None).collect();
    let mut accept_rx: Vec<Option<Receiver<TcpStream>>> = (0..loops).map(|_| None).collect();
    if handoff {
        for dst in 1..loops {
            let (tx, rx) = sync_channel(HANDOFF_RING_CAP);
            accept_tx[dst] = Some(tx);
            accept_rx[dst] = Some(rx);
        }
    }

    let mut listeners = listeners.into_iter();
    let handles = (0..loops)
        .map(|i| {
            let ctx = LoopCtx {
                loop_id: i,
                max_conns,
                listener: if handoff && i > 0 {
                    None
                } else {
                    listeners.next()
                },
                accept_rx: accept_rx[i].take(),
                accept_tx: if handoff && i == 0 {
                    std::mem::take(&mut accept_tx)
                } else {
                    Vec::new()
                },
                forward_rx: std::mem::take(&mut rx_mat[i]),
                forward_tx: std::mem::take(&mut tx_mat[i]),
                wake: Arc::clone(&wakes[i]),
                wakes: wakes.clone(),
            };
            let shared = Arc::clone(shared);
            std::thread::spawn(move || {
                if let Err(e) = run_event_loop(&shared, ctx) {
                    eprintln!("fgcs-service: epoll event loop {i} failed: {e}");
                }
            })
        })
        .collect();
    Ok((local, handles, wakes))
}
