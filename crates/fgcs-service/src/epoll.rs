//! The epoll readiness-loop backend (Linux only).
//!
//! One thread owns every connection: the listener and all conn sockets
//! are nonblocking and registered with one epoll instance
//! (level-triggered). Invariants (DESIGN.md §10):
//!
//! * **Buffer reuse.** One shared 64 KiB read scratch and one shared
//!   encode scratch serve every connection; each connection's write
//!   buffer is cleared (capacity kept) once flushed. Steady state
//!   allocates nothing per frame.
//! * **Partial-frame reassembly.** Each connection owns a
//!   `fgcs_wire::Decoder`; bytes are pushed as they arrive and frames
//!   pulled out whole. A connection that dies mid-frame takes its
//!   decoder (and the fragment) with it — no cross-connection state.
//! * **Identical semantics.** Every decoded frame goes through the same
//!   [`handle_conn_frame`] as the threaded backend; decode errors are
//!   counted and answered the same way.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use fgcs_sys::{
    accept_nonblocking, Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use fgcs_wire::{encode_into, Decoder, ErrorCode, Frame};

use crate::conn::{handle_conn_frame, ConnCtx, Outcome};
use crate::state::Shared;

/// One connection's state inside the event loop.
struct Conn {
    stream: TcpStream,
    decoder: Decoder,
    ctx: ConnCtx,
    /// Bytes queued for the peer that the socket would not take yet.
    out: Vec<u8>,
    out_pos: usize,
    /// Close once `out` drains (auth reject / fatal decode error).
    close_after_flush: bool,
    /// Whether the current epoll interest set includes `EPOLLOUT`.
    registered_writable: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            decoder: Decoder::new(),
            ctx: ConnCtx::default(),
            out: Vec::new(),
            out_pos: 0,
            close_after_flush: false,
            registered_writable: false,
        }
    }

    fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// Writes as much of `buf` as the nonblocking socket takes. Returns the
/// byte count written; `WouldBlock` stops early without error.
fn write_some(stream: &mut TcpStream, buf: &[u8]) -> io::Result<usize> {
    let mut written = 0;
    while written < buf.len() {
        match stream.write(&buf[written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => return Err(e),
        }
    }
    Ok(written)
}

/// Flushes the connection's pending output; clears the buffer (keeping
/// its capacity — the reuse invariant) once fully drained.
fn flush_out(conn: &mut Conn) -> io::Result<()> {
    if !conn.has_pending_out() {
        return Ok(());
    }
    let w = write_some(&mut conn.stream, &conn.out[conn.out_pos..])?;
    conn.out_pos += w;
    if !conn.has_pending_out() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    Ok(())
}

/// Encodes `reply` through the shared scratch and sends it: straight to
/// the socket while no backlog exists, else appended to the
/// connection's write buffer (order preserved). `false` = connection
/// is dead.
fn queue_reply(conn: &mut Conn, reply: &Frame, ebuf: &mut Vec<u8>) -> bool {
    if encode_into(reply, ebuf).is_err() {
        return false;
    }
    if conn.has_pending_out() {
        conn.out.extend_from_slice(ebuf);
        return true;
    }
    match write_some(&mut conn.stream, ebuf) {
        Ok(w) if w == ebuf.len() => true,
        Ok(w) => {
            conn.out.extend_from_slice(&ebuf[w..]);
            true
        }
        Err(_) => false,
    }
}

/// Decodes and answers every complete frame buffered on the connection.
/// `false` = connection is dead (write failure).
fn drain_frames(shared: &Shared, conn: &mut Conn, ebuf: &mut Vec<u8>) -> bool {
    while !conn.close_after_flush {
        match conn.decoder.next_frame() {
            Ok(Some(frame)) => match handle_conn_frame(shared, frame, &mut conn.ctx) {
                Outcome::Reply(reply) => {
                    if !queue_reply(conn, &reply, ebuf) {
                        return false;
                    }
                }
                Outcome::ReplyThenClose(reply) => {
                    let _ = queue_reply(conn, &reply, ebuf);
                    conn.close_after_flush = true;
                }
            },
            Ok(None) => break,
            Err(e) => {
                shared.counters.update(|c| c.decode_errors += 1);
                let reply = Frame::Error {
                    code: ErrorCode::BadFrame,
                    detail: e.to_string(),
                };
                if !queue_reply(conn, &reply, ebuf) {
                    return false;
                }
                if e.is_fatal() {
                    conn.close_after_flush = true;
                }
            }
        }
    }
    true
}

/// Handles one readiness event for a connection. `false` = close now.
fn process_conn(
    shared: &Shared,
    conn: &mut Conn,
    readiness: u32,
    rbuf: &mut [u8],
    ebuf: &mut Vec<u8>,
) -> bool {
    if readiness & EPOLLERR != 0 {
        return false;
    }
    if readiness & EPOLLOUT != 0 && flush_out(conn).is_err() {
        return false;
    }
    if !conn.close_after_flush && readiness & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0 {
        loop {
            match conn.stream.read(rbuf) {
                Ok(0) => return false, // peer closed
                Ok(n) => {
                    conn.decoder.push(&rbuf[..n]);
                    if !drain_frames(shared, conn, ebuf) {
                        return false;
                    }
                    if conn.close_after_flush {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }
    // A closing connection with nothing left to flush is done.
    !conn.close_after_flush || conn.has_pending_out()
}

/// Re-registers the connection when its `EPOLLOUT` need changed.
fn sync_interest(ep: &Epoll, conn: &mut Conn, fd: RawFd) {
    let wants_write = conn.has_pending_out();
    if wants_write != conn.registered_writable {
        let mut interest = EPOLLIN | EPOLLRDHUP;
        if wants_write {
            interest |= EPOLLOUT;
        }
        if ep.modify(fd, interest, fd as u64).is_ok() {
            conn.registered_writable = wants_write;
        }
    }
}

fn close_conn(ep: &Epoll, conns: &mut HashMap<RawFd, Conn>, fd: RawFd, shared: &Shared) {
    let _ = ep.delete(fd);
    if conns.remove(&fd).is_some() {
        shared.active_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Accepts every pending connection, refusing beyond `max_conns` with a
/// best-effort `Error { ConnLimit }`.
fn accept_ready(
    shared: &Shared,
    listener: &TcpListener,
    ep: &Epoll,
    conns: &mut HashMap<RawFd, Conn>,
    max_conns: usize,
    ebuf: &mut Vec<u8>,
) {
    loop {
        match accept_nonblocking(listener) {
            Ok(Some(mut stream)) => {
                if conns.len() >= max_conns {
                    shared.counters.update(|c| c.conn_rejects += 1);
                    let reject = Frame::Error {
                        code: ErrorCode::ConnLimit,
                        detail: format!("server is at its connection cap ({max_conns})"),
                    };
                    if encode_into(&reject, ebuf).is_ok() {
                        let _ = write_some(&mut stream, ebuf);
                    }
                    continue; // drop closes
                }
                let _ = stream.set_nodelay(true);
                let fd = stream.as_raw_fd();
                if ep.add(fd, EPOLLIN | EPOLLRDHUP, fd as u64).is_err() {
                    continue;
                }
                conns.insert(fd, Conn::new(stream));
                shared.active_conns.fetch_add(1, Ordering::Relaxed);
            }
            Ok(None) => break,
            Err(_) => break,
        }
    }
}

/// The event loop. Runs until [`Shared::shutting_down`]; the shutdown
/// path wakes it with a throwaway connection (and the 50 ms wait
/// timeout bounds the latency regardless).
pub(crate) fn run_event_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    max_conns: usize,
) -> io::Result<()> {
    let ep = Epoll::new()?;
    let listen_fd = listener.as_raw_fd();
    let listen_token = listen_fd as u64;
    ep.add(listen_fd, EPOLLIN, listen_token)?;

    let mut conns: HashMap<RawFd, Conn> = HashMap::new();
    let mut events = vec![EpollEvent::zeroed(); 1024];
    let mut rbuf = vec![0u8; 64 * 1024];
    let mut ebuf: Vec<u8> = Vec::with_capacity(4096);

    loop {
        let n = ep.wait(&mut events, 50)?;
        if shared.shutting_down() {
            break;
        }
        // Connection events first, accepts second: a fd closed in this
        // batch can then never be reused (by an accept) while stale
        // readiness for its previous owner is still queued behind it.
        for ev in &events[..n] {
            let token = ev.token();
            if token == listen_token {
                continue;
            }
            let fd = token as RawFd;
            let Some(conn) = conns.get_mut(&fd) else {
                continue;
            };
            if process_conn(shared, conn, ev.readiness(), &mut rbuf, &mut ebuf) {
                sync_interest(&ep, conn, fd);
            } else {
                close_conn(&ep, &mut conns, fd, shared);
            }
        }
        for ev in &events[..n] {
            if ev.token() == listen_token {
                accept_ready(shared, listener, &ep, &mut conns, max_conns, &mut ebuf);
            }
        }
        // Periodic checkpoint hook — the epoll analogue of the threaded
        // backend's checkpointer thread (same sink, same interval
        // gating, same format; the 50 ms wait timeout bounds how stale
        // the check can get on an idle server).
        shared.checkpoint_if_due();
    }
    // Dropping the map closes every connection; queued batches are
    // drained by the ingest workers after this thread exits.
    let count = conns.len() as u64;
    drop(conns);
    shared.active_conns.fetch_sub(count, Ordering::Relaxed);
    Ok(())
}
