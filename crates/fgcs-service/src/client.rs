//! Blocking service client with capped-backoff reconnection.
//!
//! Reconnection reuses the testbed supervisor's semantics
//! ([`SupervisorConfig`]): retry with exponential backoff doubling from
//! `backoff_base_secs` up to `backoff_cap_secs`, give up after
//! `max_retries` consecutive failures, and reset the attempt counter
//! once a connection stays healthy. Tests scale the backoff unit down
//! to milliseconds via [`ClientConfig::backoff_unit_ms`].

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use fgcs_core::backoff::BackoffPolicy;
use fgcs_testbed::SupervisorConfig;
use fgcs_wire::{Decoder, ErrorCode, Frame};

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:4715`.
    pub addr: String,
    /// Retry/backoff policy (the `*_secs` fields are multiplied by
    /// [`ClientConfig::backoff_unit_ms`]).
    pub sup: SupervisorConfig,
    /// Milliseconds per supervisor "second". 1000 gives the literal
    /// testbed policy; tests use 1 to keep retries fast.
    pub backoff_unit_ms: u64,
    /// Read timeout per reply, ms.
    pub read_timeout_ms: u64,
    /// Auth token presented (as the first frame) on every connect and
    /// reconnect; `None` sends no `Auth` frame. A server rejection
    /// surfaces as `PermissionDenied` and is never retried — backoff
    /// cannot fix a wrong secret.
    pub token: Option<String>,
}

impl ClientConfig {
    /// Defaults for `addr`: testbed supervisor policy, 1 s backoff
    /// unit, 5 s reply timeout, no auth token.
    pub fn new(addr: impl Into<String>) -> Self {
        ClientConfig {
            addr: addr.into(),
            sup: SupervisorConfig::default(),
            backoff_unit_ms: 1_000,
            read_timeout_ms: 5_000,
            token: None,
        }
    }

    /// The supervisor policy expressed in milliseconds, for the shared
    /// backoff helper.
    fn backoff_ms(&self) -> BackoffPolicy {
        BackoffPolicy {
            base: self
                .sup
                .backoff_base_secs
                .saturating_mul(self.backoff_unit_ms),
            cap: self
                .sup
                .backoff_cap_secs
                .saturating_mul(self.backoff_unit_ms),
        }
    }
}

/// A blocking request/reply client. Every request sends one frame and
/// waits for exactly one reply, transparently reconnecting (with
/// capped backoff) on connection failure.
///
/// Reconnect-and-resend gives *at-least-once* delivery: if the
/// connection dies after the server processed a request but before the
/// reply arrived, the retry delivers it again. Idempotent queries don't
/// care; sample batches would be double-ingested, which the detector
/// tolerates (duplicate timestamps are not out-of-order) but accounting
/// tests avoid by not killing connections mid-stream.
pub struct ServiceClient {
    cfg: ClientConfig,
    stream: Option<TcpStream>,
    decoder: Decoder,
    /// Successful reconnections performed (first connect excluded).
    pub reconnects: u64,
    /// Time of the last successful connect, for the healthy-reset rule.
    connected_at: Option<Instant>,
    ever_connected: bool,
}

impl ServiceClient {
    /// Connects to the server, retrying with capped backoff per
    /// `cfg.sup`. Fails only after `max_retries` consecutive failures.
    pub fn connect(cfg: ClientConfig) -> io::Result<Self> {
        let mut client = ServiceClient {
            cfg,
            stream: None,
            decoder: Decoder::new(),
            reconnects: 0,
            connected_at: None,
            ever_connected: false,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Drops the current connection without telling the server — a
    /// fault-injection hook: the next request must transparently
    /// reconnect.
    pub fn force_disconnect(&mut self) {
        self.stream = None;
        self.decoder = Decoder::new();
    }

    /// True while a TCP connection is held.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn ensure_connected(&mut self) -> io::Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut attempts: u32 = 0;
        loop {
            let attempt = TcpStream::connect(&self.cfg.addr).and_then(|stream| {
                stream.set_read_timeout(Some(Duration::from_millis(
                    self.cfg.read_timeout_ms.max(10),
                )))?;
                let _ = stream.set_nodelay(true);
                self.stream = Some(stream);
                self.decoder = Decoder::new();
                self.authenticate()
            });
            match attempt {
                Ok(()) => {
                    if self.ever_connected {
                        self.reconnects += 1;
                    }
                    self.ever_connected = true;
                    self.connected_at = Some(Instant::now());
                    return Ok(());
                }
                // A typed auth rejection is terminal; backoff cannot
                // fix a wrong secret.
                Err(e) if e.kind() == io::ErrorKind::PermissionDenied => return Err(e),
                Err(e) => {
                    // A connection that stayed healthy long enough earns
                    // its retry budget back, as in the testbed supervisor.
                    // The credit is *consumed* (`take`): `elapsed()`
                    // keeps growing after the stream died, so keeping
                    // `connected_at` around would reset the budget on
                    // every failed attempt and the client would retry a
                    // dead server forever instead of giving up.
                    let healthy_ms = self
                        .cfg
                        .sup
                        .healthy_reset_secs
                        .saturating_mul(self.cfg.backoff_unit_ms);
                    if attempts > 0
                        && self
                            .connected_at
                            .take()
                            .is_some_and(|t| t.elapsed() >= Duration::from_millis(healthy_ms))
                    {
                        attempts = 0;
                    }
                    attempts += 1;
                    if attempts > self.cfg.sup.max_retries {
                        return Err(e);
                    }
                    let delay_ms = self.cfg.backoff_ms().delay(attempts);
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
            }
        }
    }

    /// Presents the configured auth token on a fresh connection; no-op
    /// without one. A typed `Unauthorized` rejection becomes
    /// `PermissionDenied` (terminal — see [`ClientConfig::token`]); any
    /// transport failure drops the stream so a retry reconnects.
    fn authenticate(&mut self) -> io::Result<()> {
        let Some(token) = self.cfg.token.clone() else {
            return Ok(());
        };
        let bytes = Frame::Auth { token }
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let reply = match self.exchange(&bytes) {
            Ok(reply) => reply,
            Err(e) => {
                self.force_disconnect();
                return Err(e);
            }
        };
        match reply {
            Frame::Ack { .. } => Ok(()),
            Frame::Error { code, detail } => {
                self.force_disconnect();
                let kind = if code == ErrorCode::Unauthorized {
                    io::ErrorKind::PermissionDenied
                } else {
                    io::ErrorKind::ConnectionRefused
                };
                Err(io::Error::new(kind, format!("auth rejected: {detail}")))
            }
            other => {
                self.force_disconnect();
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected reply to Auth: tag {}", other.tag()),
                ))
            }
        }
    }

    /// Sends one frame and waits for its reply.
    pub fn request(&mut self, frame: &Frame) -> io::Result<Frame> {
        let bytes = frame
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.request_encoded(&bytes)
    }

    /// Sends pre-encoded bytes (possibly deliberately corrupted — the
    /// load generator's fault path) and waits for one reply frame.
    pub fn request_encoded(&mut self, bytes: &[u8]) -> io::Result<Frame> {
        let mut attempts: u32 = 0;
        loop {
            match self.try_request(bytes) {
                Ok(frame) => return Ok(frame),
                // A typed auth rejection is terminal: retrying resends
                // the same wrong token.
                Err(e) if e.kind() == io::ErrorKind::PermissionDenied => return Err(e),
                Err(e) => {
                    // The connection is suspect; rebuild it and retry
                    // the whole request.
                    self.force_disconnect();
                    attempts += 1;
                    if attempts > self.cfg.sup.max_retries {
                        return Err(e);
                    }
                    let delay_ms = self.cfg.backoff_ms().delay(attempts);
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
            }
        }
    }

    fn try_request(&mut self, bytes: &[u8]) -> io::Result<Frame> {
        self.ensure_connected()?;
        self.exchange(bytes)
    }

    /// Writes pre-framed bytes on the held stream and reads one reply.
    fn exchange(&mut self, bytes: &[u8]) -> io::Result<Frame> {
        let stream = self.stream.as_mut().expect("connected");
        stream.write_all(bytes)?;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(e) => {
                    // The server sent something undecodable; the
                    // connection state is unknowable. Surface as I/O.
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
            }
            let n = self.stream.as_mut().expect("connected").read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before replying",
                ));
            }
            self.decoder.push(&buf[..n]);
        }
    }
}
