//! Backend-independent per-connection frame handling.
//!
//! Both the threaded backend and the epoll readiness loop feed every
//! decoded frame through [`handle_conn_frame`], so request semantics —
//! auth gating, shed accounting, query answers, the one-reply-per-frame
//! identity — are a single code path and cannot drift between backends.

use fgcs_wire::{ErrorCode, Frame, WireTransition, MAX_TRANSITIONS_PER_FRAME};

use crate::state::{Batch, Shared};

/// Per-connection protocol state, owned by whichever backend runs the
/// connection.
#[derive(Debug, Default)]
pub(crate) struct ConnCtx {
    /// Batches accepted on this connection, echoed in `Ack`.
    pub ack_seq: u64,
    /// Whether the stream has presented a valid auth token (always
    /// `false` until then; irrelevant when the server has no token).
    pub authed: bool,
}

/// What to do with a handled frame's reply.
#[derive(Debug)]
pub(crate) enum Outcome {
    /// Write the reply; keep the connection.
    Reply(Frame),
    /// Write the reply, then close the connection (auth failures).
    ReplyThenClose(Frame),
}

/// Handles one decoded frame: auth gate first, then the request
/// dispatch. Exactly one reply per frame, always.
pub(crate) fn handle_conn_frame(shared: &Shared, frame: Frame, ctx: &mut ConnCtx) -> Outcome {
    if let Some(expected) = &shared.cfg.auth_token {
        if !ctx.authed {
            return match frame {
                Frame::Auth { ref token } if token == expected => {
                    ctx.authed = true;
                    Outcome::Reply(Frame::Ack { seq: 0 })
                }
                Frame::Auth { .. } => {
                    shared.counters.update(|c| c.auth_rejects += 1);
                    Outcome::ReplyThenClose(Frame::Error {
                        code: ErrorCode::Unauthorized,
                        detail: "auth token mismatch".to_string(),
                    })
                }
                _ => {
                    shared.counters.update(|c| c.auth_rejects += 1);
                    Outcome::ReplyThenClose(Frame::Error {
                        code: ErrorCode::Unauthorized,
                        detail: "authenticate before sending requests".to_string(),
                    })
                }
            };
        }
    }
    if let Frame::Auth { .. } = frame {
        // Re-auth on an authed stream, or auth to an open server:
        // harmless, acknowledged, not counted as a batch.
        return Outcome::Reply(Frame::Ack { seq: 0 });
    }
    Outcome::Reply(handle_request(shared, frame, ctx))
}

/// The request dispatch (post-auth). Formerly `server::handle_frame`.
fn handle_request(shared: &Shared, frame: Frame, ctx: &mut ConnCtx) -> Frame {
    match frame {
        Frame::SampleBatch { machine, samples } => {
            let mut queue = shared.queue.lock().unwrap();
            let shed = queue.push(Batch { machine, samples });
            drop(queue);
            shared.queue_cv.notify_one();
            match shed {
                Some(victim) => {
                    // One locked update, so a concurrent stats read can
                    // never see the shed batch without its samples.
                    let total = shared.counters.update(|c| {
                        c.shed_batches += 1;
                        c.shed_samples += victim.samples.len() as u64;
                        c.busy_replies += 1;
                        c.busy_replies
                    });
                    // The arriving batch *was* accepted; Busy tells the
                    // producer the queue overflowed and sheds happened.
                    Frame::Busy {
                        shed_batches: total,
                    }
                }
                None => {
                    ctx.ack_seq += 1;
                    Frame::Ack { seq: ctx.ack_seq }
                }
            }
        }
        Frame::QueryAvail { machine, horizon } => {
            let Some(cell) = shared.machine_get(machine) else {
                return Frame::Error {
                    code: ErrorCode::UnknownMachine,
                    detail: format!("machine {machine} has not streamed any samples"),
                };
            };
            let (state, last_t, available) = {
                let m = cell.lock().unwrap();
                (m.state(), m.last_t(), m.is_available())
            };
            let prob = if available {
                shared
                    .online
                    .lock()
                    .unwrap()
                    .predict(machine, last_t, horizon)
            } else {
                // Currently inside an unavailability occurrence: the
                // window cannot be failure-free.
                0.0
            };
            shared.counters.update(|c| c.queries_answered += 1);
            Frame::AvailReply {
                machine,
                state: state.code(),
                prob,
            }
        }
        Frame::Place { job_len } => {
            // Rank currently harvestable machines (available, no spike
            // pending) by predicted survival over the job length; the
            // sorted collection makes ties deterministic (lowest id
            // wins).
            let candidates: Vec<u32> = shared
                .machines_sorted()
                .into_iter()
                .filter(|(_, cell)| {
                    let m = cell.lock().unwrap();
                    m.is_available() && !m.spike_active()
                })
                .map(|(id, _)| id)
                .collect();
            let online = shared.online.lock().unwrap();
            let now = online.horizon();
            let mut best: Option<(u32, f64)> = None;
            for id in candidates {
                let p = online.predict(id, now, job_len);
                if best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((id, p));
                }
            }
            drop(online);
            shared.counters.update(|c| c.placements_answered += 1);
            match best {
                Some((machine, prob)) => Frame::PlaceReply {
                    machine: Some(machine),
                    prob,
                },
                None => Frame::PlaceReply {
                    machine: None,
                    prob: 0.0,
                },
            }
        }
        Frame::QueryStats => Frame::StatsReply(shared.stats_snapshot()),
        Frame::QueryTransitions {
            machine,
            since_seq,
            max,
        } => {
            let Some(cell) = shared.machine_get(machine) else {
                return Frame::Error {
                    code: ErrorCode::UnknownMachine,
                    detail: format!("machine {machine} has not streamed any samples"),
                };
            };
            let cap = (max as usize).min(MAX_TRANSITIONS_PER_FRAME);
            let transitions: Vec<WireTransition> = cell
                .lock()
                .unwrap()
                .transitions()
                .iter()
                .filter(|t| t.seq >= since_seq)
                .take(cap)
                .copied()
                .collect();
            Frame::Transitions {
                machine,
                transitions,
            }
        }
        // Server-to-client frames arriving at the server are protocol
        // misuse, answered (once) rather than dropped.
        other => Frame::Error {
            code: ErrorCode::Unsupported,
            detail: format!("frame tag {} is not a request", other.tag()),
        },
    }
}
