//! Backend-independent per-connection frame handling.
//!
//! Both the threaded backend and the epoll readiness loop feed every
//! decoded frame through [`handle_conn_frame`], so request semantics —
//! auth gating, shed accounting, query answers, the one-reply-per-frame
//! identity — are a single code path and cannot drift between backends.

use fgcs_wire::{
    ErrorCode, Frame, WireTransition, MAX_REPL_SNAPSHOT_BYTES, MAX_TRANSITIONS_PER_FRAME,
};

use crate::repl::PullReply;
use crate::snapshot;
use crate::state::{Batch, Shared};

/// Per-connection protocol state, owned by whichever backend runs the
/// connection.
#[derive(Debug, Default)]
pub(crate) struct ConnCtx {
    /// Batches accepted on this connection, echoed in `Ack`.
    pub ack_seq: u64,
    /// Whether the stream has presented a valid auth token (always
    /// `false` until then; irrelevant when the server has no token).
    pub authed: bool,
}

/// What to do with a handled frame's reply.
#[derive(Debug)]
pub(crate) enum Outcome {
    /// Write the reply; keep the connection.
    Reply(Frame),
    /// Write the reply, then close the connection (auth failures).
    ReplyThenClose(Frame),
}

/// Where a connection's sample batches go — the one point where the
/// backends' ingest paths diverge.
pub(crate) enum IngestSink<'a> {
    /// The shared bounded queue drained by the worker pool (threaded
    /// backend). Overflow sheds the *oldest* queued batch.
    Queue,
    /// Loop-owned ingest (epoll backend): batches for shards this loop
    /// owns are ingested inline; others are forwarded to their home
    /// loop over an SPSC ring. A full ring sheds the *arriving* batch —
    /// forwarded work is never reordered or dropped once accepted.
    #[cfg(target_os = "linux")]
    Loop(&'a mut crate::epoll::LoopRouter),
    /// Unused; keeps the lifetime parameter on non-Linux builds.
    #[cfg(not(target_os = "linux"))]
    Phantom(std::marker::PhantomData<&'a ()>),
}

/// Handles one decoded frame: auth gate first, then the request
/// dispatch. Exactly one reply per frame, always.
pub(crate) fn handle_conn_frame(
    shared: &Shared,
    frame: Frame,
    ctx: &mut ConnCtx,
    sink: &mut IngestSink<'_>,
) -> Outcome {
    if let Some(expected) = &shared.cfg.auth_token {
        if !ctx.authed {
            return match frame {
                Frame::Auth { ref token } if token == expected => {
                    ctx.authed = true;
                    Outcome::Reply(Frame::Ack { seq: 0 })
                }
                Frame::Auth { .. } => {
                    shared.counters.update(|c| c.auth_rejects += 1);
                    Outcome::ReplyThenClose(Frame::Error {
                        code: ErrorCode::Unauthorized,
                        detail: "auth token mismatch".to_string(),
                    })
                }
                _ => {
                    shared.counters.update(|c| c.auth_rejects += 1);
                    Outcome::ReplyThenClose(Frame::Error {
                        code: ErrorCode::Unauthorized,
                        detail: "authenticate before sending requests".to_string(),
                    })
                }
            };
        }
    }
    if let Frame::Auth { .. } = frame {
        // Re-auth on an authed stream, or auth to an open server:
        // harmless, acknowledged, not counted as a batch.
        return Outcome::Reply(Frame::Ack { seq: 0 });
    }
    Outcome::Reply(handle_request(shared, frame, ctx, sink))
}

/// The request dispatch (post-auth). Formerly `server::handle_frame`.
fn handle_request(
    shared: &Shared,
    frame: Frame,
    ctx: &mut ConnCtx,
    sink: &mut IngestSink<'_>,
) -> Frame {
    match frame {
        Frame::SampleBatch { machine, samples } => {
            if !shared.is_primary() {
                // A fault-aware client treats this as a routing signal:
                // close, re-resolve the shard's endpoint, resend there.
                return Frame::Error {
                    code: ErrorCode::NotPrimary,
                    detail: "node is a follower; send ingest to the primary".to_string(),
                };
            }
            let batch = Batch { machine, samples };
            let shed = match sink {
                IngestSink::Queue => {
                    let mut queue = shared.lock_queue();
                    let shed = queue.push(batch);
                    drop(queue);
                    shared.queue_cv.notify_one();
                    shed
                }
                #[cfg(target_os = "linux")]
                IngestSink::Loop(router) => router.submit(shared, batch),
                #[cfg(not(target_os = "linux"))]
                IngestSink::Phantom(_) => unreachable!("phantom sink is never constructed"),
            };
            match shed {
                Some(victim) => {
                    // One locked update, so a concurrent stats read can
                    // never see the shed batch without its samples.
                    let total = shared.counters.update(|c| {
                        c.shed_batches += 1;
                        c.shed_samples += victim.samples.len() as u64;
                        c.busy_replies += 1;
                        c.busy_replies
                    });
                    // Queue sink: the arriving batch *was* accepted and
                    // the oldest queued one shed. Loop sink: a full
                    // forwarding ring shed the arriving batch itself.
                    // Either way Busy tells the producer the server
                    // overflowed and exactly one batch was lost.
                    Frame::Busy {
                        shed_batches: total,
                    }
                }
                None => {
                    ctx.ack_seq += 1;
                    Frame::Ack { seq: ctx.ack_seq }
                }
            }
        }
        Frame::QueryAvail { machine, horizon } => {
            if let Some(err) = read_staleness_gate(shared) {
                return err;
            }
            let Some(cell) = shared.machine_get(machine) else {
                return Frame::Error {
                    code: ErrorCode::UnknownMachine,
                    detail: format!("machine {machine} has not streamed any samples"),
                };
            };
            // A poisoned machine lock (a panic mid-ingest) must degrade
            // to a typed error on this one machine, not panic the
            // connection — in the epoll backend that panic would take
            // the whole event loop, and every other machine, with it.
            let Ok(m) = cell.lock() else {
                return poisoned_machine(machine);
            };
            let (state, last_t, available) = (m.state(), m.last_t(), m.is_available());
            drop(m);
            let prob = if available {
                shared
                    .lock_online()
                    .predict_machine(machine, last_t, horizon)
            } else {
                // Currently inside an unavailability occurrence: the
                // window cannot be failure-free.
                0.0
            };
            shared.counters.update(|c| c.queries_answered += 1);
            Frame::AvailReply {
                machine,
                state: state.code(),
                prob,
            }
        }
        Frame::Place { job_len } => {
            if let Some(err) = read_staleness_gate(shared) {
                return err;
            }
            // Rank currently harvestable machines (available, no spike
            // pending) by predicted survival over the job length; the
            // sorted collection makes ties deterministic (lowest id
            // wins).
            let candidates: Vec<u32> = shared
                .machines_sorted()
                .into_iter()
                .filter(|(_, cell)| {
                    // A poisoned cell is simply not placeable.
                    cell.lock()
                        .map(|m| m.is_available() && !m.spike_active())
                        .unwrap_or(false)
                })
                .map(|(id, _)| id)
                .collect();
            let online = shared.lock_online();
            let now = online.horizon();
            let mut best: Option<(u32, f64)> = None;
            for id in candidates {
                let p = online.predict_machine(id, now, job_len);
                if best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((id, p));
                }
            }
            drop(online);
            shared.counters.update(|c| c.placements_answered += 1);
            match best {
                Some((machine, prob)) => Frame::PlaceReply {
                    machine: Some(machine),
                    prob,
                },
                None => Frame::PlaceReply {
                    machine: None,
                    prob: 0.0,
                },
            }
        }
        Frame::QueryStats => {
            if let Some(err) = read_staleness_gate(shared) {
                return err;
            }
            Frame::StatsReply(shared.stats_snapshot())
        }
        Frame::ReplPull {
            after_seq,
            max_entries,
            epoch,
        } => {
            // Fencing first: a pull carrying a strictly higher epoch
            // proves a newer primary exists. If this node still
            // thought it was one (paused through a failover, then
            // revived), demote it on the spot and answer `NotPrimary`
            // — the reply is the fencer's confirmation.
            if shared.fence_if_superseded(epoch) {
                eprintln!(
                    "fgcs-service: {} demoted to follower: fenced by a newer \
                     primary at epoch {epoch}",
                    shared.cfg.addr
                );
                return Frame::Error {
                    code: ErrorCode::NotPrimary,
                    detail: format!("fenced: superseded by epoch {epoch}"),
                };
            }
            if !shared.repl.enabled() {
                return Frame::Error {
                    code: ErrorCode::Unsupported,
                    detail: "replication log disabled; start the server with --repl-log"
                        .to_string(),
                };
            }
            // A pull for `after_seq = N` doubles as the follower's ack
            // that everything through N is applied.
            shared.repl.note_ack(after_seq);
            match shared.repl.pull(after_seq, max_entries as usize) {
                PullReply::Entries { head_seq, entries } => Frame::ReplEntries {
                    head_seq,
                    epoch: shared.epoch(),
                    lease_ms: shared.cfg.lease_ms,
                    entries,
                },
                PullReply::NeedSnapshot => {
                    let data = shared.collect_snapshot();
                    let repl_seq = data.repl_seq;
                    let bytes = snapshot::serialize_snapshot(&data).into_bytes();
                    if bytes.len() > MAX_REPL_SNAPSHOT_BYTES {
                        // The state has outgrown single-frame resync;
                        // the log must be sized so followers never lag
                        // past its tail (DESIGN.md §13).
                        return Frame::Error {
                            code: ErrorCode::Unsupported,
                            detail: format!(
                                "state too large for snapshot resync ({} bytes); \
                                 raise --repl-log so followers never need one",
                                bytes.len()
                            ),
                        };
                    }
                    Frame::ReplSnapshot { repl_seq, bytes }
                }
            }
        }
        Frame::ReplStatus => {
            let st = shared.repl.status();
            Frame::ReplStatusReply {
                role: shared.role_code(),
                epoch: shared.epoch(),
                applied_seq: st.head_seq,
                head_seq: st.head_seq,
                tail_seq: st.tail_seq,
                acked_seq: st.acked_seq,
                log_len: st.len,
            }
        }
        Frame::Promote => {
            shared.promote();
            Frame::Ack { seq: 0 }
        }
        Frame::QueryTransitions {
            machine,
            since_seq,
            max,
        } => {
            let Some(cell) = shared.machine_get(machine) else {
                return Frame::Error {
                    code: ErrorCode::UnknownMachine,
                    detail: format!("machine {machine} has not streamed any samples"),
                };
            };
            let cap = (max as usize).min(MAX_TRANSITIONS_PER_FRAME);
            let Ok(m) = cell.lock() else {
                return poisoned_machine(machine);
            };
            let transitions: Vec<WireTransition> = m
                .transitions()
                .iter()
                .filter(|t| t.seq >= since_seq)
                .take(cap)
                .copied()
                .collect();
            drop(m);
            Frame::Transitions {
                machine,
                transitions,
            }
        }
        // Server-to-client frames arriving at the server are protocol
        // misuse, answered (once) rather than dropped.
        other => Frame::Error {
            code: ErrorCode::Unsupported,
            detail: format!("frame tag {} is not a request", other.tag()),
        },
    }
}

/// The follower-read staleness bound (DESIGN.md §13.5). Primaries and
/// unbounded followers (`max_read_lag` unset) always pass. A bounded
/// follower answers reads only while its applied head is within the
/// configured lag of the newest primary head its pull loop has seen —
/// otherwise (including before the first successful pull, and forever
/// after a divergence tripwire) the client gets `TooStale` and should
/// retry against the primary.
/// Typed reply for a machine whose lock was poisoned by an earlier
/// panic: the one machine is unusable, the server is not.
fn poisoned_machine(machine: u32) -> Frame {
    Frame::Error {
        code: ErrorCode::Internal,
        detail: format!("machine {machine} state is poisoned by an earlier panic"),
    }
}

fn read_staleness_gate(shared: &Shared) -> Option<Frame> {
    if shared.is_primary() {
        return None;
    }
    let Some(cap) = shared.cfg.max_read_lag else {
        return None;
    };
    use std::sync::atomic::Ordering;
    // Stored as `head_seq + 1` so 0 still means "never pulled" even
    // when the primary's log is legitimately empty.
    let seen_raw = shared.primary_head_seen.load(Ordering::Acquire);
    let seen = seen_raw.saturating_sub(1);
    let applied = shared.repl.head_seq();
    let lag = seen.saturating_sub(applied);
    let frozen = shared.repl_failed.load(Ordering::Acquire);
    if frozen || seen_raw == 0 || lag > cap {
        return Some(Frame::Error {
            code: ErrorCode::TooStale,
            detail: format!(
                "follower lag {lag} exceeds the read bound {cap} \
                 (applied {applied} of {seen}{})",
                if frozen { "; replication stopped" } else { "" }
            ),
        });
    }
    None
}
