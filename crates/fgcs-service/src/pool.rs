//! A multiplexed outbound connection pool (Linux only): one thread
//! holding thousands of client connections as nonblocking state over
//! one epoll instance.
//!
//! This is the client-side twin of the server's readiness-loop backend,
//! extracted from the fan-in load generator so anything that needs wide
//! fan-out — the scaling driver today, cluster replication tomorrow —
//! shares one multiplexer. The pool is transport only: it owns sockets,
//! per-connection reassembly [`Decoder`]s and write buffers, and
//! surfaces whole [`Frame`]s; protocol state machines (handshakes,
//! pacing, retries) stay with the caller. [`crate::ServiceClient`] is
//! the one-connection blocking counterpart.
//!
//! Connections are addressed by *slot* (their index at
//! [`ClientPool::connect`] time). Slots never shift: a closed slot
//! stays closed, so callers can keep per-slot protocol state in a
//! parallel `Vec`.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::Instant;

use fgcs_sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use fgcs_wire::{encode_into, Decoder, Frame};

/// Why the pool closed a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolCloseReason {
    /// The peer closed the stream cleanly (EOF).
    Eof,
    /// A socket error (reset, broken pipe, `EPOLLERR`) or write
    /// failure.
    Err,
    /// The peer sent bytes that do not decode as a frame.
    Decode,
    /// A nonblocking connect ([`ClientPool::add`]) missed its deadline
    /// — the listener's accept queue is wedged or the host is
    /// blackholed, exactly the hang a blocking connect would sit in
    /// forever.
    ConnectTimeout,
}

/// One thing that happened during [`ClientPool::poll`].
#[derive(Debug)]
pub enum PoolEvent {
    /// A whole frame arrived on a connection.
    Frame {
        /// The connection's slot.
        slot: usize,
        /// The decoded frame.
        frame: Frame,
    },
    /// A slot opened with [`ClientPool::add`] finished its handshake
    /// and is ready (sends queued while connecting flush now).
    Connected {
        /// The connection's slot.
        slot: usize,
    },
    /// The pool closed a connection (its slot is now dead). Frames that
    /// arrived before the close are delivered first, in order.
    Closed {
        /// The connection's slot.
        slot: usize,
        /// Why it closed.
        reason: PoolCloseReason,
    },
}

struct PoolConn {
    stream: TcpStream,
    decoder: Decoder,
    /// Unflushed output (nonblocking writes that didn't finish).
    out: Vec<u8>,
    out_pos: usize,
    registered_writable: bool,
    /// `Some(deadline)` while a nonblocking connect is in flight; the
    /// socket reports the outcome via `SO_ERROR` when it turns
    /// writable, and [`ClientPool::poll`] times the attempt out at the
    /// deadline.
    connecting: Option<Instant>,
}

impl PoolConn {
    fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// A pool of nonblocking client connections multiplexed over one epoll
/// instance. See the module docs for the slot model.
pub struct ClientPool {
    ep: Epoll,
    conns: Vec<Option<PoolConn>>,
    open: usize,
    rbuf: Vec<u8>,
    ebuf: Vec<u8>,
}

fn write_some(stream: &mut TcpStream, buf: &[u8]) -> io::Result<usize> {
    let mut written = 0;
    while written < buf.len() {
        match stream.write(&buf[written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => return Err(e),
        }
    }
    Ok(written)
}

impl ClientPool {
    /// Opens `conns` connections to `addr`. A slot whose TCP connect is
    /// refused starts closed (no event is emitted for it) — check
    /// [`ClientPool::is_open`] after construction; the pool itself is
    /// only an error when epoll setup fails.
    pub fn connect(addr: &str, conns: usize) -> io::Result<ClientPool> {
        let mut pool = ClientPool::new()?;
        for slot in 0..conns {
            let Ok(stream) = TcpStream::connect(addr) else {
                pool.conns.push(None);
                continue;
            };
            let _ = stream.set_nodelay(true);
            stream.set_nonblocking(true)?;
            pool.ep
                .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, slot as u64)?;
            pool.conns.push(Some(PoolConn {
                stream,
                decoder: Decoder::new(),
                out: Vec::new(),
                out_pos: 0,
                registered_writable: false,
                connecting: None,
            }));
            pool.open += 1;
        }
        Ok(pool)
    }

    /// An empty pool; grow it with [`ClientPool::add`]. Only an error
    /// when epoll setup fails.
    pub fn new() -> io::Result<ClientPool> {
        Ok(ClientPool {
            ep: Epoll::new()?,
            conns: Vec::new(),
            open: 0,
            rbuf: vec![0u8; 64 * 1024],
            ebuf: Vec::with_capacity(4096),
        })
    }

    /// Opens one *nonblocking* connection to `addr` in a fresh slot and
    /// returns the slot index. Unlike [`ClientPool::connect`], the
    /// calling thread never blocks in the TCP handshake: the attempt
    /// resolves during [`ClientPool::poll`] as either
    /// [`PoolEvent::Connected`] or a `Closed` event — with
    /// [`PoolCloseReason::ConnectTimeout`] if the peer has not accepted
    /// within `connect_timeout_ms`. Frames sent while the slot is still
    /// connecting are buffered and flush on success.
    pub fn add(&mut self, addr: &str, connect_timeout_ms: u64) -> io::Result<usize> {
        use std::net::ToSocketAddrs;
        let slot = self.conns.len();
        let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("address {addr:?} resolves to nothing"),
            )
        })?;
        let (stream, _done) = fgcs_sys::connect_nonblocking(&sockaddr)?;
        let _ = stream.set_nodelay(true);
        // Registering EPOLLOUT even for an instantly-completed connect
        // keeps one code path: the socket is writable, the first poll
        // sees it, SO_ERROR confirms, Connected is emitted.
        self.ep
            .add(stream.as_raw_fd(), EPOLLOUT | EPOLLRDHUP, slot as u64)?;
        let deadline = Instant::now() + std::time::Duration::from_millis(connect_timeout_ms.max(1));
        self.conns.push(Some(PoolConn {
            stream,
            decoder: Decoder::new(),
            out: Vec::new(),
            out_pos: 0,
            registered_writable: true,
            connecting: Some(deadline),
        }));
        self.open += 1;
        Ok(slot)
    }

    /// Whether a slot's connection is still open.
    pub fn is_open(&self, slot: usize) -> bool {
        self.conns.get(slot).is_some_and(|c| c.is_some())
    }

    /// How many connections are currently open.
    pub fn open_count(&self) -> usize {
        self.open
    }

    /// The number of slots (open or closed).
    pub fn slots(&self) -> usize {
        self.conns.len()
    }

    /// Sends a frame on a slot, buffering whatever the nonblocking
    /// socket refuses (order preserved; the buffered tail flushes as
    /// the socket drains during [`ClientPool::poll`]). Returns `false`
    /// — and closes the slot — if the slot is already closed, encoding
    /// fails, or the socket is dead; no `Closed` event follows, the
    /// return value is the notification.
    pub fn send(&mut self, slot: usize, frame: &Frame) -> bool {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return false;
        };
        if encode_into(frame, &mut self.ebuf).is_err() {
            self.close(slot);
            return false;
        }
        if conn.connecting.is_some() || conn.has_pending_out() {
            // Not writable yet (or already backlogged): queue in order.
            conn.out.extend_from_slice(&self.ebuf);
        } else {
            match write_some(&mut conn.stream, &self.ebuf) {
                Ok(w) if w == self.ebuf.len() => {}
                Ok(w) => conn.out.extend_from_slice(&self.ebuf[w..]),
                Err(_) => {
                    self.close(slot);
                    return false;
                }
            }
        }
        self.sync_interest(slot);
        true
    }

    /// Closes a slot (idempotent). The slot stays dead; no event is
    /// emitted.
    pub fn close(&mut self, slot: usize) {
        if let Some(entry) = self.conns.get_mut(slot) {
            if let Some(conn) = entry.take() {
                let _ = self.ep.delete(conn.stream.as_raw_fd());
                self.open -= 1;
            }
        }
    }

    fn sync_interest(&mut self, slot: usize) {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return;
        };
        if conn.connecting.is_some() {
            // Interest stays EPOLLOUT until the handshake resolves.
            return;
        }
        let wants_write = conn.has_pending_out();
        if wants_write != conn.registered_writable {
            let mut interest = EPOLLIN | EPOLLRDHUP;
            if wants_write {
                interest |= EPOLLOUT;
            }
            if self
                .ep
                .modify(conn.stream.as_raw_fd(), interest, slot as u64)
                .is_ok()
            {
                conn.registered_writable = wants_write;
            }
        }
    }

    /// Waits up to `timeout_ms` for socket readiness and appends what
    /// happened to `out`: decoded frames in arrival order, and a
    /// `Closed` event for every connection that died (after its last
    /// frames). Returns how many events were appended.
    pub fn poll(&mut self, timeout_ms: i32, out: &mut Vec<PoolEvent>) -> io::Result<usize> {
        let mut events = [EpollEvent::zeroed(); 1024];
        // Never sleep past the nearest connect deadline: a hung peer
        // produces no readiness event, so the timeout is enforced by
        // waking up in time to notice it.
        let wait = self.clamp_to_connect_deadlines(timeout_ms);
        let n = self.ep.wait(&mut events, wait)?;
        let before = out.len();
        for ev in &events[..n] {
            let slot = ev.token() as usize;
            if let Some(reason) = self.process(slot, ev.readiness(), out) {
                self.close(slot);
                out.push(PoolEvent::Closed { slot, reason });
            } else {
                self.sync_interest(slot);
            }
        }
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let expired = matches!(
                &self.conns[slot],
                Some(c) if c.connecting.is_some_and(|d| d <= now)
            );
            if expired {
                self.close(slot);
                out.push(PoolEvent::Closed {
                    slot,
                    reason: PoolCloseReason::ConnectTimeout,
                });
            }
        }
        Ok(out.len() - before)
    }

    /// The epoll wait bound: `timeout_ms` (negative = infinite),
    /// clamped down to the soonest in-flight connect deadline.
    fn clamp_to_connect_deadlines(&self, timeout_ms: i32) -> i32 {
        let now = Instant::now();
        let nearest = self
            .conns
            .iter()
            .flatten()
            .filter_map(|c| c.connecting)
            .map(|d| {
                d.saturating_duration_since(now)
                    .as_millis()
                    .min(i32::MAX as u128) as i32
            })
            .min();
        match nearest {
            None => timeout_ms,
            Some(remaining) if timeout_ms < 0 => remaining,
            Some(remaining) => timeout_ms.min(remaining),
        }
    }

    /// Handles one readiness event. `Some(reason)` = close the slot.
    fn process(
        &mut self,
        slot: usize,
        readiness: u32,
        out: &mut Vec<PoolEvent>,
    ) -> Option<PoolCloseReason> {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return None; // stale event for an already-closed slot
        };
        if conn.connecting.is_some() {
            // Any readiness on a connecting socket resolves the
            // attempt; `SO_ERROR` is the verdict (writable + 0 =
            // established, otherwise the errno of the failed connect).
            match fgcs_sys::take_socket_error(conn.stream.as_raw_fd()) {
                Ok(None) => {
                    conn.connecting = None;
                    let mut interest = EPOLLIN | EPOLLRDHUP;
                    if conn.has_pending_out() {
                        interest |= EPOLLOUT;
                    }
                    if self
                        .ep
                        .modify(conn.stream.as_raw_fd(), interest, slot as u64)
                        .is_err()
                    {
                        return Some(PoolCloseReason::Err);
                    }
                    conn.registered_writable = conn.has_pending_out();
                    out.push(PoolEvent::Connected { slot });
                }
                _ => return Some(PoolCloseReason::Err),
            }
        }
        if readiness & EPOLLERR != 0 {
            return Some(PoolCloseReason::Err);
        }
        if readiness & EPOLLOUT != 0 {
            let flushed = (|| -> io::Result<()> {
                if !conn.has_pending_out() {
                    return Ok(());
                }
                let w = write_some(&mut conn.stream, &conn.out[conn.out_pos..])?;
                conn.out_pos += w;
                if !conn.has_pending_out() {
                    conn.out.clear();
                    conn.out_pos = 0;
                }
                Ok(())
            })();
            if flushed.is_err() {
                return Some(PoolCloseReason::Err);
            }
        }
        if readiness & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0 {
            loop {
                match conn.stream.read(&mut self.rbuf) {
                    Ok(0) => return Some(PoolCloseReason::Eof),
                    Ok(n) => {
                        conn.decoder.push(&self.rbuf[..n]);
                        loop {
                            match conn.decoder.next_frame() {
                                Ok(Some(frame)) => out.push(PoolEvent::Frame { slot, frame }),
                                Ok(None) => break,
                                Err(_) => return Some(PoolCloseReason::Decode),
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Some(PoolCloseReason::Err),
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Server, ServiceConfig};

    #[test]
    fn pool_multiplexes_requests_over_many_slots() {
        let server = Server::start(ServiceConfig {
            backend: Backend::Threads,
            ..Default::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();

        let mut pool = ClientPool::connect(&addr, 8).unwrap();
        assert_eq!(pool.open_count(), 8);
        assert_eq!(pool.slots(), 8);
        for slot in 0..8 {
            assert!(pool.is_open(slot));
            assert!(pool.send(slot, &Frame::QueryStats));
        }
        // Every slot gets exactly one StatsReply.
        let mut replies = vec![0usize; 8];
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while replies.iter().sum::<usize>() < 8 && std::time::Instant::now() < deadline {
            events.clear();
            pool.poll(50, &mut events).unwrap();
            for ev in &events {
                match ev {
                    // `connect` establishes slots blockingly, so no
                    // Connected events surface on this path.
                    PoolEvent::Connected { .. } => {}
                    PoolEvent::Frame { slot, frame } => {
                        assert!(matches!(frame, Frame::StatsReply(_)));
                        replies[*slot] += 1;
                    }
                    PoolEvent::Closed { slot, reason } => {
                        panic!("slot {slot} closed unexpectedly: {reason:?}")
                    }
                }
            }
        }
        assert_eq!(replies, vec![1; 8]);

        // Explicit close is idempotent and send-to-closed fails cleanly.
        pool.close(3);
        pool.close(3);
        assert!(!pool.is_open(3));
        assert_eq!(pool.open_count(), 7);
        assert!(!pool.send(3, &Frame::QueryStats));

        // A server-side close surfaces as a Closed event. Force one by
        // sending garbage the decoder rejects fatally: the server
        // replies BadFrame and closes, so the slot sees EOF (after the
        // error frame).
        server.shutdown();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut closed = 0;
        while closed < 7 && std::time::Instant::now() < deadline {
            events.clear();
            pool.poll(50, &mut events).unwrap();
            for ev in &events {
                if let PoolEvent::Closed { .. } = ev {
                    closed += 1;
                }
            }
        }
        assert_eq!(closed, 7, "shutdown closes every remaining slot");
        assert_eq!(pool.open_count(), 0);
    }

    #[test]
    fn add_connects_nonblocking_and_flushes_queued_sends() {
        let server = Server::start(ServiceConfig {
            backend: Backend::Threads,
            ..Default::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();

        let mut pool = ClientPool::new().unwrap();
        assert_eq!(pool.slots(), 0);
        let slot = pool.add(&addr, 2_000).unwrap();
        // Send *before* the handshake resolves: must queue, then flush.
        assert!(pool.send(slot, &Frame::QueryStats));

        let mut connected = false;
        let mut got_reply = false;
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !got_reply && std::time::Instant::now() < deadline {
            events.clear();
            pool.poll(50, &mut events).unwrap();
            for ev in &events {
                match ev {
                    PoolEvent::Connected { slot: s } => {
                        assert_eq!(*s, slot);
                        connected = true;
                    }
                    PoolEvent::Frame { slot: s, frame } => {
                        assert_eq!(*s, slot);
                        assert!(matches!(frame, Frame::StatsReply(_)));
                        assert!(connected, "Connected must precede the first frame");
                        got_reply = true;
                    }
                    PoolEvent::Closed { reason, .. } => {
                        panic!("slot closed unexpectedly: {reason:?}")
                    }
                }
            }
        }
        assert!(got_reply);
        server.shutdown();
    }

    #[test]
    fn hung_connect_times_out_at_the_slot_deadline() {
        // A listener that never accepts, with a minimal backlog that is
        // pre-filled: further SYNs sit unanswered, exactly the state a
        // blocking connect would hang in.
        let bind: std::net::SocketAddr = "127.0.0.1:0".parse().unwrap();
        let listener = fgcs_sys::listen_backlog(&bind, 1).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut fillers = Vec::new();
        for _ in 0..8 {
            if let Ok((s, _)) = fgcs_sys::connect_nonblocking(&addr) {
                fillers.push(s); // hold them open; never accepted
            }
        }

        let mut pool = ClientPool::new().unwrap();
        let slot = pool.add(&addr.to_string(), 300).unwrap();
        assert!(pool.is_open(slot), "slot exists while connecting");

        let started = std::time::Instant::now();
        let mut events = Vec::new();
        let mut reason = None;
        while reason.is_none() && started.elapsed() < std::time::Duration::from_secs(10) {
            events.clear();
            pool.poll(1_000, &mut events).unwrap();
            for ev in &events {
                match ev {
                    PoolEvent::Closed { slot: s, reason: r } => {
                        assert_eq!(*s, slot);
                        reason = Some(*r);
                    }
                    PoolEvent::Connected { .. } => {
                        panic!("a never-accepting backlog must not complete the connect")
                    }
                    PoolEvent::Frame { .. } => panic!("no frames expected"),
                }
            }
        }
        assert_eq!(reason, Some(PoolCloseReason::ConnectTimeout));
        // The deadline, not the 1 s poll timeout, bounded the wait.
        assert!(
            started.elapsed() < std::time::Duration::from_millis(900),
            "deadline must clamp the poll wait (took {:?})",
            started.elapsed()
        );
        assert!(!pool.is_open(slot));
    }
}
