//! A multiplexed outbound connection pool (Linux only): one thread
//! holding thousands of client connections as nonblocking state over
//! one epoll instance.
//!
//! This is the client-side twin of the server's readiness-loop backend,
//! extracted from the fan-in load generator so anything that needs wide
//! fan-out — the scaling driver today, cluster replication tomorrow —
//! shares one multiplexer. The pool is transport only: it owns sockets,
//! per-connection reassembly [`Decoder`]s and write buffers, and
//! surfaces whole [`Frame`]s; protocol state machines (handshakes,
//! pacing, retries) stay with the caller. [`crate::ServiceClient`] is
//! the one-connection blocking counterpart.
//!
//! Connections are addressed by *slot* (their index at
//! [`ClientPool::connect`] time). Slots never shift: a closed slot
//! stays closed, so callers can keep per-slot protocol state in a
//! parallel `Vec`.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;

use fgcs_sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use fgcs_wire::{encode_into, Decoder, Frame};

/// Why the pool closed a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolCloseReason {
    /// The peer closed the stream cleanly (EOF).
    Eof,
    /// A socket error (reset, broken pipe, `EPOLLERR`) or write
    /// failure.
    Err,
    /// The peer sent bytes that do not decode as a frame.
    Decode,
}

/// One thing that happened during [`ClientPool::poll`].
#[derive(Debug)]
pub enum PoolEvent {
    /// A whole frame arrived on a connection.
    Frame {
        /// The connection's slot.
        slot: usize,
        /// The decoded frame.
        frame: Frame,
    },
    /// The pool closed a connection (its slot is now dead). Frames that
    /// arrived before the close are delivered first, in order.
    Closed {
        /// The connection's slot.
        slot: usize,
        /// Why it closed.
        reason: PoolCloseReason,
    },
}

struct PoolConn {
    stream: TcpStream,
    decoder: Decoder,
    /// Unflushed output (nonblocking writes that didn't finish).
    out: Vec<u8>,
    out_pos: usize,
    registered_writable: bool,
}

impl PoolConn {
    fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// A pool of nonblocking client connections multiplexed over one epoll
/// instance. See the module docs for the slot model.
pub struct ClientPool {
    ep: Epoll,
    conns: Vec<Option<PoolConn>>,
    open: usize,
    rbuf: Vec<u8>,
    ebuf: Vec<u8>,
}

fn write_some(stream: &mut TcpStream, buf: &[u8]) -> io::Result<usize> {
    let mut written = 0;
    while written < buf.len() {
        match stream.write(&buf[written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => return Err(e),
        }
    }
    Ok(written)
}

impl ClientPool {
    /// Opens `conns` connections to `addr`. A slot whose TCP connect is
    /// refused starts closed (no event is emitted for it) — check
    /// [`ClientPool::is_open`] after construction; the pool itself is
    /// only an error when epoll setup fails.
    pub fn connect(addr: &str, conns: usize) -> io::Result<ClientPool> {
        let ep = Epoll::new()?;
        let mut pool = ClientPool {
            ep,
            conns: Vec::with_capacity(conns),
            open: 0,
            rbuf: vec![0u8; 64 * 1024],
            ebuf: Vec::with_capacity(4096),
        };
        for slot in 0..conns {
            let Ok(stream) = TcpStream::connect(addr) else {
                pool.conns.push(None);
                continue;
            };
            let _ = stream.set_nodelay(true);
            stream.set_nonblocking(true)?;
            pool.ep
                .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, slot as u64)?;
            pool.conns.push(Some(PoolConn {
                stream,
                decoder: Decoder::new(),
                out: Vec::new(),
                out_pos: 0,
                registered_writable: false,
            }));
            pool.open += 1;
        }
        Ok(pool)
    }

    /// Whether a slot's connection is still open.
    pub fn is_open(&self, slot: usize) -> bool {
        self.conns.get(slot).is_some_and(|c| c.is_some())
    }

    /// How many connections are currently open.
    pub fn open_count(&self) -> usize {
        self.open
    }

    /// The number of slots (open or closed).
    pub fn slots(&self) -> usize {
        self.conns.len()
    }

    /// Sends a frame on a slot, buffering whatever the nonblocking
    /// socket refuses (order preserved; the buffered tail flushes as
    /// the socket drains during [`ClientPool::poll`]). Returns `false`
    /// — and closes the slot — if the slot is already closed, encoding
    /// fails, or the socket is dead; no `Closed` event follows, the
    /// return value is the notification.
    pub fn send(&mut self, slot: usize, frame: &Frame) -> bool {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return false;
        };
        if encode_into(frame, &mut self.ebuf).is_err() {
            self.close(slot);
            return false;
        }
        if conn.has_pending_out() {
            conn.out.extend_from_slice(&self.ebuf);
        } else {
            match write_some(&mut conn.stream, &self.ebuf) {
                Ok(w) if w == self.ebuf.len() => {}
                Ok(w) => conn.out.extend_from_slice(&self.ebuf[w..]),
                Err(_) => {
                    self.close(slot);
                    return false;
                }
            }
        }
        self.sync_interest(slot);
        true
    }

    /// Closes a slot (idempotent). The slot stays dead; no event is
    /// emitted.
    pub fn close(&mut self, slot: usize) {
        if let Some(entry) = self.conns.get_mut(slot) {
            if let Some(conn) = entry.take() {
                let _ = self.ep.delete(conn.stream.as_raw_fd());
                self.open -= 1;
            }
        }
    }

    fn sync_interest(&mut self, slot: usize) {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return;
        };
        let wants_write = conn.has_pending_out();
        if wants_write != conn.registered_writable {
            let mut interest = EPOLLIN | EPOLLRDHUP;
            if wants_write {
                interest |= EPOLLOUT;
            }
            if self
                .ep
                .modify(conn.stream.as_raw_fd(), interest, slot as u64)
                .is_ok()
            {
                conn.registered_writable = wants_write;
            }
        }
    }

    /// Waits up to `timeout_ms` for socket readiness and appends what
    /// happened to `out`: decoded frames in arrival order, and a
    /// `Closed` event for every connection that died (after its last
    /// frames). Returns how many events were appended.
    pub fn poll(&mut self, timeout_ms: i32, out: &mut Vec<PoolEvent>) -> io::Result<usize> {
        let mut events = [EpollEvent::zeroed(); 1024];
        let n = self.ep.wait(&mut events, timeout_ms)?;
        let before = out.len();
        for ev in &events[..n] {
            let slot = ev.token() as usize;
            if let Some(reason) = self.process(slot, ev.readiness(), out) {
                self.close(slot);
                out.push(PoolEvent::Closed { slot, reason });
            } else {
                self.sync_interest(slot);
            }
        }
        Ok(out.len() - before)
    }

    /// Handles one readiness event. `Some(reason)` = close the slot.
    fn process(
        &mut self,
        slot: usize,
        readiness: u32,
        out: &mut Vec<PoolEvent>,
    ) -> Option<PoolCloseReason> {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return None; // stale event for an already-closed slot
        };
        if readiness & EPOLLERR != 0 {
            return Some(PoolCloseReason::Err);
        }
        if readiness & EPOLLOUT != 0 {
            let flushed = (|| -> io::Result<()> {
                if !conn.has_pending_out() {
                    return Ok(());
                }
                let w = write_some(&mut conn.stream, &conn.out[conn.out_pos..])?;
                conn.out_pos += w;
                if !conn.has_pending_out() {
                    conn.out.clear();
                    conn.out_pos = 0;
                }
                Ok(())
            })();
            if flushed.is_err() {
                return Some(PoolCloseReason::Err);
            }
        }
        if readiness & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0 {
            loop {
                match conn.stream.read(&mut self.rbuf) {
                    Ok(0) => return Some(PoolCloseReason::Eof),
                    Ok(n) => {
                        conn.decoder.push(&self.rbuf[..n]);
                        loop {
                            match conn.decoder.next_frame() {
                                Ok(Some(frame)) => out.push(PoolEvent::Frame { slot, frame }),
                                Ok(None) => break,
                                Err(_) => return Some(PoolCloseReason::Decode),
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Some(PoolCloseReason::Err),
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Server, ServiceConfig};

    #[test]
    fn pool_multiplexes_requests_over_many_slots() {
        let server = Server::start(ServiceConfig {
            backend: Backend::Threads,
            ..Default::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();

        let mut pool = ClientPool::connect(&addr, 8).unwrap();
        assert_eq!(pool.open_count(), 8);
        assert_eq!(pool.slots(), 8);
        for slot in 0..8 {
            assert!(pool.is_open(slot));
            assert!(pool.send(slot, &Frame::QueryStats));
        }
        // Every slot gets exactly one StatsReply.
        let mut replies = vec![0usize; 8];
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while replies.iter().sum::<usize>() < 8 && std::time::Instant::now() < deadline {
            events.clear();
            pool.poll(50, &mut events).unwrap();
            for ev in &events {
                match ev {
                    PoolEvent::Frame { slot, frame } => {
                        assert!(matches!(frame, Frame::StatsReply(_)));
                        replies[*slot] += 1;
                    }
                    PoolEvent::Closed { slot, reason } => {
                        panic!("slot {slot} closed unexpectedly: {reason:?}")
                    }
                }
            }
        }
        assert_eq!(replies, vec![1; 8]);

        // Explicit close is idempotent and send-to-closed fails cleanly.
        pool.close(3);
        pool.close(3);
        assert!(!pool.is_open(3));
        assert_eq!(pool.open_count(), 7);
        assert!(!pool.send(3, &Frame::QueryStats));

        // A server-side close surfaces as a Closed event. Force one by
        // sending garbage the decoder rejects fatally: the server
        // replies BadFrame and closes, so the slot sees EOF (after the
        // error frame).
        server.shutdown();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut closed = 0;
        while closed < 7 && std::time::Instant::now() < deadline {
            events.clear();
            pool.poll(50, &mut events).unwrap();
            for ev in &events {
                if let PoolEvent::Closed { .. } = ev {
                    closed += 1;
                }
            }
        }
        assert_eq!(closed, 7, "shutdown closes every remaining slot");
        assert_eq!(pool.open_count(), 0);
    }
}
