//! Primary → follower replication: the seq log and the pull loop.
//!
//! Replication streams the primary's ingested sample batches — not its
//! derived state — to a follower, which replays them through its own
//! (deterministic) ingest path and therefore rebuilds records and
//! transitions **bit-identically**. The protocol is pull-based so it
//! rides the existing strict request/reply connection handling on both
//! backends: the follower sends [`Frame::ReplPull`] and the primary
//! answers with entries, an empty reply (caught up), or a full
//! snapshot when the requested position has been trimmed from the log.
//!
//! ## Exactly-once apply
//!
//! Every log entry carries a primary-global sequence number, and every
//! machine cell remembers the newest entry applied to it
//! (`MachineState::last_repl_seq`, persisted in snapshots). Entry
//! append (primary) and entry apply (follower) both happen inside the
//! machine's critical section, with the log lock nested inside
//! (machine → log, never the reverse), so:
//!
//! * log order equals seq order — a pull never observes seq `N`
//!   without `N-1`;
//! * a snapshot collector that reads the log head *first* and then
//!   captures machines is a consistent cut: everything at or below
//!   that head is fully contained, anything above it is absorbed on
//!   restore by the per-machine `last_repl_seq` skip check.
//!
//! A restarted follower therefore resumes with `after_seq =` its own
//! log head; duplicate deliveries are skipped per machine, gaps are
//! impossible, and nothing is ever applied twice.
//!
//! ## Divergence tripwires
//!
//! Each entry records the primary's post-apply cursors
//! (`last_t_after`, `next_seq_after`). The follower asserts its own
//! cursors land exactly there after applying; any mismatch means the
//! replicas have diverged and the pull loop stops hard rather than
//! silently corrupting the follower.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fgcs_core::backoff::BackoffPolicy;
use fgcs_testbed::SupervisorConfig;
use fgcs_wire::{ErrorCode, Frame, ReplEntry, WireSample, MAX_REPL_ENTRIES_PER_FRAME};

use crate::client::{ClientConfig, ServiceClient};
use crate::snapshot;
use crate::state::Shared;

/// Role code for a primary, as carried in `ReplStatusReply::role`.
pub const ROLE_PRIMARY: u8 = 1;
/// Role code for a follower.
pub const ROLE_FOLLOWER: u8 = 2;

/// Default log capacity (entries) when a node is started as a follower
/// without an explicit `repl_log_capacity`: a promoted follower must be
/// able to serve its *own* follower from the log it mirrored.
pub(crate) const DEFAULT_REPL_LOG_CAPACITY: usize = 4_096;

/// What a [`ReplLog::pull`] request gets back.
pub(crate) enum PullReply {
    /// The requested position is retained: entries past `after_seq`
    /// (possibly none, when the puller is caught up).
    Entries {
        /// Newest seq allocated (0 when nothing was ever logged).
        head_seq: u64,
        /// Seq-ascending entries starting just past `after_seq`.
        entries: Vec<ReplEntry>,
    },
    /// The position was trimmed (or the puller has diverged ahead of
    /// the log); only a full snapshot can resync it.
    NeedSnapshot,
}

/// Log cursors for `ReplStatusReply`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplLogStatus {
    pub head_seq: u64,
    pub tail_seq: u64,
    pub acked_seq: u64,
    pub len: u64,
}

#[derive(Debug)]
struct ReplLogInner {
    entries: VecDeque<ReplEntry>,
    /// Next seq to allocate (primary) / expect (follower). Head is
    /// `next_seq - 1`.
    next_seq: u64,
    /// Highest applied-seq any puller has acknowledged.
    acked_seq: u64,
}

/// The replication seq log: a bounded ring of the most recent ingested
/// batches, in seq order. Capacity 0 disables replication entirely
/// ([`ReplLog::enabled`]); the log then never retains anything and
/// pulls are answered `Unsupported`.
#[derive(Debug)]
pub(crate) struct ReplLog {
    capacity: usize,
    inner: Mutex<ReplLogInner>,
}

impl ReplLog {
    pub(crate) fn new(capacity: usize) -> Self {
        ReplLog {
            capacity,
            inner: Mutex::new(ReplLogInner {
                entries: VecDeque::new(),
                next_seq: 1,
                acked_seq: 0,
            }),
        }
    }

    /// Whether this node retains a log at all.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Newest seq allocated/applied (0 before anything was logged).
    pub(crate) fn head_seq(&self) -> u64 {
        self.inner.lock().unwrap().next_seq - 1
    }

    /// Allocates the next seq for a locally ingested batch and retains
    /// the entry. Called by the primary's ingest path while it holds
    /// the batch's machine lock — that nesting (machine → log) is what
    /// makes log order equal seq order.
    pub(crate) fn append_local(
        &self,
        machine: u32,
        samples: Vec<WireSample>,
        last_t_after: u64,
        next_seq_after: u64,
    ) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push_back(ReplEntry {
            seq,
            machine,
            last_t_after,
            next_seq_after,
            samples,
        });
        while inner.entries.len() > self.capacity {
            inner.entries.pop_front();
        }
        seq
    }

    /// Mirrors a pulled entry into this follower's own log (so a
    /// promoted follower can serve *its* follower) and advances the
    /// expected cursor. Entries below the cursor are duplicate
    /// deliveries and ignored; a gap above it is a protocol violation.
    pub(crate) fn append_remote(&self, entry: &ReplEntry) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap();
        if entry.seq < inner.next_seq {
            return Ok(());
        }
        if entry.seq > inner.next_seq {
            return Err(format!(
                "replication gap: expected seq {}, got {}",
                inner.next_seq, entry.seq
            ));
        }
        inner.next_seq = entry.seq + 1;
        inner.entries.push_back(entry.clone());
        while inner.entries.len() > self.capacity {
            inner.entries.pop_front();
        }
        Ok(())
    }

    /// Resets the cursor after installing a snapshot consistent with
    /// `repl_seq`, discarding any retained entries (they predate the
    /// snapshot or will be re-pulled).
    pub(crate) fn reset_to(&self, repl_seq: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.entries.clear();
        inner.next_seq = repl_seq + 1;
    }

    /// Raises the allocation cursor to at least `next` (never lowers
    /// it) — used on restore and promotion so a new primary can never
    /// re-allocate a seq some machine cell already carries.
    pub(crate) fn raise_next(&self, next: u64) {
        let mut inner = self.inner.lock().unwrap();
        if next > inner.next_seq {
            inner.entries.clear();
            inner.next_seq = next;
        }
    }

    /// Records a puller's applied-seq acknowledgement.
    pub(crate) fn note_ack(&self, seq: u64) {
        let mut inner = self.inner.lock().unwrap();
        if seq > inner.acked_seq {
            inner.acked_seq = seq;
        }
    }

    /// Highest applied-seq acked by a puller.
    pub(crate) fn acked_seq(&self) -> u64 {
        self.inner.lock().unwrap().acked_seq
    }

    /// Answers a pull for entries past `after_seq`.
    pub(crate) fn pull(&self, after_seq: u64, max_entries: usize) -> PullReply {
        let inner = self.inner.lock().unwrap();
        let head = inner.next_seq - 1;
        if after_seq > head {
            // The puller claims to be ahead of this log — divergence
            // (e.g. it pulled from a different primary). Resync.
            return PullReply::NeedSnapshot;
        }
        if after_seq == head {
            return PullReply::Entries {
                head_seq: head,
                entries: Vec::new(),
            };
        }
        match inner.entries.front() {
            Some(front) if front.seq <= after_seq + 1 => {
                let cap = max_entries.min(MAX_REPL_ENTRIES_PER_FRAME);
                let entries: Vec<ReplEntry> = inner
                    .entries
                    .iter()
                    .filter(|e| e.seq > after_seq)
                    .take(cap)
                    .cloned()
                    .collect();
                PullReply::Entries {
                    head_seq: head,
                    entries,
                }
            }
            // Trimmed past the requested position (or nothing retained
            // at all while the head has moved): snapshot resync.
            _ => PullReply::NeedSnapshot,
        }
    }

    pub(crate) fn status(&self) -> ReplLogStatus {
        let inner = self.inner.lock().unwrap();
        ReplLogStatus {
            head_seq: inner.next_seq - 1,
            tail_seq: inner.entries.front().map_or(0, |e| e.seq),
            acked_seq: inner.acked_seq,
            len: inner.entries.len() as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// The follower pull loop
// ---------------------------------------------------------------------------

/// Spawns the follower's pull thread. The loop runs until shutdown or
/// promotion, reconnecting to the primary with capped jittered backoff
/// — a follower must outlive arbitrarily long primary outages.
pub(crate) fn spawn_pull_thread(shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("fgcs-repl-pull".into())
        .spawn(move || pull_loop(&shared))
        .expect("spawn replication pull thread")
}

fn pull_loop(shared: &Shared) {
    let addr = shared
        .cfg
        .follower_of
        .clone()
        .expect("pull loop requires follower_of");
    // Fail individual connect attempts fast (max_retries 0) and let
    // this loop own the retry cadence with the shared jittered policy.
    let client_cfg = ClientConfig {
        sup: SupervisorConfig {
            max_retries: 0,
            ..SupervisorConfig::default()
        },
        backoff_unit_ms: 1,
        read_timeout_ms: 2_000,
        token: shared.cfg.auth_token.clone(),
        ..ClientConfig::new(addr.clone())
    };
    let policy = BackoffPolicy { base: 20, cap: 500 };
    let seed = addr
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
    let mut client: Option<ServiceClient> = None;
    let mut attempts: u32 = 0;
    while !shared.shutting_down() && !shared.is_primary() {
        let c = match client.as_mut() {
            Some(c) => c,
            None => match ServiceClient::connect(client_cfg.clone()) {
                Ok(c) => {
                    client = Some(c);
                    client.as_mut().unwrap()
                }
                Err(_) => {
                    attempts = attempts.saturating_add(1);
                    sleep_ms(policy.delay_jittered(attempts, seed));
                    continue;
                }
            },
        };
        let after_seq = shared.repl.head_seq();
        let pull = Frame::ReplPull {
            after_seq,
            max_entries: MAX_REPL_ENTRIES_PER_FRAME as u32,
        };
        match c.request(&pull) {
            Ok(Frame::ReplEntries { head_seq, entries }) => {
                attempts = 0;
                let caught_up = entries.is_empty();
                for e in &entries {
                    if shared.shutting_down() {
                        return;
                    }
                    if let Err(err) = shared.apply_repl_entry(e) {
                        eprintln!(
                            "fgcs-service: FATAL: follower diverged from {addr}: {err}; \
                             pull loop stopped — resync by restarting with an empty state"
                        );
                        shared.repl_failed.store(true, Ordering::Release);
                        return;
                    }
                }
                if caught_up && shared.repl.head_seq() >= head_seq {
                    sleep_ms(shared.cfg.pull_interval_ms.max(1));
                }
            }
            Ok(Frame::ReplSnapshot { repl_seq, bytes }) => {
                attempts = 0;
                match install_pulled_snapshot(shared, repl_seq, &bytes) {
                    Ok(()) => {}
                    Err(err) => {
                        eprintln!("fgcs-service: snapshot resync from {addr} failed: {err}");
                        sleep_ms(policy.delay_jittered(1, seed));
                    }
                }
            }
            Ok(Frame::Error { code, detail }) => {
                // The primary exists but can't serve us yet (no log
                // configured, restarting, auth hiccup). Keep trying —
                // an operator fixing the primary shouldn't have to
                // restart every follower too.
                attempts = attempts.saturating_add(1);
                if attempts == 1 || code == ErrorCode::Unsupported {
                    eprintln!("fgcs-service: pull from {addr} rejected ({code:?}): {detail}");
                }
                sleep_ms(policy.delay_jittered(attempts, seed));
            }
            Ok(other) => {
                eprintln!(
                    "fgcs-service: unexpected pull reply tag {} from {addr}",
                    other.tag()
                );
                client = None;
                attempts = attempts.saturating_add(1);
                sleep_ms(policy.delay_jittered(attempts, seed));
            }
            Err(_) => {
                client = None;
                attempts = attempts.saturating_add(1);
                sleep_ms(policy.delay_jittered(attempts, seed));
            }
        }
    }
}

fn install_pulled_snapshot(shared: &Shared, repl_seq: u64, bytes: &[u8]) -> Result<(), String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "snapshot is not UTF-8".to_string())?;
    let data = snapshot::parse_snapshot(text)?;
    if data.repl_seq != repl_seq {
        return Err(format!(
            "frame says repl_seq {repl_seq}, snapshot says {}",
            data.repl_seq
        ));
    }
    shared.install_snapshot(data)
}

fn sleep_ms(ms: u64) {
    std::thread::sleep(Duration::from_millis(ms));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> ReplEntry {
        ReplEntry {
            seq,
            machine: 1,
            last_t_after: seq * 10,
            next_seq_after: 1,
            samples: Vec::new(),
        }
    }

    #[test]
    fn log_allocates_monotone_seqs_and_trims_to_capacity() {
        let log = ReplLog::new(3);
        for i in 1..=5u64 {
            let seq = log.append_local(7, Vec::new(), i * 10, 1);
            assert_eq!(seq, i);
        }
        let st = log.status();
        assert_eq!(st.head_seq, 5);
        assert_eq!(st.tail_seq, 3, "capacity 3 keeps seqs 3..=5");
        assert_eq!(st.len, 3);
    }

    #[test]
    fn pull_serves_retained_positions_and_resyncs_trimmed_ones() {
        let log = ReplLog::new(3);
        for i in 1..=5u64 {
            log.append_local(7, Vec::new(), i, 1);
        }
        // Caught up: empty entries, head visible.
        match log.pull(5, 100) {
            PullReply::Entries { head_seq, entries } => {
                assert_eq!(head_seq, 5);
                assert!(entries.is_empty());
            }
            PullReply::NeedSnapshot => panic!("caught-up pull must not resync"),
        }
        // Retained: seqs 3..=5, so after_seq 2 streams entries.
        match log.pull(2, 2) {
            PullReply::Entries { head_seq, entries } => {
                assert_eq!(head_seq, 5);
                assert_eq!(
                    entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
                    vec![3, 4],
                    "max_entries caps the reply"
                );
            }
            PullReply::NeedSnapshot => panic!("retained pull must not resync"),
        }
        // Trimmed: after_seq 1 would need seq 2, which is gone.
        assert!(matches!(log.pull(1, 100), PullReply::NeedSnapshot));
        // Ahead of the log: divergence, resync.
        assert!(matches!(log.pull(9, 100), PullReply::NeedSnapshot));
    }

    #[test]
    fn append_remote_skips_duplicates_and_rejects_gaps() {
        let log = ReplLog::new(8);
        log.append_remote(&entry(1)).unwrap();
        log.append_remote(&entry(2)).unwrap();
        // Duplicate delivery after a reconnect: ignored.
        log.append_remote(&entry(2)).unwrap();
        assert_eq!(log.head_seq(), 2);
        // A gap can only mean a protocol violation.
        assert!(log.append_remote(&entry(5)).is_err());
        log.append_remote(&entry(3)).unwrap();
        assert_eq!(log.head_seq(), 3);
    }

    #[test]
    fn reset_and_raise_move_the_cursor_safely() {
        let log = ReplLog::new(4);
        log.append_remote(&entry(1)).unwrap();
        log.reset_to(10);
        assert_eq!(log.head_seq(), 10);
        assert_eq!(log.status().len, 0);
        log.raise_next(8); // never lowers
        assert_eq!(log.head_seq(), 10);
        log.raise_next(21);
        assert_eq!(log.head_seq(), 20);
    }

    #[test]
    fn acks_are_monotone() {
        let log = ReplLog::new(4);
        log.note_ack(3);
        log.note_ack(1);
        assert_eq!(log.acked_seq(), 3);
        log.note_ack(7);
        assert_eq!(log.acked_seq(), 7);
    }
}
