//! Primary → follower replication: the seq log and the pull loop.
//!
//! Replication streams the primary's ingested sample batches — not its
//! derived state — to a follower, which replays them through its own
//! (deterministic) ingest path and therefore rebuilds records and
//! transitions **bit-identically**. The protocol is pull-based so it
//! rides the existing strict request/reply connection handling on both
//! backends: the follower sends [`Frame::ReplPull`] and the primary
//! answers with entries, an empty reply (caught up), or a full
//! snapshot when the requested position has been trimmed from the log.
//!
//! ## Exactly-once apply
//!
//! Every log entry carries a primary-global sequence number, and every
//! machine cell remembers the newest entry applied to it
//! (`MachineState::last_repl_seq`, persisted in snapshots). Entry
//! append (primary) and entry apply (follower) both happen inside the
//! machine's critical section, with the log lock nested inside
//! (machine → log, never the reverse), so:
//!
//! * log order equals seq order — a pull never observes seq `N`
//!   without `N-1`;
//! * a snapshot collector that reads the log head *first* and then
//!   captures machines is a consistent cut: everything at or below
//!   that head is fully contained, anything above it is absorbed on
//!   restore by the per-machine `last_repl_seq` skip check.
//!
//! A restarted follower therefore resumes with `after_seq =` its own
//! log head; duplicate deliveries are skipped per machine, gaps are
//! impossible, and nothing is ever applied twice.
//!
//! ## Divergence tripwires
//!
//! Each entry records the primary's post-apply cursors
//! (`last_t_after`, `next_seq_after`). The follower asserts its own
//! cursors land exactly there after applying; any mismatch means the
//! replicas have diverged and the pull loop stops hard rather than
//! silently corrupting the follower.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fgcs_core::backoff::BackoffPolicy;
use fgcs_testbed::SupervisorConfig;
use fgcs_wire::{ErrorCode, Frame, ReplEntry, WireSample, MAX_REPL_ENTRIES_PER_FRAME};

use crate::client::{ClientConfig, ServiceClient};
use crate::snapshot;
use crate::state::Shared;

/// Role code for a primary, as carried in `ReplStatusReply::role`.
pub const ROLE_PRIMARY: u8 = 1;
/// Role code for a follower.
pub const ROLE_FOLLOWER: u8 = 2;

/// Default log capacity (entries) when a node is started as a follower
/// without an explicit `repl_log_capacity`: a promoted follower must be
/// able to serve its *own* follower from the log it mirrored.
pub(crate) const DEFAULT_REPL_LOG_CAPACITY: usize = 4_096;

/// What a [`ReplLog::pull`] request gets back.
pub(crate) enum PullReply {
    /// The requested position is retained: entries past `after_seq`
    /// (possibly none, when the puller is caught up).
    Entries {
        /// Newest seq allocated (0 when nothing was ever logged).
        head_seq: u64,
        /// Seq-ascending entries starting just past `after_seq`.
        entries: Vec<ReplEntry>,
    },
    /// The position was trimmed (or the puller has diverged ahead of
    /// the log); only a full snapshot can resync it.
    NeedSnapshot,
}

/// Log cursors for `ReplStatusReply`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplLogStatus {
    pub head_seq: u64,
    pub tail_seq: u64,
    pub acked_seq: u64,
    pub len: u64,
}

#[derive(Debug)]
struct ReplLogInner {
    entries: VecDeque<ReplEntry>,
    /// Next seq to allocate (primary) / expect (follower). Head is
    /// `next_seq - 1`.
    next_seq: u64,
    /// Highest applied-seq any puller has acknowledged.
    acked_seq: u64,
}

/// The replication seq log: a bounded ring of the most recent ingested
/// batches, in seq order. Capacity 0 disables replication entirely
/// ([`ReplLog::enabled`]); the log then never retains anything and
/// pulls are answered `Unsupported`.
#[derive(Debug)]
pub(crate) struct ReplLog {
    capacity: usize,
    inner: Mutex<ReplLogInner>,
}

impl ReplLog {
    pub(crate) fn new(capacity: usize) -> Self {
        ReplLog {
            capacity,
            inner: Mutex::new(ReplLogInner {
                entries: VecDeque::new(),
                next_seq: 1,
                acked_seq: 0,
            }),
        }
    }

    /// Whether this node retains a log at all.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Newest seq allocated/applied (0 before anything was logged).
    pub(crate) fn head_seq(&self) -> u64 {
        self.inner.lock().unwrap().next_seq - 1
    }

    /// Allocates the next seq for a locally ingested batch and retains
    /// the entry. Called by the primary's ingest path while it holds
    /// the batch's machine lock — that nesting (machine → log) is what
    /// makes log order equal seq order.
    pub(crate) fn append_local(
        &self,
        machine: u32,
        samples: Vec<WireSample>,
        last_t_after: u64,
        next_seq_after: u64,
    ) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push_back(ReplEntry {
            seq,
            machine,
            last_t_after,
            next_seq_after,
            samples,
        });
        while inner.entries.len() > self.capacity {
            inner.entries.pop_front();
        }
        seq
    }

    /// Mirrors a pulled entry into this follower's own log (so a
    /// promoted follower can serve *its* follower) and advances the
    /// expected cursor. Entries below the cursor are duplicate
    /// deliveries and ignored; a gap above it is a protocol violation.
    pub(crate) fn append_remote(&self, entry: &ReplEntry) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap();
        if entry.seq < inner.next_seq {
            return Ok(());
        }
        if entry.seq > inner.next_seq {
            return Err(format!(
                "replication gap: expected seq {}, got {}",
                inner.next_seq, entry.seq
            ));
        }
        inner.next_seq = entry.seq + 1;
        inner.entries.push_back(entry.clone());
        while inner.entries.len() > self.capacity {
            inner.entries.pop_front();
        }
        Ok(())
    }

    /// Resets the cursor after installing a snapshot consistent with
    /// `repl_seq`, discarding any retained entries (they predate the
    /// snapshot or will be re-pulled).
    pub(crate) fn reset_to(&self, repl_seq: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.entries.clear();
        inner.next_seq = repl_seq + 1;
    }

    /// Raises the allocation cursor to at least `next` (never lowers
    /// it) — used on restore and promotion so a new primary can never
    /// re-allocate a seq some machine cell already carries.
    pub(crate) fn raise_next(&self, next: u64) {
        let mut inner = self.inner.lock().unwrap();
        if next > inner.next_seq {
            inner.entries.clear();
            inner.next_seq = next;
        }
    }

    /// Records a puller's applied-seq acknowledgement.
    pub(crate) fn note_ack(&self, seq: u64) {
        let mut inner = self.inner.lock().unwrap();
        if seq > inner.acked_seq {
            inner.acked_seq = seq;
        }
    }

    /// Highest applied-seq acked by a puller.
    pub(crate) fn acked_seq(&self) -> u64 {
        self.inner.lock().unwrap().acked_seq
    }

    /// Answers a pull for entries past `after_seq`.
    pub(crate) fn pull(&self, after_seq: u64, max_entries: usize) -> PullReply {
        let inner = self.inner.lock().unwrap();
        let head = inner.next_seq - 1;
        if after_seq > head {
            // The puller claims to be ahead of this log — divergence
            // (e.g. it pulled from a different primary). Resync.
            return PullReply::NeedSnapshot;
        }
        if after_seq == head {
            return PullReply::Entries {
                head_seq: head,
                entries: Vec::new(),
            };
        }
        match inner.entries.front() {
            Some(front) if front.seq <= after_seq + 1 => {
                let cap = max_entries.min(MAX_REPL_ENTRIES_PER_FRAME);
                let entries: Vec<ReplEntry> = inner
                    .entries
                    .iter()
                    .filter(|e| e.seq > after_seq)
                    .take(cap)
                    .cloned()
                    .collect();
                PullReply::Entries {
                    head_seq: head,
                    entries,
                }
            }
            // Trimmed past the requested position (or nothing retained
            // at all while the head has moved): snapshot resync.
            _ => PullReply::NeedSnapshot,
        }
    }

    pub(crate) fn status(&self) -> ReplLogStatus {
        let inner = self.inner.lock().unwrap();
        ReplLogStatus {
            head_seq: inner.next_seq - 1,
            tail_seq: inner.entries.front().map_or(0, |e| e.seq),
            acked_seq: inner.acked_seq,
            len: inner.entries.len() as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// The follower pull loop
// ---------------------------------------------------------------------------

/// Spawns the follower's pull thread. The loop runs until shutdown or
/// promotion, reconnecting to the primary with capped jittered backoff
/// — a follower must outlive arbitrarily long primary outages (unless
/// `auto_promote` decides the outage *is* the failover).
pub(crate) fn spawn_pull_thread(shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("fgcs-repl-pull".into())
        .spawn(move || pull_loop(&shared))
        .expect("spawn replication pull thread")
}

/// Primary-liveness bookkeeping for automatic failover (DESIGN.md
/// §13.5). Two conditions must hold simultaneously before a follower
/// declares its primary dead: the missed-pull threshold (consecutive
/// transport failures — typed errors from a live primary reset it) and
/// the lease (granted by the primary on every `ReplEntries`) expired.
struct Liveness {
    /// Consecutive transport-level pull failures.
    failures: u32,
    /// The lease duration the primary last granted (0 = no lease; the
    /// threshold alone then decides). Starts from our own `lease_ms`
    /// as the boot grace period.
    lease: Duration,
    /// When the current lease runs out.
    deadline: Instant,
}

impl Liveness {
    fn new(grace_ms: u64) -> Self {
        let lease = Duration::from_millis(grace_ms);
        Liveness {
            failures: 0,
            lease,
            deadline: Instant::now() + lease,
        }
    }

    /// Any reply at all proves the primary's process is alive.
    fn saw_reply(&mut self, granted_lease_ms: Option<u64>) {
        self.failures = 0;
        if let Some(ms) = granted_lease_ms {
            self.lease = Duration::from_millis(ms);
        }
        self.deadline = Instant::now() + self.lease;
    }

    /// Whether the primary should now be considered dead.
    fn expired(&self, threshold: u32) -> bool {
        self.failures >= threshold.max(1)
            && (self.lease.is_zero() || Instant::now() >= self.deadline)
    }
}

fn pull_loop(shared: &Shared) {
    let addr = shared
        .cfg
        .follower_of
        .clone()
        .expect("pull loop requires follower_of");
    // Fail individual connect attempts fast (max_retries 0) and let
    // this loop own the retry cadence with the shared jittered policy.
    // The read timeout is tied to the lease so a SIGSTOPped (wedged,
    // not dead) primary is detected within a few lease windows, not
    // after threshold × 2 s.
    let read_timeout_ms = if shared.cfg.auto_promote {
        (shared.cfg.lease_ms / 2).clamp(50, 2_000)
    } else {
        2_000
    };
    let client_cfg = ClientConfig {
        sup: SupervisorConfig {
            max_retries: 0,
            ..SupervisorConfig::default()
        },
        backoff_unit_ms: 1,
        read_timeout_ms,
        token: shared.cfg.auth_token.clone(),
        ..ClientConfig::new(addr.clone())
    };
    let policy = BackoffPolicy { base: 20, cap: 500 };
    let seed = addr
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
    let mut client: Option<ServiceClient> = None;
    let mut attempts: u32 = 0;
    let mut liveness = Liveness::new(shared.cfg.lease_ms);
    while !shared.shutting_down() && !shared.is_primary() {
        let c = match client.as_mut() {
            Some(c) => c,
            None => match ServiceClient::connect(client_cfg.clone()) {
                Ok(c) => {
                    client = Some(c);
                    client.as_mut().unwrap()
                }
                Err(_) => {
                    attempts = attempts.saturating_add(1);
                    liveness.failures = liveness.failures.saturating_add(1);
                    if maybe_self_promote(shared, &liveness, &addr, &client_cfg) {
                        return;
                    }
                    sleep_ms(policy.delay_jittered(attempts, seed));
                    continue;
                }
            },
        };
        let after_seq = shared.repl.head_seq();
        let pull = Frame::ReplPull {
            after_seq,
            max_entries: MAX_REPL_ENTRIES_PER_FRAME as u32,
            epoch: shared.epoch(),
        };
        match c.request(&pull) {
            Ok(Frame::ReplEntries {
                head_seq,
                epoch,
                lease_ms,
                entries,
            }) => {
                attempts = 0;
                liveness.saw_reply(Some(lease_ms));
                // Adopt the primary's epoch so a later self-promotion
                // allocates a strictly higher one, and publish its log
                // head for the follower-read staleness gate (stored
                // +1 so 0 keeps meaning "never pulled").
                shared.observe_epoch(epoch);
                // saturating: `head_seq` is peer-controlled, and
                // u64::MAX + 1 wrapping to the "never pulled" sentinel
                // would freeze the staleness gate shut.
                shared
                    .primary_head_seen
                    .store(head_seq.saturating_add(1), Ordering::Release);
                let caught_up = entries.is_empty();
                for e in &entries {
                    if shared.shutting_down() {
                        return;
                    }
                    if let Err(err) = shared.apply_repl_entry(e) {
                        eprintln!(
                            "fgcs-service: FATAL: follower diverged from {addr}: {err}; \
                             pull loop stopped — resync by restarting with an empty state"
                        );
                        shared.repl_failed.store(true, Ordering::Release);
                        return;
                    }
                }
                if caught_up && shared.repl.head_seq() >= head_seq {
                    sleep_ms(shared.cfg.pull_interval_ms.max(1));
                }
            }
            Ok(Frame::ReplSnapshot { repl_seq, bytes }) => {
                attempts = 0;
                liveness.saw_reply(None);
                match install_pulled_snapshot(shared, repl_seq, &bytes) {
                    Ok(()) => {}
                    Err(err) => {
                        eprintln!("fgcs-service: snapshot resync from {addr} failed: {err}");
                        sleep_ms(policy.delay_jittered(1, seed));
                    }
                }
            }
            Ok(Frame::Error { code, detail }) => {
                // The primary exists but can't serve us yet (no log
                // configured, restarting, auth hiccup). Keep trying —
                // an operator fixing the primary shouldn't have to
                // restart every follower too. A typed error is a live
                // process answering: it resets liveness, so only real
                // silence can trigger a failover.
                attempts = attempts.saturating_add(1);
                liveness.saw_reply(None);
                if attempts == 1 || code == ErrorCode::Unsupported {
                    eprintln!("fgcs-service: pull from {addr} rejected ({code:?}): {detail}");
                }
                sleep_ms(policy.delay_jittered(attempts, seed));
            }
            Ok(other) => {
                eprintln!(
                    "fgcs-service: unexpected pull reply tag {} from {addr}",
                    other.tag()
                );
                client = None;
                attempts = attempts.saturating_add(1);
                liveness.saw_reply(None);
                sleep_ms(policy.delay_jittered(attempts, seed));
            }
            Err(_) => {
                client = None;
                attempts = attempts.saturating_add(1);
                liveness.failures = liveness.failures.saturating_add(1);
                if maybe_self_promote(shared, &liveness, &addr, &client_cfg) {
                    return;
                }
                sleep_ms(policy.delay_jittered(attempts, seed));
            }
        }
    }
}

/// Decides whether this follower should take over now, and if so does
/// the whole failover: election among `promotion_peers`, promotion,
/// then fencing of the (possibly not-quite-dead) old primary. Returns
/// `true` when the node promoted — the pull loop is over.
fn maybe_self_promote(
    shared: &Shared,
    liveness: &Liveness,
    primary_addr: &str,
    client_cfg: &ClientConfig,
) -> bool {
    if !shared.cfg.auto_promote
        || shared.repl_failed.load(Ordering::Acquire)
        || !liveness.expired(shared.cfg.missed_pull_threshold)
        || shared.shutting_down()
    {
        return false;
    }
    let my_applied = shared.repl.head_seq();
    // Election: defer to any sibling follower that is strictly more
    // caught up, or equally caught up with a lexically lower address
    // (addresses must be distinct for the tie-break to be total — the
    // operator lists each follower's real listen address). A peer that
    // already promoted wins outright. Unreachable peers don't block:
    // they may be as dead as the primary.
    for peer in &shared.cfg.promotion_peers {
        let peer_cfg = ClientConfig {
            read_timeout_ms: client_cfg.read_timeout_ms,
            token: shared.cfg.auth_token.clone(),
            sup: SupervisorConfig {
                max_retries: 0,
                ..SupervisorConfig::default()
            },
            backoff_unit_ms: 1,
            ..ClientConfig::new(peer.clone())
        };
        let Ok(mut c) = ServiceClient::connect(peer_cfg) else {
            continue;
        };
        let Ok(Frame::ReplStatusReply {
            role,
            epoch,
            applied_seq,
            ..
        }) = c.request(&Frame::ReplStatus)
        else {
            continue;
        };
        if role == ROLE_PRIMARY && epoch >= shared.epoch() {
            // Someone already took over; never start a second reign.
            eprintln!(
                "fgcs-service: primary {primary_addr} is dead but peer {peer} already \
                 promoted (epoch {epoch}); staying a follower"
            );
            shared.observe_epoch(epoch);
            return false;
        }
        if applied_seq > my_applied
            || (applied_seq == my_applied && peer.as_str() < shared.cfg.addr.as_str())
        {
            return false;
        }
    }
    eprintln!(
        "fgcs-service: primary {primary_addr} declared dead \
         ({} consecutive missed pulls, lease expired); self-promoting at applied seq {}",
        liveness.failures, my_applied
    );
    shared.promote();
    fence_old_primary(shared, primary_addr, client_cfg);
    true
}

/// Hammers the old primary's address with an epoch-carrying `ReplPull`
/// until something answers (the fence lands — a revived primary
/// demotes itself inside `fence_if_superseded` before replying) or the
/// server shuts down. A SIGKILLed primary never answers; the periodic
/// refused connect is the cost of covering the paused-then-revived
/// one, which can come back minutes later.
fn fence_old_primary(shared: &Shared, primary_addr: &str, client_cfg: &ClientConfig) {
    let policy = BackoffPolicy { base: 20, cap: 500 };
    let seed = 0x0fe2_ce0a;
    let mut attempts: u32 = 0;
    while !shared.shutting_down() {
        if let Ok(mut c) = ServiceClient::connect(client_cfg.clone()) {
            let fence = Frame::ReplPull {
                after_seq: shared.repl.head_seq(),
                max_entries: 0,
                epoch: shared.epoch(),
            };
            if let Ok(reply) = c.request(&fence) {
                eprintln!(
                    "fgcs-service: fenced old primary {primary_addr} at epoch {} \
                     (reply tag {})",
                    shared.epoch(),
                    reply.tag()
                );
                return;
            }
        }
        attempts = attempts.saturating_add(1);
        sleep_ms(policy.delay_jittered(attempts, seed));
    }
}

fn install_pulled_snapshot(shared: &Shared, repl_seq: u64, bytes: &[u8]) -> Result<(), String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "snapshot is not UTF-8".to_string())?;
    let data = snapshot::parse_snapshot(text)?;
    if data.repl_seq != repl_seq {
        return Err(format!(
            "frame says repl_seq {repl_seq}, snapshot says {}",
            data.repl_seq
        ));
    }
    shared.install_snapshot(data)
}

fn sleep_ms(ms: u64) {
    std::thread::sleep(Duration::from_millis(ms));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> ReplEntry {
        ReplEntry {
            seq,
            machine: 1,
            last_t_after: seq * 10,
            next_seq_after: 1,
            samples: Vec::new(),
        }
    }

    #[test]
    fn log_allocates_monotone_seqs_and_trims_to_capacity() {
        let log = ReplLog::new(3);
        for i in 1..=5u64 {
            let seq = log.append_local(7, Vec::new(), i * 10, 1);
            assert_eq!(seq, i);
        }
        let st = log.status();
        assert_eq!(st.head_seq, 5);
        assert_eq!(st.tail_seq, 3, "capacity 3 keeps seqs 3..=5");
        assert_eq!(st.len, 3);
    }

    #[test]
    fn pull_serves_retained_positions_and_resyncs_trimmed_ones() {
        let log = ReplLog::new(3);
        for i in 1..=5u64 {
            log.append_local(7, Vec::new(), i, 1);
        }
        // Caught up: empty entries, head visible.
        match log.pull(5, 100) {
            PullReply::Entries { head_seq, entries } => {
                assert_eq!(head_seq, 5);
                assert!(entries.is_empty());
            }
            PullReply::NeedSnapshot => panic!("caught-up pull must not resync"),
        }
        // Retained: seqs 3..=5, so after_seq 2 streams entries.
        match log.pull(2, 2) {
            PullReply::Entries { head_seq, entries } => {
                assert_eq!(head_seq, 5);
                assert_eq!(
                    entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
                    vec![3, 4],
                    "max_entries caps the reply"
                );
            }
            PullReply::NeedSnapshot => panic!("retained pull must not resync"),
        }
        // Trimmed: after_seq 1 would need seq 2, which is gone.
        assert!(matches!(log.pull(1, 100), PullReply::NeedSnapshot));
        // Ahead of the log: divergence, resync.
        assert!(matches!(log.pull(9, 100), PullReply::NeedSnapshot));
    }

    #[test]
    fn append_remote_skips_duplicates_and_rejects_gaps() {
        let log = ReplLog::new(8);
        log.append_remote(&entry(1)).unwrap();
        log.append_remote(&entry(2)).unwrap();
        // Duplicate delivery after a reconnect: ignored.
        log.append_remote(&entry(2)).unwrap();
        assert_eq!(log.head_seq(), 2);
        // A gap can only mean a protocol violation.
        assert!(log.append_remote(&entry(5)).is_err());
        log.append_remote(&entry(3)).unwrap();
        assert_eq!(log.head_seq(), 3);
    }

    #[test]
    fn reset_and_raise_move_the_cursor_safely() {
        let log = ReplLog::new(4);
        log.append_remote(&entry(1)).unwrap();
        log.reset_to(10);
        assert_eq!(log.head_seq(), 10);
        assert_eq!(log.status().len, 0);
        log.raise_next(8); // never lowers
        assert_eq!(log.head_seq(), 10);
        log.raise_next(21);
        assert_eq!(log.head_seq(), 20);
    }

    #[test]
    fn acks_are_monotone() {
        let log = ReplLog::new(4);
        log.note_ack(3);
        log.note_ack(1);
        assert_eq!(log.acked_seq(), 3);
        log.note_ack(7);
        assert_eq!(log.acked_seq(), 7);
    }

    // --- pull() boundary behavior. A follower's resume cursor lands
    // exactly on these edges after reconnects, so each one is pinned:
    // an off-by-one here silently skips or re-applies a record.

    #[test]
    fn pull_at_exact_log_head_is_empty_not_resync() {
        let log = ReplLog::new(4);
        for i in 1..=4u64 {
            log.append_local(1, Vec::new(), i, 1);
        }
        // after_seq == head_seq: caught up. One past it: divergence.
        match log.pull(4, 16) {
            PullReply::Entries { head_seq, entries } => {
                assert_eq!(head_seq, 4);
                assert!(entries.is_empty());
            }
            PullReply::NeedSnapshot => panic!("pull at head must not resync"),
        }
        assert!(matches!(log.pull(5, 16), PullReply::NeedSnapshot));
    }

    #[test]
    fn pull_boundary_between_pruned_and_retained_is_exact() {
        let log = ReplLog::new(3);
        for i in 1..=10u64 {
            log.append_local(1, Vec::new(), i, 1);
        }
        // Retained: 8..=10. after_seq 7 needs seq 8 — the oldest
        // retained entry — and must stream, not resync.
        match log.pull(7, 16) {
            PullReply::Entries { entries, .. } => {
                assert_eq!(
                    entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
                    vec![8, 9, 10]
                );
            }
            PullReply::NeedSnapshot => panic!("oldest retained seq must stream"),
        }
        // after_seq 6 needs seq 7, trimmed one step ago: resync.
        assert!(matches!(log.pull(6, 16), PullReply::NeedSnapshot));
    }

    #[test]
    fn pull_of_empty_log_from_zero_is_caught_up() {
        let log = ReplLog::new(4);
        match log.pull(0, 16) {
            PullReply::Entries { head_seq, entries } => {
                assert_eq!(head_seq, 0);
                assert!(entries.is_empty(), "a brand-new log has nothing to send");
            }
            PullReply::NeedSnapshot => panic!("empty log must not demand a snapshot"),
        }
    }

    #[test]
    fn pull_from_zero_after_wraparound_resyncs() {
        // A fresh follower (cursor 0) joining a log that has already
        // trimmed seq 1 cannot be served incrementally.
        let log = ReplLog::new(2);
        for i in 1..=5u64 {
            log.append_local(1, Vec::new(), i, 1);
        }
        assert!(matches!(log.pull(0, 16), PullReply::NeedSnapshot));
        // But the retained window itself still streams contiguously.
        match log.pull(3, 16) {
            PullReply::Entries { entries, .. } => {
                assert_eq!(
                    entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
                    vec![4, 5]
                );
            }
            PullReply::NeedSnapshot => panic!("retained window must stream after wrap"),
        }
    }

    #[test]
    fn pull_with_zero_cap_reports_head_without_entries() {
        // The fencer sends max_entries 0: it wants the epoch check and
        // a reply, not data.
        let log = ReplLog::new(4);
        for i in 1..=3u64 {
            log.append_local(1, Vec::new(), i, 1);
        }
        match log.pull(1, 0) {
            PullReply::Entries { head_seq, entries } => {
                assert_eq!(head_seq, 3);
                assert!(entries.is_empty());
            }
            PullReply::NeedSnapshot => panic!("zero-cap pull of a retained seq must answer"),
        }
    }

    // --- Liveness: the failure detector driving self-promotion.

    #[test]
    fn liveness_needs_both_threshold_and_lease_expiry() {
        let mut l = Liveness::new(0);
        assert!(!l.expired(3), "no failures yet");
        l.failures = 3;
        assert!(l.expired(3), "zero lease: threshold alone decides");
        // A granted lease in the future holds the failover back even
        // past the threshold.
        l.saw_reply(Some(60_000));
        l.failures = 10;
        assert!(!l.expired(3), "unexpired lease must veto promotion");
        // Any reply resets the failure count.
        l.saw_reply(Some(60_000));
        assert_eq!(l.failures, 0);
        assert!(!l.expired(1));
    }

    #[test]
    fn liveness_threshold_zero_is_treated_as_one() {
        let mut l = Liveness::new(0);
        assert!(!l.expired(0), "zero failures never expires");
        l.failures = 1;
        assert!(l.expired(0));
    }
}
