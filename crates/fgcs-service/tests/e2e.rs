//! End-to-end tests over real localhost TCP: parity with the in-process
//! pipeline, overload accounting, corruption accounting, and client
//! reconnection.

use fgcs_faults::FaultConfig;
use fgcs_service::{ClientConfig, LoadGenConfig, Server, ServiceClient, ServiceConfig};
use fgcs_testbed::{trace_machine, MachinePlan, OccurrenceRecorder, TestbedConfig};
use fgcs_wire::{ErrorCode, Frame, SampleLoad, WireSample, WireTransition};

/// Polls until the server's counters reconcile with `batches_sent`
/// (queued work may still be draining when the load generator returns).
fn drain(server: &Server, batches_sent: u64) -> fgcs_wire::StatsPayload {
    for _ in 0..600 {
        let stats = server.stats();
        let accounted = stats.ingested_batches + stats.shed_batches + stats.decode_errors;
        if accounted >= batches_sent && stats.queue_depth == 0 {
            return stats;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("server failed to drain: {:?}", server.stats());
}

/// Streaming a clean lab trace over TCP must produce **bit-identical**
/// occurrence records and state transitions to the in-process pipeline
/// — parity by construction through the shared `OccurrenceRecorder`.
#[test]
fn tcp_stream_matches_in_process_pipeline_bit_for_bit() {
    let cfg = TestbedConfig::tiny();
    let server = Server::start(ServiceConfig::for_testbed(&cfg)).expect("server starts");
    let addr = server.local_addr().to_string();

    let lg = LoadGenConfig::new(cfg.lab.clone());
    let report = fgcs_service::run_loadgen(&addr, &lg).expect("loadgen runs");
    assert_eq!(report.machines, cfg.lab.machines);
    assert!(report.batches_sent > 0);
    assert_eq!(
        report.acks, report.batches_sent,
        "clean run: every batch acked"
    );
    assert_eq!(report.error_replies, 0);
    assert_eq!(report.frames_corrupted, 0);

    let stats = drain(&server, report.batches_sent);
    assert_eq!(stats.decode_errors, 0, "clean stream must decode fully");
    assert_eq!(stats.ingested_samples, report.samples_sent);

    for machine in 0..cfg.lab.machines {
        let streamed = server.records(machine as u32).expect("machine streamed");
        let local = trace_machine(&cfg, machine);
        assert_eq!(
            streamed, local,
            "machine {machine}: records must be bit-identical"
        );
        assert_eq!(server.out_of_order(machine as u32), 0);

        // Transitions: replay the same plan through a local recorder.
        let expected = expected_transitions(&cfg, machine);
        let got = server
            .transitions(machine as u32)
            .expect("machine streamed");
        assert_eq!(
            got, expected,
            "machine {machine}: transition log must match"
        );
    }
    server.shutdown();
}

fn expected_transitions(cfg: &TestbedConfig, machine: usize) -> Vec<WireTransition> {
    let plan = MachinePlan::generate(&cfg.lab, machine);
    let mut rec = OccurrenceRecorder::new(machine as u32, cfg.detector);
    let mut out = Vec::new();
    for s in plan.samples() {
        let obs = if s.alive {
            fgcs_core::monitor::Observation {
                host_load: s.host_load,
                free_mem_mb: cfg.lab.free_for_guest_mb(s.host_resident_mb),
                alive: true,
            }
        } else {
            fgcs_core::monitor::Observation::dead()
        };
        let before = rec.state();
        let step = rec.observe(s.t, &obs);
        if step.state != before {
            out.push(WireTransition {
                seq: out.len() as u64 + 1,
                at: s.t,
                state: step.state.code(),
            });
        }
    }
    out
}

/// Under ≥2× offered load the bounded queue sheds, the producers see
/// `Busy`, and the accounting reconciles *exactly*:
/// `sent == ingested + shed + decode-rejected`, while the server keeps
/// answering queries.
#[test]
fn overload_sheds_and_reconciles_exactly() {
    let cfg = TestbedConfig::tiny();
    let mut svc = ServiceConfig::for_testbed(&cfg);
    svc.workers = 1;
    svc.queue_capacity = 4;
    svc.ingest_delay_us = 2_000; // ~500 batches/s capacity, unpaced offered load
    let server = Server::start(svc).expect("server starts");
    let addr = server.local_addr().to_string();

    let mut lg = LoadGenConfig::new(cfg.lab.clone());
    lg.batch_size = 16;
    lg.max_samples_per_machine = Some(4_000);
    let report = fgcs_service::run_loadgen(&addr, &lg).expect("loadgen runs");

    // Query responsiveness while (or right after) the queue is saturated.
    let mut client = ServiceClient::connect(ClientConfig::new(&addr)).expect("client connects");
    let reply = client
        .request(&Frame::QueryStats)
        .expect("stats answered under load");
    assert!(matches!(reply, Frame::StatsReply(_)));

    let stats = drain(&server, report.batches_sent);
    assert!(
        stats.shed_batches > 0,
        "load must actually overflow the queue: {stats:?}"
    );
    assert_eq!(
        stats.ingested_batches + stats.shed_batches + stats.decode_errors,
        report.batches_sent,
        "server-side identity: sent == ingested + shed + decode-rejected"
    );
    assert_eq!(
        stats.ingested_samples + stats.shed_samples,
        report.samples_sent,
        "samples reconcile too"
    );
    assert_eq!(stats.busy_replies, stats.shed_batches, "one Busy per shed");
    assert_eq!(
        report.acks + report.busys + report.error_replies,
        report.batches_sent,
        "client-side identity: every batch earned exactly one reply"
    );
    assert_eq!(report.busys, stats.shed_batches);
    server.shutdown();
}

/// Corrupted frames are detected by CRC and rejected — never ingested —
/// and the counts agree on both ends: injector == client Error replies
/// == server decode errors.
#[test]
fn corruption_is_detected_and_accounted_exactly() {
    let cfg = TestbedConfig::tiny();
    let server = Server::start(ServiceConfig::for_testbed(&cfg)).expect("server starts");
    let addr = server.local_addr().to_string();

    let mut lg = LoadGenConfig::new(cfg.lab.clone());
    lg.faults = FaultConfig {
        corrupt_rate: 0.2,
        ..FaultConfig::off(11)
    };
    lg.max_samples_per_machine = Some(3_000);
    let report = fgcs_service::run_loadgen(&addr, &lg).expect("loadgen runs");
    assert!(
        report.frames_corrupted > 0,
        "rate 0.2 must corrupt something"
    );

    let stats = drain(&server, report.batches_sent);
    assert_eq!(report.error_replies, report.frames_corrupted);
    assert_eq!(stats.decode_errors, report.frames_corrupted);
    assert_eq!(
        stats.ingested_batches,
        report.batches_sent - report.frames_corrupted
    );
    assert_eq!(
        report.acks + report.busys + report.error_replies,
        report.batches_sent,
        "client-side identity holds under corruption"
    );
    server.shutdown();
}

/// A dropped connection heals transparently: the next request reconnects
/// with backoff and the server keeps its per-machine state.
#[test]
fn client_reconnects_transparently() {
    let server = Server::start(ServiceConfig::default()).expect("server starts");
    let addr = server.local_addr().to_string();

    let mut cfg = ClientConfig::new(&addr);
    cfg.backoff_unit_ms = 1;
    let mut client = ServiceClient::connect(cfg).expect("client connects");
    let batch = |t: u64| Frame::SampleBatch {
        machine: 7,
        samples: vec![WireSample {
            t,
            load: SampleLoad::Direct(0.01),
            host_resident_mb: 64,
            alive: true,
        }],
    };
    assert!(matches!(
        client.request(&batch(0)).unwrap(),
        Frame::Ack { .. }
    ));
    assert_eq!(client.reconnects, 0);

    client.force_disconnect();
    assert!(!client.is_connected());
    assert!(matches!(
        client.request(&batch(60)).unwrap(),
        Frame::Ack { .. }
    ));
    assert_eq!(client.reconnects, 1, "exactly one transparent reconnect");

    let stats = drain(&server, 2);
    assert_eq!(stats.ingested_batches, 2, "state survived the reconnect");
    server.shutdown();
}

/// Querying a machine the server has never seen earns a typed error,
/// not a hang or a connection drop.
#[test]
fn unknown_machine_query_gets_typed_error() {
    let server = Server::start(ServiceConfig::default()).expect("server starts");
    let addr = server.local_addr().to_string();
    let mut client = ServiceClient::connect(ClientConfig::new(&addr)).expect("client connects");
    let reply = client
        .request(&Frame::QueryAvail {
            machine: 999,
            horizon: 1_800,
        })
        .expect("reply arrives");
    match reply {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownMachine),
        other => panic!("expected Error, got tag {}", other.tag()),
    }
    // The connection is still usable afterwards.
    let reply = client
        .request(&Frame::QueryStats)
        .expect("stats still answered");
    assert!(matches!(reply, Frame::StatsReply(_)));
    server.shutdown();
}
