//! Backend-equivalence, auth-handshake, disconnect, and connection-cap
//! tests over real localhost TCP.
//!
//! The epoll readiness loops must be *indistinguishable* from the
//! thread-per-connection backend at the protocol and accounting level:
//! same replies, same occurrence records bit for bit, same identities —
//! at one event loop and at four (where cross-loop forwarding rings
//! carry foreign-shard batches), over both the `SO_REUSEPORT` listener
//! set and the fd-handoff fallback.

use std::io::{Read, Write};
use std::net::TcpStream;

use fgcs_service::{Backend, ClientConfig, Server, ServiceClient, ServiceConfig};
use fgcs_testbed::{trace_machine, MachinePlan, OccurrenceRecorder, TestbedConfig};
use fgcs_wire::{Decoder, ErrorCode, Frame, SampleLoad, WireSample, WireTransition};

/// Polls until the server's counters reconcile with `batches_sent`.
fn drain(server: &Server, batches_sent: u64) -> fgcs_wire::StatsPayload {
    for _ in 0..600 {
        let stats = server.stats();
        let accounted = stats.ingested_batches + stats.shed_batches + stats.decode_errors;
        if accounted >= batches_sent && stats.queue_depth == 0 {
            return stats;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("server failed to drain: {:?}", server.stats());
}

fn expected_transitions(cfg: &TestbedConfig, machine: usize) -> Vec<WireTransition> {
    let plan = MachinePlan::generate(&cfg.lab, machine);
    let mut rec = OccurrenceRecorder::new(machine as u32, cfg.detector);
    let mut out = Vec::new();
    for s in plan.samples() {
        let obs = if s.alive {
            fgcs_core::monitor::Observation {
                host_load: s.host_load,
                free_mem_mb: cfg.lab.free_for_guest_mb(s.host_resident_mb),
                alive: true,
            }
        } else {
            fgcs_core::monitor::Observation::dead()
        };
        let before = rec.state();
        let step = rec.observe(s.t, &obs);
        if step.state != before {
            out.push(WireTransition {
                seq: out.len() as u64 + 1,
                at: s.t,
                state: step.state.code(),
            });
        }
    }
    out
}

fn batch(machine: u32, t0: u64, n: u64) -> Frame {
    let samples = (0..n)
        .map(|i| WireSample {
            t: t0 + 60 * i,
            load: SampleLoad::Direct(0.05),
            host_resident_mb: 64,
            alive: true,
        })
        .collect();
    Frame::SampleBatch { machine, samples }
}

/// An epoll config running `loops` event loops.
#[cfg(target_os = "linux")]
fn epoll_cfg(loops: usize) -> ServiceConfig {
    ServiceConfig {
        backend: Backend::Epoll,
        event_loops: loops,
        ..Default::default()
    }
}

/// Streams `TestbedConfig::tiny` through a server configured by
/// `tweak` and returns (per-machine records, per-machine transitions,
/// stats).
#[cfg(target_os = "linux")]
fn stream_tiny(
    tweak: impl Fn(&mut ServiceConfig),
) -> (
    Vec<Vec<fgcs_testbed::TraceRecord>>,
    Vec<Vec<WireTransition>>,
    fgcs_wire::StatsPayload,
) {
    let cfg = TestbedConfig::tiny();
    let mut svc = ServiceConfig::for_testbed(&cfg);
    tweak(&mut svc);
    let server = Server::start(svc).expect("server starts");
    let addr = server.local_addr().to_string();

    let lg = fgcs_service::LoadGenConfig::new(cfg.lab.clone());
    let report = fgcs_service::run_loadgen(&addr, &lg).expect("loadgen runs");
    assert_eq!(report.acks, report.batches_sent, "clean run fully acked");
    let stats = drain(&server, report.batches_sent);
    assert_eq!(stats.decode_errors, 0);

    let mut records = Vec::new();
    let mut transitions = Vec::new();
    for machine in 0..cfg.lab.machines {
        records.push(server.records(machine as u32).expect("machine streamed"));
        transitions.push(server.transitions(machine as u32).expect("streamed"));
    }
    server.shutdown();
    (records, transitions, stats)
}

/// The tentpole equivalence proof: the same trace through the threaded
/// backend and every epoll flavor — one loop, four loops (foreign-shard
/// batches crossing the forwarding rings), and four loops forced onto
/// the fd-handoff fallback — yields **byte-identical** occurrence
/// records and transition logs, all matching the in-process pipeline.
#[test]
#[cfg(target_os = "linux")]
fn backends_produce_bit_identical_records() {
    let cfg = TestbedConfig::tiny();
    let (rec_t, tr_t, stats_t) = stream_tiny(|s| s.backend = Backend::Threads);
    let flavors: [(&str, Box<dyn Fn(&mut ServiceConfig)>); 3] = [
        (
            "epoll-1",
            Box::new(|s: &mut ServiceConfig| {
                s.backend = Backend::Epoll;
                s.event_loops = 1;
            }),
        ),
        (
            "epoll-4",
            Box::new(|s: &mut ServiceConfig| {
                s.backend = Backend::Epoll;
                s.event_loops = 4;
            }),
        ),
        (
            "epoll-4-handoff",
            Box::new(|s: &mut ServiceConfig| {
                s.backend = Backend::Epoll;
                s.event_loops = 4;
                s.force_fd_handoff = true;
            }),
        ),
    ];

    for machine in 0..cfg.lab.machines {
        let local = trace_machine(&cfg, machine);
        assert_eq!(
            rec_t[machine], local,
            "threaded backend vs in-process, machine {machine}"
        );
        let expected = expected_transitions(&cfg, machine);
        assert_eq!(tr_t[machine], expected, "threaded transitions {machine}");
    }
    for (name, tweak) in &flavors {
        let (rec_e, tr_e, stats_e) = stream_tiny(tweak);
        for machine in 0..cfg.lab.machines {
            assert_eq!(
                rec_e[machine], rec_t[machine],
                "{name} vs threaded records, machine {machine}"
            );
            assert_eq!(
                tr_e[machine], tr_t[machine],
                "{name} vs threaded transitions, machine {machine}"
            );
        }
        assert_eq!(stats_t.ingested_batches, stats_e.ingested_batches, "{name}");
        assert_eq!(stats_t.ingested_samples, stats_e.ingested_samples, "{name}");
        assert_eq!(stats_t.shed_batches, stats_e.shed_batches, "{name}");
    }
}

/// Running more event loops than state shards cannot partition the
/// shards exclusively, so startup must refuse it with `InvalidInput`
/// instead of silently starving a loop.
#[test]
#[cfg(target_os = "linux")]
fn more_loops_than_shards_is_refused_at_startup() {
    let svc = ServiceConfig {
        backend: Backend::Epoll,
        event_loops: 8,
        state_shards: 4,
        ..Default::default()
    };
    match Server::start(svc) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
        Ok(_) => panic!("loops > shards must not start"),
    }
}

/// A client dying mid-frame must not corrupt reassembly: the complete
/// frames before the cut are ingested, the fragment is discarded with
/// the connection, no decode error is charged, and a second connection
/// carries on to the exact in-process result.
fn mid_batch_disconnect(svc: ServiceConfig) {
    let backend = svc.backend;
    let server = Server::start(svc).expect("server starts");
    let addr = server.local_addr().to_string();

    let b1 = batch(3, 0, 4);
    let b2 = batch(3, 240, 4);
    let b3 = batch(3, 480, 4);

    // Connection A: batch 1 whole, then half of batch 2, then death.
    {
        let mut stream = TcpStream::connect(&addr).expect("conn A");
        stream.write_all(&b1.encode().unwrap()).unwrap();
        let mut dec = Decoder::new();
        let mut buf = [0u8; 4096];
        let reply = loop {
            if let Some(f) = dec.next_frame().unwrap() {
                break f;
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "server closed early");
            dec.push(&buf[..n]);
        };
        assert!(matches!(reply, Frame::Ack { .. }));
        let enc2 = b2.encode().unwrap();
        stream.write_all(&enc2[..enc2.len() / 2]).unwrap();
        stream.flush().unwrap();
        // Drop: RST/FIN with a partial frame buffered server-side.
    }

    // Connection B: resend batch 2, then batch 3.
    let mut cfg = ClientConfig::new(&addr);
    cfg.backoff_unit_ms = 1;
    let mut client = ServiceClient::connect(cfg).expect("conn B");
    assert!(matches!(client.request(&b2).unwrap(), Frame::Ack { .. }));
    assert!(matches!(client.request(&b3).unwrap(), Frame::Ack { .. }));

    let stats = drain(&server, 3);
    assert_eq!(stats.ingested_batches, 3, "{backend:?}: 3 whole batches");
    assert_eq!(
        stats.decode_errors, 0,
        "{backend:?}: a truncated tail is not a decode error"
    );
    assert_eq!(stats.shed_batches, 0);

    // Records equal an in-process run over the same 12 samples. The
    // default server derives its memory model from `LabConfig::default`.
    let lab = fgcs_testbed::LabConfig::default();
    let mut rec = OccurrenceRecorder::new(3, ServiceConfig::default().detector);
    for f in [&b1, &b2, &b3] {
        let Frame::SampleBatch { samples, .. } = f else {
            unreachable!()
        };
        for s in samples {
            let obs = fgcs_core::monitor::Observation {
                host_load: 0.05,
                free_mem_mb: lab.free_for_guest_mb(s.host_resident_mb),
                alive: true,
            };
            rec.observe(s.t, &obs);
        }
    }
    assert_eq!(
        server.records(3).expect("machine exists"),
        rec.into_records(),
        "{backend:?}: reassembly survived the mid-frame death"
    );
    server.shutdown();
}

#[test]
fn mid_batch_disconnect_threads() {
    mid_batch_disconnect(ServiceConfig {
        backend: Backend::Threads,
        ..Default::default()
    });
}

#[test]
#[cfg(target_os = "linux")]
fn mid_batch_disconnect_epoll() {
    mid_batch_disconnect(epoll_cfg(1));
}

#[test]
#[cfg(target_os = "linux")]
fn mid_batch_disconnect_epoll_multiloop() {
    mid_batch_disconnect(epoll_cfg(4));
}

/// The auth handshake: the right token opens the stream, the wrong
/// token (or none) earns a typed `Unauthorized` and a close — on both
/// backends, with the server counting each rejection.
fn auth_handshake(mut svc: ServiceConfig) {
    let backend = svc.backend;
    svc.auth_token = Some("s3cret".to_string());
    let server = Server::start(svc).expect("server starts");
    let addr = server.local_addr().to_string();

    // Right token: full request cycle works, reconnect re-authenticates.
    let mut cfg = ClientConfig::new(&addr);
    cfg.backoff_unit_ms = 1;
    cfg.token = Some("s3cret".to_string());
    let mut client = ServiceClient::connect(cfg).expect("authed connect");
    assert!(matches!(
        client.request(&batch(1, 0, 2)).unwrap(),
        Frame::Ack { .. }
    ));
    client.force_disconnect();
    assert!(matches!(
        client.request(&batch(1, 120, 2)).unwrap(),
        Frame::Ack { .. }
    ));
    assert_eq!(client.reconnects, 1);

    // Wrong token: terminal PermissionDenied, no retry storm.
    let mut bad = ClientConfig::new(&addr);
    bad.backoff_unit_ms = 1;
    bad.token = Some("wrong".to_string());
    match ServiceClient::connect(bad) {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::PermissionDenied, "{e}"),
        Ok(_) => panic!("wrong token accepted"),
    }

    // No token at all: the first data frame is refused with the typed
    // error before touching any machine state.
    let mut anon = ServiceClient::connect(ClientConfig::new(&addr)).expect("tcp connects");
    match anon.request(&batch(2, 0, 2)).unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Unauthorized),
        other => panic!("expected Unauthorized, got tag {}", other.tag()),
    }

    let stats = drain(&server, 2);
    assert_eq!(stats.ingested_batches, 2, "only authed batches ingested");
    assert_eq!(
        server.auth_rejects(),
        2,
        "{backend:?}: one wrong-token + one anonymous rejection"
    );
    assert!(
        server.records(2).is_none(),
        "anon batch never reached state"
    );
    server.shutdown();
}

#[test]
fn auth_handshake_threads() {
    auth_handshake(ServiceConfig {
        backend: Backend::Threads,
        ..Default::default()
    });
}

#[test]
#[cfg(target_os = "linux")]
fn auth_handshake_epoll() {
    auth_handshake(epoll_cfg(1));
}

#[test]
#[cfg(target_os = "linux")]
fn auth_handshake_epoll_multiloop() {
    auth_handshake(epoll_cfg(4));
}

/// Over the connection cap the server answers with a typed `ConnLimit`
/// error instead of hanging or silently dropping.
#[test]
fn over_cap_connection_gets_typed_error() {
    let svc = ServiceConfig {
        backend: Backend::Threads,
        max_connections: 1,
        ..Default::default()
    };
    let server = Server::start(svc).expect("server starts");
    let addr = server.local_addr().to_string();

    let mut first = ServiceClient::connect(ClientConfig::new(&addr)).expect("first conn");
    assert!(matches!(
        first.request(&Frame::QueryStats).unwrap(),
        Frame::StatsReply(_)
    ));

    // Second connection: expect Error { ConnLimit } then EOF.
    let mut stream = TcpStream::connect(&addr).expect("tcp connects");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut dec = Decoder::new();
    let mut buf = [0u8; 4096];
    let reply = loop {
        if let Some(f) = dec.next_frame().unwrap() {
            break f;
        }
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "connection closed without the typed error");
        dec.push(&buf[..n]);
    };
    match reply {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::ConnLimit),
        other => panic!("expected ConnLimit, got tag {}", other.tag()),
    }
    assert_eq!(server.conn_rejects(), 1);

    // The first connection is unaffected.
    assert!(matches!(
        first.request(&Frame::QueryStats).unwrap(),
        Frame::StatsReply(_)
    ));
    server.shutdown();
}

/// A client must survive a *full server restart* on the same port: the
/// next request transparently reconnects, the auth handshake is re-run
/// before any queued data, and nothing wedges.
fn reconnect_through_server_restart(mut svc: ServiceConfig) {
    let backend = svc.backend;
    svc.auth_token = Some("s3cret".to_string());
    svc.reuse_addr = true;

    let first = Server::start(svc.clone()).expect("first life");
    let addr = first.local_addr().to_string();
    let mut cfg = ClientConfig::new(&addr);
    cfg.backoff_unit_ms = 1;
    cfg.token = Some("s3cret".to_string());
    let mut client = ServiceClient::connect(cfg).expect("authed connect");
    assert!(matches!(
        client.request(&batch(1, 0, 2)).unwrap(),
        Frame::Ack { .. }
    ));
    drain(&first, 1);
    first.shutdown();

    // Second life on the *same* port — possible only because the
    // listener binds with SO_REUSEADDR while the first life's server-
    // side sockets sit in TIME_WAIT.
    let second = Server::start(ServiceConfig {
        addr: addr.clone(),
        ..svc
    })
    .expect("rebind the same port across the restart");

    // The held stream is dead; the next request must reconnect AND
    // re-authenticate (the new server has no memory of the old
    // session) before the batch goes out.
    assert!(matches!(
        client.request(&batch(1, 120, 2)).unwrap(),
        Frame::Ack { .. }
    ));
    assert_eq!(client.reconnects, 1, "{backend:?}: exactly one reconnect");
    let stats = drain(&second, 1);
    assert_eq!(
        stats.ingested_batches, 1,
        "{backend:?}: the post-restart batch was ingested by the new life"
    );
    assert_eq!(
        second.auth_rejects(),
        0,
        "{backend:?}: the re-auth presented the token before any data"
    );
    second.shutdown();
}

#[test]
fn reconnect_through_server_restart_threads() {
    reconnect_through_server_restart(ServiceConfig {
        backend: Backend::Threads,
        ..Default::default()
    });
}

#[test]
#[cfg(target_os = "linux")]
fn reconnect_through_server_restart_epoll() {
    reconnect_through_server_restart(epoll_cfg(1));
}

#[test]
#[cfg(target_os = "linux")]
fn reconnect_through_server_restart_epoll_multiloop() {
    reconnect_through_server_restart(epoll_cfg(4));
}

/// When the server *stays* dead, a previously-healthy client must give
/// up within its retry budget. Regression test for a reconnect wedge:
/// the healthy-reset rule compared against `connected_at.elapsed()`,
/// which keeps growing after the stream dies, so every failed attempt
/// re-earned the budget and the client retried forever.
#[test]
fn previously_healthy_client_gives_up_when_server_stays_dead() {
    let server = Server::start(ServiceConfig::default()).expect("server");
    let addr = server.local_addr().to_string();
    let mut cfg = ClientConfig::new(&addr);
    cfg.backoff_unit_ms = 1;
    // Tiny budget, and a healthy-reset horizon (1 ms) that the healthy
    // connection below will definitely exceed — the exact precondition
    // that used to wedge.
    cfg.sup.max_retries = 3;
    cfg.sup.backoff_base_secs = 1;
    cfg.sup.backoff_cap_secs = 4;
    cfg.sup.healthy_reset_secs = 1;
    let mut client = ServiceClient::connect(cfg).expect("connects");
    assert!(matches!(
        client.request(&Frame::QueryStats).unwrap(),
        Frame::StatsReply(_)
    ));
    std::thread::sleep(std::time::Duration::from_millis(10)); // healthy long enough
    server.shutdown();

    let begin = std::time::Instant::now();
    let err = client
        .request(&Frame::QueryStats)
        .expect_err("the server is gone for good");
    assert_ne!(err.kind(), std::io::ErrorKind::PermissionDenied);
    assert!(
        begin.elapsed() < std::time::Duration::from_secs(30),
        "gave up within the budget instead of retrying forever"
    );
}

/// Small fan-in smoke on both backends: every connection sustains, the
/// client- and server-side identities reconcile exactly.
#[test]
#[cfg(target_os = "linux")]
fn fanin_driver_reconciles_on_both_backends() {
    let threads = ServiceConfig {
        backend: Backend::Threads,
        ..Default::default()
    };
    for (backend, mut svc) in [
        ("threads", threads),
        ("epoll-1", epoll_cfg(1)),
        ("epoll-4", epoll_cfg(4)),
    ] {
        svc.auth_token = Some("s3cret".to_string());
        let server = Server::start(svc).expect("server starts");
        let addr = server.local_addr().to_string();

        let mut fic = fgcs_service::FanInConfig::new(8);
        fic.batches_per_conn = 3;
        fic.batch_size = 8;
        fic.query_every_batches = 2;
        fic.token = Some("s3cret".to_string());
        let report = fgcs_service::run_fanin(&addr, &fic).expect("fan-in runs");

        assert_eq!(report.conns_connected, 8, "{backend:?}");
        assert_eq!(report.conns_sustained, 8, "{backend:?}");
        assert_eq!(report.conns_failed, 0, "{backend:?}");
        assert_eq!(report.conns_rejected, 0, "{backend:?}");
        assert_eq!(report.batches_sent, 24, "{backend:?}");
        assert_eq!(
            report.acks + report.busys + report.error_replies,
            report.batches_sent,
            "{backend:?}: client-side identity"
        );
        assert_eq!(report.queries_sent, 8, "{backend:?}");
        assert_eq!(
            report.queries_answered + report.query_errors,
            report.queries_sent,
            "{backend:?}"
        );

        let stats = drain(&server, report.batches_sent);
        assert_eq!(
            stats.ingested_batches + stats.shed_batches + stats.decode_errors,
            report.batches_sent,
            "{backend:?}: server-side identity"
        );
        assert_eq!(
            stats.ingested_samples + stats.shed_samples,
            report.samples_sent
        );
        server.shutdown();
    }
}

/// A malformed frame — sound header, garbage payload — must come back
/// as a typed `BadFrame` error on the same stream, count as a decode
/// error, and leave the connection usable: the framing layer stays in
/// sync, so the next well-formed request still answers. A corrupted
/// payload (CRC mismatch) gets the same treatment. Both backends run
/// one shared frame-handling path; this pins that the *recovery*
/// behavior is identical too.
fn malformed_frame_gets_typed_error_and_stream_survives(svc: ServiceConfig) {
    let backend = svc.backend;
    let server = Server::start(svc).expect("server starts");
    let mut stream = TcpStream::connect(server.local_addr()).expect("raw connect");
    let mut decoder = Decoder::new();
    let mut read_reply = |stream: &mut TcpStream, decoder: &mut Decoder| -> Frame {
        let mut buf = [0u8; 4096];
        loop {
            if let Ok(Some(frame)) = decoder.next_frame() {
                return frame;
            }
            let n = stream.read(&mut buf).expect("reply readable");
            assert!(n > 0, "{backend:?}: server closed on a recoverable frame");
            decoder.push(&buf[..n]);
        }
    };

    // Garbage payload under a sound header: magic, version, and a real
    // tag, but 3 junk bytes where QueryAvail's 12-byte payload belongs.
    // The CRC is *correct* for the junk, so this exercises the payload
    // decoder, not the checksum.
    let junk = [0xde, 0xad, 0xbe];
    let mut raw = Vec::new();
    raw.extend_from_slice(b"FC");
    raw.push(fgcs_wire::PROTOCOL_VERSION);
    raw.push(
        Frame::QueryAvail {
            machine: 0,
            horizon: 0,
        }
        .tag(),
    );
    raw.extend_from_slice(&(junk.len() as u32).to_le_bytes());
    raw.extend_from_slice(&fgcs_wire::codec::crc32(&junk).to_le_bytes());
    raw.extend_from_slice(&junk);
    stream.write_all(&raw).expect("junk frame written");
    match read_reply(&mut stream, &mut decoder) {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame, "{backend:?}"),
        other => panic!("{backend:?}: expected BadFrame, got tag {}", other.tag()),
    }

    // Corrupted payload: a well-formed batch with one payload byte
    // flipped fails the CRC — same typed reply, same survival.
    let mut corrupted = batch(1, 0, 2).encode().expect("encodable");
    let last = corrupted.len() - 1;
    corrupted[last] ^= 0xff;
    stream
        .write_all(&corrupted)
        .expect("corrupted frame written");
    match read_reply(&mut stream, &mut decoder) {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame, "{backend:?}"),
        other => panic!("{backend:?}: expected BadFrame, got tag {}", other.tag()),
    }

    // The stream survived both: a valid request on the same socket
    // still answers, and nothing reached machine state.
    let ok = batch(1, 0, 2).encode().expect("encodable");
    stream.write_all(&ok).expect("valid frame written");
    match read_reply(&mut stream, &mut decoder) {
        Frame::Ack { .. } => {}
        other => panic!("{backend:?}: expected Ack, got tag {}", other.tag()),
    }
    let stats = drain(&server, 3);
    assert_eq!(stats.decode_errors, 2, "{backend:?}: both rejects counted");
    assert_eq!(stats.ingested_batches, 1, "{backend:?}");
    server.shutdown();
}

#[test]
fn malformed_frame_recovery_threads() {
    malformed_frame_gets_typed_error_and_stream_survives(ServiceConfig {
        backend: Backend::Threads,
        ..Default::default()
    });
}

#[cfg(target_os = "linux")]
#[test]
fn malformed_frame_recovery_epoll() {
    malformed_frame_gets_typed_error_and_stream_survives(epoll_cfg(1));
}

#[cfg(target_os = "linux")]
#[test]
fn malformed_frame_recovery_epoll_multiloop() {
    malformed_frame_gets_typed_error_and_stream_survives(epoll_cfg(4));
}
