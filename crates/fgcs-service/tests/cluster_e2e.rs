//! Replicated cluster mode, end to end: follower seq-log streaming,
//! promotion, follower crash-restart resubscription, and kill-primary
//! failover through the routing client.
//!
//! The contract under test (DESIGN.md §13): a follower pulling the
//! primary's replication log rebuilds **bit-identical** state (the
//! entries carry the raw ingested batches and ingest is deterministic);
//! a follower restarted mid-stream resubscribes from the replication
//! cursor its snapshot restored — never from scratch, never skipping —
//! and still converges bit-identically; and killing the primary under
//! live load, promoting the follower, and failing the router over loses
//! zero records: the cluster's final state matches an unkilled
//! single-server reference on the same trace, record for record.

#![cfg(target_os = "linux")]

use fgcs_core::backoff::BackoffPolicy;
use fgcs_service::cluster::{ClusterClient, ClusterConfig, ShardSpec};
use fgcs_service::{
    Backend, ClientConfig, Server, ServiceClient, ServiceConfig, ROLE_FOLLOWER, ROLE_PRIMARY,
};
use fgcs_wire::{Frame, SampleLoad, WireSample};

const MACHINES: u32 = 3;
const SAMPLES: u64 = 400;

/// The deterministic replay wave shared by the restart smokes: sample
/// `i` of machine `m` at `t = i * 15`, 40 samples busy / 40 idle,
/// phase-shifted per machine.
fn wave_sample(machine: u32, i: u64) -> WireSample {
    let busy = ((i + 7 * machine as u64) / 40) % 2 == 1;
    WireSample {
        t: i * 15,
        load: SampleLoad::Direct(if busy { 0.9 } else { 0.05 }),
        host_resident_mb: 100,
        alive: true,
    }
}

fn connect(addr: &str) -> ServiceClient {
    let mut cfg = ClientConfig::new(addr);
    cfg.backoff_unit_ms = 1;
    ServiceClient::connect(cfg).expect("client connects")
}

fn primary_config() -> ServiceConfig {
    ServiceConfig {
        backend: Backend::Threads,
        repl_log_capacity: 4096,
        ..Default::default()
    }
}

fn follower_config(primary_addr: &str) -> ServiceConfig {
    ServiceConfig {
        backend: Backend::Threads,
        follower_of: Some(primary_addr.to_string()),
        pull_interval_ms: 1,
        ..Default::default()
    }
}

/// Streams wave samples `range` for every machine directly to `client`.
fn stream_wave(client: &mut ServiceClient, range: std::ops::Range<u64>) {
    for machine in 1..=MACHINES {
        let todo: Vec<WireSample> = range.clone().map(|i| wave_sample(machine, i)).collect();
        for chunk in todo.chunks(50) {
            let reply = client
                .request(&Frame::SampleBatch {
                    machine,
                    samples: chunk.to_vec(),
                })
                .expect("batch sent");
            assert!(matches!(reply, Frame::Ack { .. }), "tag {}", reply.tag());
        }
    }
}

/// Polls `Stats` until every machine's pipeline on `client`'s server
/// has consumed its sample at `final_i`.
fn wait_caught_up(client: &mut ServiceClient, final_i: u64) {
    let final_t = final_i * 15;
    for _ in 0..1_000 {
        let Frame::StatsReply(stats) = client.request(&Frame::QueryStats).unwrap() else {
            panic!("stats reply expected")
        };
        let done = (1..=MACHINES).all(|m| {
            stats
                .machines
                .iter()
                .any(|s| s.machine == m && s.last_t >= final_t)
        });
        if done && stats.queue_depth == 0 {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("server did not catch up to sample {final_i}");
}

fn repl_status(client: &mut ServiceClient) -> (u8, u64, u64) {
    match client.request(&Frame::ReplStatus).unwrap() {
        Frame::ReplStatusReply {
            role,
            applied_seq,
            acked_seq,
            ..
        } => (role, applied_seq, acked_seq),
        other => panic!("repl status reply expected, got tag {}", other.tag()),
    }
}

/// Asserts every machine's records and transitions are identical
/// between two servers.
fn assert_bit_identical(a: &Server, b: &Server, what: &str) {
    for m in 1..=MACHINES {
        assert_eq!(
            a.records(m).expect("a streamed"),
            b.records(m).expect("b streamed"),
            "{what}: machine {m} occurrence records diverge"
        );
        assert_eq!(
            a.transitions(m).expect("a streamed"),
            b.transitions(m).expect("b streamed"),
            "{what}: machine {m} transition log diverges"
        );
    }
}

fn snap_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fgcs-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A follower streaming the primary's seq log converges to the same
/// state bit for bit, and promotion turns it into a primary that
/// accepts ingest.
#[test]
fn follower_converges_bit_identical_and_promotes() {
    let primary = Server::start(primary_config()).expect("primary");
    let follower =
        Server::start(follower_config(&primary.local_addr().to_string())).expect("follower");

    let mut to_primary = connect(&primary.local_addr().to_string());
    stream_wave(&mut to_primary, 0..SAMPLES);
    wait_caught_up(&mut to_primary, SAMPLES - 1);

    let mut to_follower = connect(&follower.local_addr().to_string());
    wait_caught_up(&mut to_follower, SAMPLES - 1);
    assert_bit_identical(&primary, &follower, "replicated catch-up");
    assert!(!follower.repl_failed(), "no divergence tripwire fired");

    // The follower applied everything the primary logged, and the
    // primary saw the acks come back (acks ride the pull requests, so
    // the last ack can lag one pull interval).
    let (role, applied, _) = repl_status(&mut to_follower);
    assert_eq!(role, ROLE_FOLLOWER);
    assert_eq!(applied, primary.repl_seq(), "follower applied the full log");
    for _ in 0..200 {
        if primary.repl_acked_seq() == primary.repl_seq() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(primary.repl_acked_seq(), primary.repl_seq());

    // A follower refuses ingest with the typed routing signal…
    let reply = to_follower
        .request(&Frame::SampleBatch {
            machine: 1,
            samples: vec![wave_sample(1, SAMPLES)],
        })
        .unwrap();
    assert!(
        matches!(reply, Frame::Error { code, .. } if code == fgcs_wire::ErrorCode::NotPrimary),
        "follower must reject ingest: {reply:?}"
    );

    // …until promoted, after which it ingests like any primary.
    let promoted = to_follower.request(&Frame::Promote).unwrap();
    assert!(matches!(promoted, Frame::Ack { .. }));
    let (role, _, _) = repl_status(&mut to_follower);
    assert_eq!(role, ROLE_PRIMARY);
    let reply = to_follower
        .request(&Frame::SampleBatch {
            machine: 1,
            samples: vec![wave_sample(1, SAMPLES)],
        })
        .unwrap();
    assert!(matches!(reply, Frame::Ack { .. }), "promoted node ingests");

    primary.shutdown();
    follower.shutdown();
}

/// A follower stopped mid-stream restarts from its snapshot, carries a
/// positive replication cursor in that snapshot, resubscribes from it,
/// and converges bit-identically — the crash-recovery path composed
/// with replication.
#[test]
fn follower_restart_resubscribes_from_snapshot_cursor() {
    let dir = snap_dir("resub");
    let primary = Server::start(primary_config()).expect("primary");
    let mut follower_cfg = follower_config(&primary.local_addr().to_string());
    follower_cfg.snapshot_dir = Some(dir.to_string_lossy().into_owned());
    follower_cfg.snapshot_interval_ms = 60_000; // the final checkpoint is the one that matters

    let follower = Server::start(follower_cfg.clone()).expect("follower, first life");
    let mut to_primary = connect(&primary.local_addr().to_string());
    stream_wave(&mut to_primary, 0..SAMPLES / 2);
    wait_caught_up(&mut to_primary, SAMPLES / 2 - 1);
    let mut to_follower = connect(&follower.local_addr().to_string());
    wait_caught_up(&mut to_follower, SAMPLES / 2 - 1);
    // Graceful stop writes the final checkpoint with the follower's
    // replication cursor in the header.
    follower.shutdown();

    let floor_in_snapshot = std::fs::read_dir(&dir)
        .expect("snapshot dir exists")
        .filter_map(|e| std::fs::read_to_string(e.ok()?.path()).ok())
        .filter_map(|body| {
            let (_, tail) = body.split_once("\"repl_seq\":")?;
            tail.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse::<u64>()
                .ok()
        })
        .max()
        .expect("a snapshot carrying repl_seq");
    assert!(
        floor_in_snapshot > 0,
        "the snapshot must persist a positive replication cursor"
    );

    // The primary keeps moving while the follower is down.
    stream_wave(&mut to_primary, SAMPLES / 2..SAMPLES);
    wait_caught_up(&mut to_primary, SAMPLES - 1);

    // Second life: restore, resubscribe from the restored cursor, and
    // converge on the full wave.
    let follower = Server::start(follower_cfg).expect("follower, second life");
    let mut to_follower = connect(&follower.local_addr().to_string());
    wait_caught_up(&mut to_follower, SAMPLES - 1);
    assert_bit_identical(&primary, &follower, "restart + resubscribe");
    assert!(!follower.repl_failed());
    let (_, applied, _) = repl_status(&mut to_follower);
    assert_eq!(applied, primary.repl_seq());

    primary.shutdown();
    follower.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario: kill the primary mid-replay under the
/// router, promote its follower, fail the router over — zero records
/// lost, final state bit-identical to an unkilled single-server
/// reference on the same trace.
#[test]
fn kill_primary_promote_follower_router_loses_nothing() {
    // Unkilled reference.
    let reference = Server::start(ServiceConfig {
        backend: Backend::Threads,
        ..Default::default()
    })
    .expect("reference");
    let mut to_reference = connect(&reference.local_addr().to_string());
    stream_wave(&mut to_reference, 0..SAMPLES);
    wait_caught_up(&mut to_reference, SAMPLES - 1);

    // The replicated shard.
    let primary = Server::start(primary_config()).expect("primary");
    let follower =
        Server::start(follower_config(&primary.local_addr().to_string())).expect("follower");
    let mut cfg = ClusterConfig::new(vec![ShardSpec {
        name: "shard-0".into(),
        primary_addr: primary.local_addr().to_string(),
        follower_addr: Some(follower.local_addr().to_string()),
    }]);
    cfg.backoff = BackoffPolicy { base: 2, cap: 20 };
    cfg.max_attempts = 12;
    let mut router = ClusterClient::connect(cfg).expect("router");

    // First half of the wave through the router.
    for machine in 1..=MACHINES {
        let first: Vec<WireSample> = (0..SAMPLES / 2).map(|i| wave_sample(machine, i)).collect();
        for chunk in first.chunks(50) {
            let reply = router.ingest(machine, chunk.to_vec()).expect("ingest");
            assert!(matches!(reply, Frame::Ack { .. }));
        }
    }
    // Let the follower ack everything the primary logged, so the kill
    // provably loses nothing up to the acked seq.
    let mut to_follower = connect(&follower.local_addr().to_string());
    wait_caught_up(&mut to_follower, SAMPLES / 2 - 1);
    let acked_at_kill = primary.repl_acked_seq();
    let head_at_kill = primary.repl_seq();

    // Kill the primary, promote the follower.
    primary.shutdown();
    let promoted = to_follower.request(&Frame::Promote).unwrap();
    assert!(matches!(promoted, Frame::Ack { .. }));

    // Nothing acked was lost: the promoted follower applied at least
    // everything the primary had acknowledged back to it.
    let (role, applied, _) = repl_status(&mut to_follower);
    assert_eq!(role, ROLE_PRIMARY);
    assert!(
        applied >= acked_at_kill,
        "promoted follower applied {applied}, primary had acked {acked_at_kill}"
    );
    assert_eq!(
        applied, head_at_kill,
        "the follower was fully caught up at the kill"
    );

    // Second half through the router: the cached route points at the
    // dead primary, so the first request fails over (and the ingest
    // path resumes strictly after the follower's per-machine last_t —
    // retried batches never double-count).
    for machine in 1..=MACHINES {
        let second: Vec<WireSample> = (SAMPLES / 2..SAMPLES)
            .map(|i| wave_sample(machine, i))
            .collect();
        for chunk in second.chunks(50) {
            let reply = router
                .ingest(machine, chunk.to_vec())
                .expect("ingest after kill");
            assert!(matches!(reply, Frame::Ack { .. }));
        }
    }
    assert!(
        router.metrics.failovers >= 1,
        "the router flipped to the promoted follower: {:?}",
        router.metrics
    );

    wait_caught_up(&mut to_follower, SAMPLES - 1);
    assert_bit_identical(&reference, &follower, "failover");
    follower.shutdown();
    reference.shutdown();
}

/// A chained deployment — primary → mid → leaf, each pulling from the
/// node above — converges bit-identically at depth 2. The mid node
/// serves `ReplPull` from the log it mirrors (`append_remote` retains
/// entries precisely so a follower can feed its own follower), so the
/// leaf never talks to the primary at all.
#[test]
fn follower_chain_depth_two_converges_bit_identical() {
    let primary = Server::start(primary_config()).expect("primary");
    let mid = Server::start(follower_config(&primary.local_addr().to_string())).expect("mid");
    let leaf = Server::start(follower_config(&mid.local_addr().to_string())).expect("leaf");

    let mut to_primary = connect(&primary.local_addr().to_string());
    let mut to_mid = connect(&mid.local_addr().to_string());
    let mut to_leaf = connect(&leaf.local_addr().to_string());

    // Two pushes with a convergence wait between them, so the second
    // half exercises steady-state relay (mid already caught up), not
    // just one bulk catch-up.
    for range in [0..SAMPLES / 2, SAMPLES / 2..SAMPLES] {
        stream_wave(&mut to_primary, range.clone());
        wait_caught_up(&mut to_primary, range.end - 1);
        wait_caught_up(&mut to_mid, range.end - 1);
        wait_caught_up(&mut to_leaf, range.end - 1);
    }

    assert_bit_identical(&primary, &mid, "depth 1 of the chain");
    assert_bit_identical(&primary, &leaf, "depth 2 of the chain");
    assert!(!mid.repl_failed(), "mid tripped divergence");
    assert!(!leaf.repl_failed(), "leaf tripped divergence");

    // The seq log relays verbatim: every hop holds the same head.
    let (role, applied, _) = repl_status(&mut to_leaf);
    assert_eq!(role, ROLE_FOLLOWER);
    assert_eq!(applied, primary.repl_seq(), "leaf applied the full log");
    let (_, mid_applied, _) = repl_status(&mut to_mid);
    assert_eq!(mid_applied, primary.repl_seq());

    primary.shutdown();
    mid.shutdown();
    leaf.shutdown();
}

/// `NotPrimary` is a routing signal from a live node, not a fault: the
/// router's first flip must retry immediately instead of burning a
/// backoff step. With a 2 s backoff base, any sleep would blow the
/// elapsed budget — a router booted with a stale shard view (follower
/// listed as primary) must stream at full speed from request one, and
/// a mid-stream kill + promotion must heal through the normal
/// (slept) transport path without miscounting the instant reroutes.
#[test]
fn not_primary_reroute_skips_the_backoff_sleep() {
    let primary = Server::start(primary_config()).expect("primary");
    let follower =
        Server::start(follower_config(&primary.local_addr().to_string())).expect("follower");

    // Stale shard view: the follower is listed as the primary.
    let mut cfg = ClusterConfig::new(vec![ShardSpec {
        name: "shard-0".into(),
        primary_addr: follower.local_addr().to_string(),
        follower_addr: Some(primary.local_addr().to_string()),
    }]);
    cfg.backoff = BackoffPolicy {
        base: 2_000,
        cap: 2_000,
    };
    cfg.max_attempts = 4;
    let mut router = ClusterClient::connect(cfg).expect("router");

    let t0 = std::time::Instant::now();
    for machine in 1..=MACHINES {
        let first: Vec<WireSample> = (0..SAMPLES / 2).map(|i| wave_sample(machine, i)).collect();
        for chunk in first.chunks(50) {
            let reply = router.ingest(machine, chunk.to_vec()).expect("ingest");
            assert!(matches!(reply, Frame::Ack { .. }));
        }
    }
    // A jittered backoff step is at least base/2 = 1 s; staying under
    // that proves the reroute never slept.
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(1_000),
        "wrong-primary ingest burned a backoff step: {:?} elapsed, {:?}",
        t0.elapsed(),
        router.metrics
    );
    assert_eq!(
        (router.metrics.instant_reroutes, router.metrics.failovers),
        (1, 1),
        "exactly one instant flip to the real primary: {:?}",
        router.metrics
    );

    // Mid-stream promotion: the cached route now points at the real
    // primary; kill it and promote the follower. The next ingest heals
    // over the *transport* path, which must still back off (and must
    // not count as an instant reroute).
    let mut to_follower = connect(&follower.local_addr().to_string());
    wait_caught_up(&mut to_follower, SAMPLES / 2 - 1);
    primary.shutdown();
    let promoted = to_follower.request(&Frame::Promote).unwrap();
    assert!(matches!(promoted, Frame::Ack { .. }));

    for machine in 1..=MACHINES {
        let second: Vec<WireSample> = (SAMPLES / 2..SAMPLES)
            .map(|i| wave_sample(machine, i))
            .collect();
        for chunk in second.chunks(50) {
            let reply = router
                .ingest(machine, chunk.to_vec())
                .expect("ingest after kill + promotion");
            assert!(matches!(reply, Frame::Ack { .. }));
        }
    }
    assert!(
        router.metrics.failovers >= 2,
        "the transport fault flipped the route back: {:?}",
        router.metrics
    );
    assert_eq!(
        router.metrics.instant_reroutes, 1,
        "transport bounces must not skip the sleep: {:?}",
        router.metrics
    );
    wait_caught_up(&mut to_follower, SAMPLES - 1);
    follower.shutdown();
}

/// The tentpole of automatic failover (DESIGN.md §13.5): a follower
/// started with `auto_promote` detects its primary's death through the
/// pull loop alone — consecutive missed pulls plus an expired lease —
/// and self-promotes with **no operator frame**, at a strictly higher
/// epoch, having applied everything the primary logged.
#[test]
fn auto_promotion_follower_takes_over_without_an_operator() {
    let mut pcfg = primary_config();
    pcfg.lease_ms = 150;
    let primary = Server::start(pcfg).expect("primary");
    let mut fcfg = follower_config(&primary.local_addr().to_string());
    fcfg.auto_promote = true;
    fcfg.lease_ms = 150;
    fcfg.missed_pull_threshold = 2;
    let follower = Server::start(fcfg).expect("follower");

    let mut to_primary = connect(&primary.local_addr().to_string());
    stream_wave(&mut to_primary, 0..SAMPLES / 2);
    wait_caught_up(&mut to_primary, SAMPLES / 2 - 1);
    let mut to_follower = connect(&follower.local_addr().to_string());
    wait_caught_up(&mut to_follower, SAMPLES / 2 - 1);
    let head_at_kill = primary.repl_seq();
    assert_eq!(follower.epoch(), 1, "everyone is born at epoch 1");

    primary.shutdown();

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while follower.role() != ROLE_PRIMARY {
        assert!(
            std::time::Instant::now() < deadline,
            "follower never self-promoted after the primary died"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(follower.epoch(), 2, "promotion allocates a fresh epoch");
    let (role, applied, _) = repl_status(&mut to_follower);
    assert_eq!(role, ROLE_PRIMARY);
    assert_eq!(
        applied, head_at_kill,
        "the promoted follower applied the full log before taking over"
    );
    let reply = to_follower
        .request(&Frame::SampleBatch {
            machine: 1,
            samples: vec![wave_sample(1, SAMPLES / 2)],
        })
        .unwrap();
    assert!(
        matches!(reply, Frame::Ack { .. }),
        "self-promoted node ingests: {reply:?}"
    );
    follower.shutdown();
}

/// Fencing: a `ReplPull` carrying a strictly higher epoch demotes a
/// node that still believes it is the primary (it paused through a
/// failover, say), and the `NotPrimary` reply is the fencer's
/// confirmation. An equal epoch never fences — that is every routine
/// pull.
#[test]
fn a_pull_with_a_higher_epoch_fences_the_primary() {
    let primary = Server::start(primary_config()).expect("primary");
    let mut c = connect(&primary.local_addr().to_string());

    let fenced = c
        .request(&Frame::ReplPull {
            after_seq: 0,
            max_entries: 0,
            epoch: 7,
        })
        .unwrap();
    assert!(
        matches!(
            fenced,
            Frame::Error { code, .. } if code == fgcs_wire::ErrorCode::NotPrimary
        ),
        "a superseding epoch must demote and reject: {fenced:?}"
    );
    assert_eq!(primary.role(), ROLE_FOLLOWER, "the node demoted itself");
    assert_eq!(primary.epoch(), 7, "and adopted the superseding epoch");

    let reply = c
        .request(&Frame::SampleBatch {
            machine: 1,
            samples: vec![wave_sample(1, 0)],
        })
        .unwrap();
    assert!(
        matches!(reply, Frame::Error { code, .. } if code == fgcs_wire::ErrorCode::NotPrimary),
        "a fenced node must reject ingest: {reply:?}"
    );

    // Same epoch again: a routine pull, served normally.
    let reply = c
        .request(&Frame::ReplPull {
            after_seq: 0,
            max_entries: 10,
            epoch: 7,
        })
        .unwrap();
    assert!(
        matches!(reply, Frame::ReplEntries { .. }),
        "an equal epoch never fences: {reply:?}"
    );
    primary.shutdown();
}

/// The follower-read staleness bound: a bounded follower that has
/// never completed a pull answers `TooStale`, a caught-up one answers
/// reads, and the router prefers the replica (counting
/// `follower_reads`) while writes keep going to the primary.
#[test]
fn bounded_follower_reads_answer_fresh_and_reject_stale() {
    // Stale: bounded, upstream dead, never pulled.
    let mut orphan_cfg = follower_config("127.0.0.1:1");
    orphan_cfg.max_read_lag = Some(10);
    let orphan = Server::start(orphan_cfg).expect("orphan follower");
    let mut to_orphan = connect(&orphan.local_addr().to_string());
    for frame in [
        Frame::QueryAvail {
            machine: 1,
            horizon: 60,
        },
        Frame::Place { job_len: 60 },
        Frame::QueryStats,
    ] {
        let reply = to_orphan.request(&frame).unwrap();
        assert!(
            matches!(
                reply,
                Frame::Error { code, .. } if code == fgcs_wire::ErrorCode::TooStale
            ),
            "unknown staleness must gate reads: {reply:?}"
        );
    }
    orphan.shutdown();

    // Fresh: caught up within the bound, read through the router.
    let primary = Server::start(primary_config()).expect("primary");
    let mut fcfg = follower_config(&primary.local_addr().to_string());
    fcfg.max_read_lag = Some(1_000_000);
    let follower = Server::start(fcfg).expect("follower");
    let mut to_primary = connect(&primary.local_addr().to_string());
    stream_wave(&mut to_primary, 0..SAMPLES / 2);
    wait_caught_up(&mut to_primary, SAMPLES / 2 - 1);
    let mut to_follower = connect(&follower.local_addr().to_string());
    wait_caught_up(&mut to_follower, SAMPLES / 2 - 1);

    let cfg = ClusterConfig::new(vec![ShardSpec {
        name: "shard-0".into(),
        primary_addr: primary.local_addr().to_string(),
        follower_addr: Some(follower.local_addr().to_string()),
    }]);
    let mut router = ClusterClient::connect(cfg).expect("router");
    let avail = router.query_avail(1, 60).expect("follower-served read");
    assert!(matches!(avail, Frame::AvailReply { .. }), "{avail:?}");
    let placed = router.place_on(0, 60).expect("follower-served placement");
    assert!(matches!(placed, Frame::PlaceReply { .. }), "{placed:?}");
    let stats = router.read_stats_of(0).expect("follower-served stats");
    assert!(stats.machines.iter().any(|m| m.machine == 1));
    assert_eq!(
        router.metrics.follower_reads, 3,
        "all three reads came off the replica: {:?}",
        router.metrics
    );
    assert_eq!(router.metrics.failovers, 0, "no write-route flips");

    primary.shutdown();
    follower.shutdown();
}

/// The split-brain tie-break the ingest resume leans on: when *both*
/// endpoints claim the primary role — a revived old primary at epoch 1
/// next to the promoted follower at epoch 2 — `aim_at_primary` must
/// pick the higher epoch, never the revenant, so the resume's `last_t`
/// floor always comes from the node that actually owns the shard.
#[test]
fn aim_at_primary_prefers_the_higher_epoch_over_a_revenant() {
    // The "old primary": a plain primary, epoch 1.
    let revenant = Server::start(primary_config()).expect("revenant");
    // The "promoted follower": promoted out of follower mode, epoch 2.
    let mut fcfg = follower_config("127.0.0.1:1");
    fcfg.repl_log_capacity = 4096;
    let promoted = Server::start(fcfg).expect("promoted");
    promoted.promote();
    assert_eq!(promoted.epoch(), 2);
    assert_eq!(revenant.epoch(), 1);

    let mut cfg = ClusterConfig::new(vec![ShardSpec {
        name: "shard-0".into(),
        primary_addr: revenant.local_addr().to_string(),
        follower_addr: Some(promoted.local_addr().to_string()),
    }]);
    cfg.backoff = BackoffPolicy { base: 1, cap: 4 };
    let mut router = ClusterClient::connect(cfg).expect("router");

    // The route starts on the listed primary — the revenant.
    assert_eq!(router.endpoint_of(0), revenant.local_addr().to_string());
    router.aim_at_primary(0);
    assert_eq!(
        router.endpoint_of(0),
        promoted.local_addr().to_string(),
        "two primaries: the higher epoch must win"
    );
    // Idempotent once aimed.
    router.aim_at_primary(0);
    assert_eq!(router.endpoint_of(0), promoted.local_addr().to_string());

    // And the aimed route is where ingest lands. The ack means
    // *enqueued* — poll for the apply before judging who got the data.
    let reply = router.ingest(1, vec![wave_sample(1, 0)]).expect("ingest");
    assert!(matches!(reply, Frame::Ack { .. }));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while promoted.records(1).is_none() {
        assert!(
            std::time::Instant::now() < deadline,
            "the true primary never got the data"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(revenant.records(1).is_none(), "the revenant got nothing");

    revenant.shutdown();
    promoted.shutdown();
}

/// When *both* endpoints answer `NotPrimary` (a promotion that never
/// lands), only the first flip is instant — the rest back off, so two
/// followers can never trap the router in a hot ping-pong loop.
#[test]
fn repeated_not_primary_backs_off_after_the_first_flip() {
    let primary = Server::start(primary_config()).expect("primary");
    let f1 = Server::start(follower_config(&primary.local_addr().to_string())).expect("f1");
    let f2 = Server::start(follower_config(&primary.local_addr().to_string())).expect("f2");

    let mut cfg = ClusterConfig::new(vec![ShardSpec {
        name: "shard-0".into(),
        primary_addr: f1.local_addr().to_string(),
        follower_addr: Some(f2.local_addr().to_string()),
    }]);
    cfg.backoff = BackoffPolicy { base: 2, cap: 8 };
    cfg.max_attempts = 3;
    let mut router = ClusterClient::connect(cfg).expect("router");

    let err = router
        .ingest(1, vec![wave_sample(1, 0)])
        .expect_err("two followers can never accept ingest");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    assert_eq!(
        router.metrics.instant_reroutes, 1,
        "only the first consecutive NotPrimary skips the sleep: {:?}",
        router.metrics
    );

    primary.shutdown();
    f1.shutdown();
    f2.shutdown();
}
