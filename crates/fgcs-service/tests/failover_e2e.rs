//! Process-level failover: real `fgcs-serve` processes, real signals.
//!
//! The scenario the in-process suites cannot produce is a primary that
//! is *paused*, not dead — SIGSTOP freezes the process while the kernel
//! keeps accepting its TCP connections, so requests hang instead of
//! failing fast, and a later SIGCONT revives a node that still believes
//! it is the primary of a cluster that has since moved on. That node
//! answers `QueryStats` with a cursor that includes writes its
//! replacement never received; a router that trusted it for the ingest
//! resume floor would silently drop the pending suffix. The regression
//! pinned here: the resume probes both endpoints' `ReplStatus` and only
//! trusts the node holding the primary role at the highest epoch, and
//! the new primary's fencer demotes the revenant as soon as it wakes.

#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use fgcs_core::backoff::BackoffPolicy;
use fgcs_service::cluster::{ClusterClient, ClusterConfig, ShardSpec};
use fgcs_service::{ClientConfig, ServiceClient, ROLE_FOLLOWER, ROLE_PRIMARY};
use fgcs_wire::{Frame, SampleLoad, WireSample, WireTransition};

/// A spawned `fgcs-serve` process. Shuts down hard on drop so a failed
/// assertion never leaks a listener.
struct Serve {
    child: Child,
    addr: String,
}

/// A pid-derived loopback IP (all of 127.0.0.0/8 routes to `lo` on
/// Linux). Sibling test binaries churn kernel-assigned ports on
/// 127.0.0.1, and a still-retrying router or a fencer in one of them
/// can reach a *recycled* port now owned by this test's server —
/// injecting foreign batches or foreign fencing epochs. A private
/// loopback address makes that cross-talk impossible.
fn local_ip() -> String {
    let pid = std::process::id();
    format!("127.{}.{}.1", 1 + (pid >> 8) % 254, pid % 256)
}

impl Serve {
    fn spawn(args: &[&str]) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fgcs-serve"))
            .args(args)
            .stdin(Stdio::piped()) // held open: EOF is the shutdown signal
            .stdout(Stdio::piped())
            // Inherited so promotion/fencing log lines land in the test
            // output — the evidence that matters when a failover
            // assertion trips.
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fgcs-serve");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("fgcs-serve prints its address")
            .expect("stdout readable");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_string();
        std::thread::spawn(move || for _ in lines {}); // keep the pipe drained
        Serve { child, addr }
    }

    fn signal(&self, sig: &str) {
        let ok = Command::new("kill")
            .arg(sig)
            .arg(self.child.id().to_string())
            .status()
            .expect("kill runs")
            .success();
        assert!(ok, "kill {sig} pid {}", self.child.id());
    }

    /// SIGSTOPs the process and waits until the stop has actually
    /// landed. `kill(2)` only *queues* a group stop and wakes one
    /// thread; on an oversubscribed box that thread can go unscheduled
    /// for ~100 ms while the server's connection threads keep serving
    /// — long enough for a whole test phase to complete against a
    /// primary the test believes is frozen. `/proc/<pid>/stat` state
    /// `T` means the group stop was initiated: every thread now has
    /// the stop pending, so no *new* request can be served.
    fn freeze(&self) {
        self.signal("-STOP");
        let path = format!("/proc/{}/stat", self.child.id());
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let stat = std::fs::read_to_string(&path).expect("proc stat readable");
            // Field 3, one char after the parenthesised comm (which is
            // the only field that may itself contain `)`).
            let state = stat.rfind(") ").and_then(|i| stat[i + 2..].chars().next());
            if state == Some('T') {
                return;
            }
            assert!(Instant::now() < deadline, "SIGSTOP never landed: {stat:?}");
            std::thread::yield_now();
        }
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        // A SIGSTOPped child ignores SIGKILL until continued.
        self.signal("-CONT");
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn connect(addr: &str) -> ServiceClient {
    let mut cfg = ClientConfig::new(addr);
    cfg.backoff_unit_ms = 1;
    ServiceClient::connect(cfg).expect("client connects")
}

fn status(addr: &str) -> Option<(u8, u64, u64)> {
    let mut cfg = ClientConfig::new(addr);
    cfg.backoff_unit_ms = 1;
    cfg.read_timeout_ms = 500;
    let mut c = ServiceClient::connect(cfg).ok()?;
    match c.request(&Frame::ReplStatus).ok()? {
        Frame::ReplStatusReply {
            role,
            epoch,
            applied_seq,
            ..
        } => Some((role, epoch, applied_seq)),
        _ => None,
    }
}

fn transitions(addr: &str) -> Vec<WireTransition> {
    match connect(addr)
        .request(&Frame::QueryTransitions {
            machine: 1,
            since_seq: 0,
            max: 1_000_000,
        })
        .expect("transitions query")
    {
        Frame::Transitions { transitions, .. } => transitions,
        other => panic!("Transitions expected, got tag {}", other.tag()),
    }
}

/// An `Ack` on the threaded backend means *enqueued*, not applied —
/// the bounded ingest queue is drained by a worker pool
/// (DESIGN.md §9), so a state query fired right after the final ack
/// races the drain. Poll until machine 1's cursor reaches `want`.
fn wait_applied(addr: &str, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let last = match connect(addr).request(&Frame::QueryStats) {
            Ok(Frame::StatsReply(stats)) => stats
                .machines
                .iter()
                .find(|m| m.machine == 1)
                .map(|m| m.last_t),
            _ => None,
        };
        if last == Some(want) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "ingest queue on {addr} never drained: machine-1 last_t {last:?}, want {want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn sample(i: u64) -> WireSample {
    WireSample {
        t: i * 15,
        load: SampleLoad::Direct(if (i / 40) % 2 == 1 { 0.9 } else { 0.05 }),
        host_resident_mb: 100,
        alive: true,
    }
}

#[test]
fn paused_then_revived_primary_cannot_poison_the_resume_floor() {
    let bind = format!("{}:0", local_ip());
    let p = Serve::spawn(&[
        "--addr",
        &bind,
        "--backend",
        "threads",
        "--repl-log",
        "65536",
        "--lease",
        "200",
    ]);
    let f = Serve::spawn(&[
        "--addr",
        &bind,
        "--backend",
        "threads",
        "--repl-log",
        "65536",
        "--follower-of",
        &p.addr,
        "--pull-interval",
        "1",
        "--auto-promote",
        "--lease",
        "200",
        "--missed-pulls",
        "3",
    ]);

    let mut cfg = ClusterConfig::new(vec![ShardSpec {
        name: "s".into(),
        primary_addr: p.addr.clone(),
        follower_addr: Some(f.addr.clone()),
    }]);
    cfg.request_timeout_ms = 500;
    cfg.backoff = BackoffPolicy { base: 5, cap: 100 };
    cfg.max_attempts = 60;
    let mut router = ClusterClient::connect(cfg).expect("router");

    const N1: u64 = 200; // before the pause
    const N2: u64 = 260; // streamed through the failover window
    const N3: u64 = 320; // after the revival
    for chunk in (0..N1).map(sample).collect::<Vec<_>>().chunks(50) {
        let reply = router.ingest(1, chunk.to_vec()).expect("phase-1 ingest");
        assert!(matches!(reply, Frame::Ack { .. }), "{reply:?}");
    }
    // Quiesce: the follower must hold everything before the pause, so
    // any later shortfall is unambiguously a resume bug.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let head = connect(&p.addr)
            .request(&Frame::ReplStatus)
            .ok()
            .and_then(|r| match r {
                Frame::ReplStatusReply { head_seq, .. } => Some(head_seq),
                _ => None,
            })
            .expect("primary status");
        if status(&f.addr).is_some_and(|(_, _, applied)| applied >= head) {
            break;
        }
        assert!(Instant::now() < deadline, "follower never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }

    p.freeze();

    // Phase 2 rides through detection + self-promotion: requests to the
    // frozen primary hang to the deadline, the router keeps flipping,
    // and the follower takes over mid-stream with no operator step.
    for chunk in (N1..N2).map(sample).collect::<Vec<_>>().chunks(20) {
        let reply = router.ingest(1, chunk.to_vec()).expect("failover ingest");
        assert!(matches!(reply, Frame::Ack { .. }), "{reply:?}");
    }
    let (role, new_epoch, _) = status(&f.addr).expect("promoted follower answers");
    assert_eq!(role, ROLE_PRIMARY, "the follower self-promoted");
    assert!(new_epoch >= 2, "promotion raised the epoch: {new_epoch}");

    p.signal("-CONT");

    // The revenant wakes up still calling itself a primary; the new
    // primary's fencer must demote it.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some((role, epoch, _)) = status(&p.addr) {
            if role == ROLE_FOLLOWER && epoch >= new_epoch {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "revived primary was never fenced: {:?}",
            status(&p.addr)
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Phase 3: with both nodes answering — one of them a fenced, stale
    // revenant — every remaining sample must still land exactly once on
    // the real primary.
    for chunk in (N2..N3).map(sample).collect::<Vec<_>>().chunks(20) {
        let reply = router.ingest(1, chunk.to_vec()).expect("phase-3 ingest");
        assert!(matches!(reply, Frame::Ack { .. }), "{reply:?}");
    }

    // Every chunk was acked; the queue drain is async, so wait for the
    // final sample's cursor before judging state. A lost suffix (the
    // poisoned-floor bug this test pins) panics inside `wait_applied`.
    wait_applied(&f.addr, (N3 - 1) * 15);
    let stats = match connect(&f.addr).request(&Frame::QueryStats).unwrap() {
        Frame::StatsReply(s) => s,
        other => panic!("stats expected, got tag {}", other.tag()),
    };
    assert!(
        stats.ingested_samples >= N3,
        "a poisoned resume floor drops the pending suffix: {} < {N3}",
        stats.ingested_samples
    );

    // Exactly-once is a *state* property, not a counter property: under
    // load a request the follower already started applying can time out,
    // making the router read a mid-batch resume floor and resend an
    // overlapping suffix. The per-machine out-of-order guard drops those
    // duplicates from state (the raw counter legitimately counts them),
    // so the decisive check is bit-identity of the derived transition
    // records against an unpaused reference fed the same trace — a
    // dropped suffix or a double-applied sample both diverge here.
    let reference = Serve::spawn(&["--addr", &bind, "--backend", "threads"]);
    let mut rc = connect(&reference.addr);
    for chunk in (0..N3).map(sample).collect::<Vec<_>>().chunks(50) {
        let reply = rc
            .request(&Frame::SampleBatch {
                machine: 1,
                samples: chunk.to_vec(),
            })
            .expect("reference ingest");
        assert!(matches!(reply, Frame::Ack { .. }), "{reply:?}");
    }
    drop(rc);
    wait_applied(&reference.addr, (N3 - 1) * 15);
    assert_eq!(
        transitions(&f.addr),
        transitions(&reference.addr),
        "survivor's records diverge from the unpaused reference"
    );
}
