//! Property tests for the cluster routing layer.
//!
//! Two properties the cluster design leans on (DESIGN.md §13):
//!
//! 1. **Rendezvous stability** — removing a shard moves *only* the
//!    machines that shard owned; every other machine keeps its owner.
//!    Without this, losing one node would reshuffle (and corrupt) the
//!    per-machine streams of every shard.
//! 2. **Routing transparency** — a trace streamed through the
//!    [`ClusterClient`] router produces bit-identical transition
//!    records to the same trace streamed directly at a single server:
//!    sharding must not observably change the pipeline.

#![cfg(target_os = "linux")]

use proptest::prelude::*;

use fgcs_service::cluster::{rendezvous_owner, ClusterClient, ClusterConfig, ShardSpec};
use fgcs_service::{Backend, ClientConfig, Server, ServiceClient, ServiceConfig};
use fgcs_wire::{Frame, SampleLoad, WireSample, WireTransition};

fn server() -> Server {
    Server::start(ServiceConfig {
        backend: Backend::Threads,
        ..Default::default()
    })
    .expect("server starts")
}

/// The deterministic replay wave (same shape as fgcs-smoke's): long
/// busy/idle stretches so the detector records real transitions.
fn wave(machine: u32, samples: u64) -> Vec<WireSample> {
    (0..samples)
        .map(|i| WireSample {
            t: i * 15,
            load: SampleLoad::Direct(if ((i + 7 * machine as u64) / 40) % 2 == 1 {
                0.9
            } else {
                0.05
            }),
            host_resident_mb: 100,
            alive: true,
        })
        .collect()
}

fn transitions_of(client: &mut ServiceClient, machine: u32) -> Vec<WireTransition> {
    match client.request(&Frame::QueryTransitions {
        machine,
        since_seq: 0,
        max: 10_000,
    }) {
        Ok(Frame::Transitions { transitions, .. }) => transitions,
        other => panic!("transitions reply expected, got {other:?}"),
    }
}

/// Blocks until `client`'s server reports every machine caught up to
/// the wave's final sample (ingest is asynchronous).
fn wait_caught_up(client: &mut ServiceClient, machines: &[u32], final_t: u64) {
    for _ in 0..400 {
        if let Ok(Frame::StatsReply(stats)) = client.request(&Frame::QueryStats) {
            let done = machines.iter().all(|&m| {
                stats
                    .machines
                    .iter()
                    .any(|s| s.machine == m && s.last_t >= final_t)
            });
            if done {
                return;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("server did not catch up to t={final_t}");
}

fn direct_client(addr: &str) -> ServiceClient {
    let mut cfg = ClientConfig::new(addr);
    cfg.backoff_unit_ms = 1;
    ServiceClient::connect(cfg).expect("connect")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Removing one shard moves only the keys it owned: for every key
    /// whose owner survives, the owner (by name) is unchanged.
    #[test]
    fn rendezvous_moves_only_the_removed_nodes_keys(
        n in 2usize..9,
        salt in 0u64..1_000,
        removed_pick in 0usize..8,
        keys in prop::collection::vec(0u32..100_000, 1..128),
    ) {
        let names: Vec<String> = (0..n).map(|i| format!("node-{salt}-{i}")).collect();
        let removed = removed_pick % n;
        let survivors: Vec<String> = names
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != removed)
            .map(|(_, s)| s.clone())
            .collect();
        for &key in &keys {
            let before = &names[rendezvous_owner(&names, key)];
            if before == &names[removed] {
                continue; // this key's owner died; it must move
            }
            let after = &survivors[rendezvous_owner(&survivors, key)];
            prop_assert_eq!(
                before, after,
                "key {} changed owner though its shard survived", key
            );
        }
    }
}

proptest! {
    // Each case boots real TCP servers; a handful of cases over the
    // machine/sample/shard-count space is the budget.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The router is observationally transparent: per-machine
    /// transition records are bit-identical to a direct single-server
    /// run of the same trace.
    #[test]
    fn router_and_direct_connect_records_are_bit_identical(
        machines in 2u32..6,
        samples in 90u64..170,
        shard_count in 1usize..4,
    ) {
        let ids: Vec<u32> = (1..=machines).collect();
        let final_t = (samples - 1) * 15;

        // Reference: everything into one server, directly.
        let reference = server();
        let mut direct = direct_client(&reference.local_addr().to_string());
        for &m in &ids {
            for chunk in wave(m, samples).chunks(50) {
                let reply = direct
                    .request(&Frame::SampleBatch { machine: m, samples: chunk.to_vec() })
                    .expect("direct ingest");
                prop_assert!(matches!(reply, Frame::Ack { .. }), "{reply:?}");
            }
        }
        wait_caught_up(&mut direct, &ids, final_t);

        // Cluster: same trace through the rendezvous router.
        let nodes: Vec<Server> = (0..shard_count).map(|_| server()).collect();
        let shards = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| ShardSpec {
                name: format!("shard-{i}"),
                primary_addr: n.local_addr().to_string(),
                follower_addr: None,
            })
            .collect();
        let mut router = ClusterClient::connect(ClusterConfig::new(shards)).expect("router");
        for &m in &ids {
            for chunk in wave(m, samples).chunks(50) {
                let reply = router.ingest(m, chunk.to_vec()).expect("routed ingest");
                prop_assert!(matches!(reply, Frame::Ack { .. }), "{reply:?}");
            }
        }
        for (i, node) in nodes.iter().enumerate() {
            let owned: Vec<u32> = ids
                .iter()
                .copied()
                .filter(|&m| router.shard_for(m) == i)
                .collect();
            if owned.is_empty() {
                continue;
            }
            let mut c = direct_client(&node.local_addr().to_string());
            wait_caught_up(&mut c, &owned, final_t);
            for &m in &owned {
                let want = transitions_of(&mut direct, m);
                let got = transitions_of(&mut c, m);
                prop_assert!(!want.is_empty(), "wave must produce transitions");
                prop_assert_eq!(
                    want, got,
                    "machine {} records diverge through the router", m
                );
            }
        }
        prop_assert_eq!(router.metrics.retries, 0, "healthy cluster: no retries");

        reference.shutdown();
        for n in nodes {
            n.shutdown();
        }
    }
}
