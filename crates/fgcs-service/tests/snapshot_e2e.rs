//! Crash-safe snapshot/restore, end to end: graceful restarts, a real
//! SIGKILL mid-replay, and transition-seq continuity across restores.
//!
//! The recovery contract under test: a restarted server restores the
//! newest usable snapshot, clients learn how far each machine got from
//! `QueryStats` (per-machine `last_t`) and resend only samples
//! *strictly after* that, and the resulting occurrence records and
//! transition logs are **bit-identical** to an uninterrupted run.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use fgcs_service::{Backend, ClientConfig, Server, ServiceClient, ServiceConfig};
use fgcs_testbed::TraceRecord;
use fgcs_wire::{Frame, SampleLoad, WireSample, WireTransition};

const MACHINES: u32 = 3;
const SAMPLES: u64 = 400;

/// The deterministic replay wave — the same square wave `fgcs-smoke
/// --replay` streams: sample `i` of machine `m` at `t = i * 15`, 40
/// samples busy / 40 idle, phase-shifted per machine. Long stretches on
/// each side of the detector thresholds, so the trace drives real
/// transitions and occurrence records.
fn wave_sample(machine: u32, i: u64) -> WireSample {
    let busy = ((i + 7 * machine as u64) / 40) % 2 == 1;
    WireSample {
        t: i * 15,
        load: SampleLoad::Direct(if busy { 0.9 } else { 0.05 }),
        host_resident_mb: 100,
        alive: true,
    }
}

fn connect(addr: &str) -> ServiceClient {
    let mut cfg = ClientConfig::new(addr);
    cfg.backoff_unit_ms = 1;
    ServiceClient::connect(cfg).expect("client connects")
}

/// Sends wave samples `range` for every machine, resuming strictly
/// after each machine's server-side `last_t` (queried via `Stats`) when
/// `resume` is set.
fn stream_wave(client: &mut ServiceClient, range: std::ops::Range<u64>, resume: bool) {
    let mut last_t = std::collections::BTreeMap::new();
    if resume {
        let Frame::StatsReply(stats) = client.request(&Frame::QueryStats).unwrap() else {
            panic!("stats reply expected")
        };
        for m in stats.machines {
            last_t.insert(m.machine, m.last_t);
        }
    }
    for machine in 1..=MACHINES {
        let from = last_t.get(&machine).copied();
        let todo: Vec<WireSample> = range
            .clone()
            .map(|i| wave_sample(machine, i))
            .filter(|s| from.is_none_or(|lt| s.t > lt))
            .collect();
        for chunk in todo.chunks(50) {
            let reply = client
                .request(&Frame::SampleBatch {
                    machine,
                    samples: chunk.to_vec(),
                })
                .expect("batch sent");
            assert!(
                matches!(reply, Frame::Ack { .. }),
                "expected Ack, got tag {}",
                reply.tag()
            );
        }
    }
}

/// Polls `Stats` until every machine's pipeline has consumed its sample
/// at `final_i` (ingest is asynchronous).
fn wait_caught_up(client: &mut ServiceClient, final_i: u64) {
    let final_t = final_i * 15;
    for _ in 0..600 {
        let Frame::StatsReply(stats) = client.request(&Frame::QueryStats).unwrap() else {
            panic!("stats reply expected")
        };
        let done = (1..=MACHINES).all(|m| {
            stats
                .machines
                .iter()
                .any(|s| s.machine == m && s.last_t >= final_t)
        });
        if done && stats.queue_depth == 0 {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("server did not catch up to sample {final_i}");
}

/// The uninterrupted reference: the full wave through one server life.
fn reference_run(backend: Backend) -> (Vec<Vec<TraceRecord>>, Vec<Vec<WireTransition>>) {
    let server = Server::start(ServiceConfig {
        backend,
        ..Default::default()
    })
    .expect("reference server");
    let mut client = connect(&server.local_addr().to_string());
    stream_wave(&mut client, 0..SAMPLES, false);
    wait_caught_up(&mut client, SAMPLES - 1);
    let records = (1..=MACHINES)
        .map(|m| server.records(m).expect("machine streamed"))
        .collect();
    let transitions = (1..=MACHINES)
        .map(|m| server.transitions(m).expect("machine streamed"))
        .collect();
    server.shutdown();
    (records, transitions)
}

fn snap_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fgcs-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Graceful restart: stop mid-replay (final checkpoint), start a fresh
/// server process-state on the same snapshot dir, resume, and end up
/// bit-identical to an uninterrupted run *on the threaded backend* —
/// the reference is always cross-backend, so a restart variant can
/// never drift from the single-code-path baseline unnoticed.
fn graceful_restart_is_bit_identical(tag: &str, mut svc: ServiceConfig) {
    let (ref_records, ref_transitions) = reference_run(Backend::Threads);
    let dir = snap_dir(&format!("graceful-{tag}"));
    svc.snapshot_dir = Some(dir.to_string_lossy().into_owned());
    svc.snapshot_interval_ms = 60_000; // periodic writes irrelevant here

    // First life: half the wave, then a graceful shutdown (which takes
    // the final checkpoint after draining).
    let first = Server::start(svc.clone()).expect("first life");
    let mut client = connect(&first.local_addr().to_string());
    stream_wave(&mut client, 0..SAMPLES / 2, false);
    wait_caught_up(&mut client, SAMPLES / 2 - 1);
    first.shutdown();

    // Second life: restores the snapshot; the client resumes strictly
    // after each machine's restored last_t.
    let second = Server::start(svc).expect("second life");
    let mut client = connect(&second.local_addr().to_string());
    stream_wave(&mut client, 0..SAMPLES, true);
    wait_caught_up(&mut client, SAMPLES - 1);

    for m in 1..=MACHINES {
        let idx = (m - 1) as usize;
        assert_eq!(
            second.records(m).expect("machine restored"),
            ref_records[idx],
            "{tag}: records bit-identical through the restart, machine {m}"
        );
        assert_eq!(
            second.transitions(m).expect("machine restored"),
            ref_transitions[idx],
            "{tag}: transition log identical (seqs continue, no restart at 1), machine {m}"
        );
    }
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_restart_is_bit_identical_threads() {
    graceful_restart_is_bit_identical(
        "threads",
        ServiceConfig {
            backend: Backend::Threads,
            ..Default::default()
        },
    );
}

#[test]
#[cfg(target_os = "linux")]
fn graceful_restart_is_bit_identical_epoll() {
    graceful_restart_is_bit_identical(
        "epoll-1",
        ServiceConfig {
            backend: Backend::Epoll,
            event_loops: 1,
            ..Default::default()
        },
    );
}

#[test]
#[cfg(target_os = "linux")]
fn graceful_restart_is_bit_identical_epoll_multiloop() {
    graceful_restart_is_bit_identical(
        "epoll-4",
        ServiceConfig {
            backend: Backend::Epoll,
            event_loops: 4,
            ..Default::default()
        },
    );
}

/// Transition seqs must keep climbing across a restore: a client that
/// followed the log with `QueryTransitions { since_seq }` before the
/// restart must be able to keep following it after, without collisions
/// or replays of seqs it already consumed.
#[test]
fn transition_seqs_survive_restart_without_collision() {
    let dir = snap_dir("seqs");
    let svc = ServiceConfig {
        snapshot_dir: Some(dir.to_string_lossy().into_owned()),
        snapshot_interval_ms: 60_000,
        ..Default::default()
    };

    let first = Server::start(svc.clone()).expect("first life");
    let mut client = connect(&first.local_addr().to_string());
    stream_wave(&mut client, 0..SAMPLES / 2, false);
    wait_caught_up(&mut client, SAMPLES / 2 - 1);
    let Frame::Transitions {
        transitions: before,
        ..
    } = client
        .request(&Frame::QueryTransitions {
            machine: 1,
            since_seq: 1,
            max: 1000,
        })
        .unwrap()
    else {
        panic!("transitions reply expected")
    };
    assert!(!before.is_empty(), "first life produced transitions");
    let consumed = before.last().unwrap().seq;
    first.shutdown();

    let second = Server::start(svc).expect("second life");
    let mut client = connect(&second.local_addr().to_string());
    stream_wave(&mut client, 0..SAMPLES, true);
    wait_caught_up(&mut client, SAMPLES - 1);
    // Catch up from the last consumed seq, exactly as a live follower
    // would: everything new is strictly beyond it.
    let Frame::Transitions {
        transitions: after, ..
    } = client
        .request(&Frame::QueryTransitions {
            machine: 1,
            since_seq: consumed + 1,
            max: 1000,
        })
        .unwrap()
    else {
        panic!("transitions reply expected")
    };
    assert!(
        !after.is_empty(),
        "second half of the wave produced transitions"
    );
    assert!(
        after.iter().all(|t| t.seq > consumed),
        "no seq collision with what was consumed before the restart"
    );
    let full: Vec<u64> = before.iter().chain(&after).map(|t| t.seq).collect();
    assert!(
        full.windows(2).all(|w| w[1] > w[0]),
        "the stitched log is strictly increasing: {full:?}"
    );
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns the real `fgcs-serve` binary with snapshots on (plus any
/// `extra` flags, e.g. `--backend epoll --loops 4`), returning the
/// child and its bound address (parsed from the `listening on` line).
fn spawn_serve(dir: &std::path::Path, interval_ms: u64, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fgcs-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--snapshot-dir",
            &dir.to_string_lossy(),
            "--snapshot-interval",
            &interval_ms.to_string(),
        ])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("fgcs-serve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("reads the listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("listening line")
        .to_string();
    (child, addr)
}

/// The crash test proper: SIGKILL the serve binary mid-replay, restart
/// on the same snapshot dir, resume from `Stats`, and compare against
/// an uninterrupted run — bit-identical records and transitions. The
/// kill lands *between* ingest and checkpoint at an arbitrary point;
/// any samples past the last snapshot are simply re-ingested by the
/// resume protocol without seq collisions.
#[cfg(unix)]
fn sigkill_mid_replay(tag: &str, serve_args: &[&str], restart_svc: ServiceConfig) {
    let (ref_records, ref_transitions) = reference_run(Backend::Threads);
    let dir = snap_dir(&format!("sigkill-{tag}"));

    // First life: the real binary, checkpointing every 50 ms.
    let (mut child, addr) = spawn_serve(&dir, 50, serve_args);
    let mut client = connect(&addr);
    stream_wave(&mut client, 0..SAMPLES / 2, false);
    wait_caught_up(&mut client, SAMPLES / 2 - 1);
    // Let at least one checkpoint land, then SIGKILL — no final
    // snapshot, no graceful anything.
    std::thread::sleep(std::time::Duration::from_millis(300));
    child.kill().expect("SIGKILL delivered");
    let _ = child.wait();
    let snaps = std::fs::read_dir(&dir)
        .expect("snapshot dir exists")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
        .count();
    assert!(
        snaps > 0,
        "{tag}: at least one periodic checkpoint was written before the kill"
    );

    // Second life: in-process server on the same dir (same restore
    // path as the binary). The client resumes strictly past whatever
    // the last checkpoint captured.
    let svc = ServiceConfig {
        snapshot_dir: Some(dir.to_string_lossy().into_owned()),
        snapshot_interval_ms: 60_000,
        ..restart_svc
    };
    let second = Server::start(svc).expect("restarted server");
    let mut client = connect(&second.local_addr().to_string());
    stream_wave(&mut client, 0..SAMPLES, true);
    wait_caught_up(&mut client, SAMPLES - 1);

    for m in 1..=MACHINES {
        let idx = (m - 1) as usize;
        assert_eq!(
            second.records(m).expect("machine restored"),
            ref_records[idx],
            "{tag}: records survive a SIGKILL + restore + resume, machine {m}"
        );
        assert_eq!(
            second.transitions(m).expect("machine restored"),
            ref_transitions[idx],
            "{tag}: transitions identical after the crash, machine {m}"
        );
    }
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg(unix)]
fn sigkill_mid_replay_restores_and_resumes_bit_identical() {
    sigkill_mid_replay("threads", &[], ServiceConfig::default());
}

/// The same crash, but the killed life *and* the restarted life run
/// four epoll loops: the checkpoint must be a consistent cut across
/// loop-owned shards (including batches in flight on the forwarding
/// rings), and the restore must land identically however the new
/// loops repartition the shards.
#[test]
#[cfg(target_os = "linux")]
fn sigkill_mid_replay_multiloop_restores_bit_identical() {
    sigkill_mid_replay(
        "epoll-4",
        &["--backend", "epoll", "--loops", "4"],
        ServiceConfig {
            backend: Backend::Epoll,
            event_loops: 4,
            ..Default::default()
        },
    );
}
