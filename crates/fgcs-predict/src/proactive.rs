//! Proactive guest-job management — the paper's motivating application.
//!
//! §1: proactive approaches "explore availability prediction in job
//! scheduling ... \[and\] achieve significantly improved job response time
//! compared to the methods which are oblivious to future unavailability".
//! This module closes that loop on our traces: place compute-bound guest
//! jobs on testbed machines either obliviously (random available
//! machine) or proactively (the machine the predictor deems most likely
//! to stay available for the job's duration), replay the trace, and
//! compare response times.
//!
//! Failure semantics follow the paper's model: a guest job hit by
//! unavailability is killed and loses all progress ("the guest process
//! is already killed or migrated off and no state is left on the host"),
//! so it restarts elsewhere.

use fgcs_stats::rng::Rng;
use fgcs_testbed::trace::{Trace, TraceRecord};

use crate::predictor::AvailabilityPredictor;

/// Placement policies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Uniformly random among machines currently available.
    Oblivious,
    /// Highest predicted availability for the job's remaining duration.
    Proactive,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Policy::Oblivious => f.write_str("oblivious"),
            Policy::Proactive => f.write_str("proactive"),
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProactiveConfig {
    /// Number of guest jobs to replay.
    pub jobs: usize,
    /// Job CPU demand range, seconds (compute-bound batch jobs; the
    /// paper's victims "take hours to finish").
    pub job_secs: (u64, u64),
    /// First submission time (must leave training history before it).
    pub submit_from: u64,
    /// Last submission time.
    pub submit_until: u64,
    /// RNG seed for submissions and oblivious choices.
    pub seed: u64,
    /// Give up on a job after this much wall time.
    pub max_response: u64,
}

impl Default for ProactiveConfig {
    fn default() -> Self {
        ProactiveConfig {
            jobs: 300,
            job_secs: (1800, 6 * 3600),
            submit_from: 0,
            submit_until: 0,
            seed: 0x50524F41,
            max_response: 7 * 86_400,
        }
    }
}

/// Outcome of replaying the job set under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// Policy replayed.
    pub policy: Policy,
    /// Mean job response time, seconds.
    pub mean_response: f64,
    /// Mean number of failures (kills/restarts) per job.
    pub mean_failures: f64,
    /// Jobs that hit the response cap.
    pub timed_out: usize,
}

/// Per-machine sorted event list for fast availability queries.
struct MachineEvents<'a> {
    events: Vec<Vec<&'a TraceRecord>>,
    span: u64,
}

impl<'a> MachineEvents<'a> {
    fn new(trace: &'a Trace) -> Self {
        let mut events: Vec<Vec<&TraceRecord>> = vec![Vec::new(); trace.meta.machines as usize];
        for r in &trace.records {
            events[r.machine as usize].push(r);
        }
        MachineEvents {
            events,
            span: trace.meta.span_secs,
        }
    }

    /// The event covering `t` on `machine`, if any.
    fn covering(&self, machine: u32, t: u64) -> Option<&TraceRecord> {
        self.events[machine as usize]
            .iter()
            .find(|r| r.start <= t && r.end.unwrap_or(self.span) > t)
            .copied()
    }

    /// The next event starting at or after `t`.
    fn next_after(&self, machine: u32, t: u64) -> Option<&TraceRecord> {
        self.events[machine as usize]
            .iter()
            .find(|r| r.start >= t)
            .copied()
    }

    /// True if the machine is available at `t`.
    fn available(&self, machine: u32, t: u64) -> bool {
        self.covering(machine, t).is_none()
    }
}

/// Replays `cfg.jobs` single-task guest jobs over the trace under one
/// policy. The same seed yields the same submission times for both
/// policies, so the comparison is paired.
pub fn replay(
    trace: &Trace,
    predictor: &dyn AvailabilityPredictor,
    policy: Policy,
    cfg: &ProactiveConfig,
) -> PolicyOutcome {
    let events = MachineEvents::new(trace);
    let machines = trace.meta.machines;
    let submit_until = if cfg.submit_until == 0 {
        trace.meta.span_secs.saturating_sub(12 * 3600)
    } else {
        cfg.submit_until
    };
    // Two independent streams: job parameters are identical across
    // policies (a paired comparison); placement randomness is separate.
    let mut job_rng = Rng::for_stream(cfg.seed, 1);
    let mut choice_rng = Rng::for_stream(cfg.seed, 2);

    let mut total_response = 0.0;
    let mut total_failures = 0u64;
    let mut timed_out = 0usize;

    for _ in 0..cfg.jobs {
        let submit = job_rng.range_u64(cfg.submit_from, submit_until.max(cfg.submit_from + 1));
        let work = job_rng.range_u64(cfg.job_secs.0, cfg.job_secs.1 + 1);
        let deadline = submit + cfg.max_response;

        let mut now = submit;
        let mut failures = 0u64;
        let finished = loop {
            if now >= deadline {
                break false;
            }
            // Choose a machine.
            let choice = choose_machine(
                &events,
                predictor,
                policy,
                machines,
                now,
                work,
                &mut choice_rng,
            );
            let Some(m) = choice else {
                // Nobody available: wait for the earliest recovery.
                let wake = (0..machines)
                    .filter_map(|m| events.covering(m, now).and_then(|r| r.end))
                    .min()
                    .unwrap_or(now + 600);
                now = wake.max(now + 60);
                continue;
            };
            // Run until completion or the next failure on that machine.
            match events.next_after(m, now) {
                Some(r) if r.start < now + work => {
                    // Killed mid-run; restart from scratch.
                    failures += 1;
                    now = r.start.max(now + 1);
                }
                _ => {
                    now += work;
                    break true;
                }
            }
        };

        total_failures += failures;
        if finished {
            total_response += (now - submit) as f64;
        } else {
            timed_out += 1;
            total_response += cfg.max_response as f64;
        }
    }

    PolicyOutcome {
        policy,
        mean_response: total_response / cfg.jobs.max(1) as f64,
        mean_failures: total_failures as f64 / cfg.jobs.max(1) as f64,
        timed_out,
    }
}

fn choose_machine(
    events: &MachineEvents<'_>,
    predictor: &dyn AvailabilityPredictor,
    policy: Policy,
    machines: u32,
    now: u64,
    work: u64,
    rng: &mut Rng,
) -> Option<u32> {
    let candidates: Vec<u32> = (0..machines)
        .filter(|&m| events.available(m, now))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(match policy {
        Policy::Oblivious => *rng.choose(&candidates),
        Policy::Proactive => {
            // Collect the near-best candidates and pick among them at
            // random: a deterministic argmax would dogpile one machine
            // whenever estimates tie, which is neither realistic nor fair
            // to the baseline.
            let scored: Vec<(u32, f64)> = candidates
                .iter()
                .map(|&m| (m, predictor.predict(m, now, work)))
                .collect();
            let best_p = scored.iter().map(|s| s.1).fold(f64::NEG_INFINITY, f64::max);
            let near: Vec<u32> = scored
                .iter()
                .filter(|s| s.1 >= best_p - 0.02)
                .map(|s| s.0)
                .collect();
            *rng.choose(&near)
        }
    })
}

/// Gang-job configuration: the paper's motivating workload is "composed
/// of multiple related jobs that are submitted as a group and must all
/// complete before the results can be used" — job response time is the
/// *makespan* over its tasks, which amplifies the cost of every
/// unavailability hit.
#[derive(Debug, Clone, PartialEq)]
pub struct GangConfig {
    /// Base replay parameters (`job_secs` is per *task*).
    pub base: ProactiveConfig,
    /// Number of parallel tasks per job.
    pub tasks: usize,
}

impl Default for GangConfig {
    fn default() -> Self {
        GangConfig {
            base: ProactiveConfig::default(),
            tasks: 4,
        }
    }
}

/// Replays gang jobs: each job submits `tasks` equal tasks at once, on
/// distinct machines where possible (proactive: the top-predicted
/// machines; oblivious: a random available subset); a task killed by
/// unavailability restarts like a single job; the job finishes when its
/// *last* task does.
pub fn replay_gang(
    trace: &Trace,
    predictor: &dyn AvailabilityPredictor,
    policy: Policy,
    cfg: &GangConfig,
) -> PolicyOutcome {
    let events = MachineEvents::new(trace);
    let machines = trace.meta.machines;
    let submit_until = if cfg.base.submit_until == 0 {
        trace.meta.span_secs.saturating_sub(12 * 3600)
    } else {
        cfg.base.submit_until
    };
    let mut job_rng = Rng::for_stream(cfg.base.seed, 11);
    let mut choice_rng = Rng::for_stream(cfg.base.seed, 12);

    let mut total_response = 0.0;
    let mut total_failures = 0u64;
    let mut timed_out = 0usize;

    for _ in 0..cfg.base.jobs {
        let submit = job_rng.range_u64(
            cfg.base.submit_from,
            submit_until.max(cfg.base.submit_from + 1),
        );
        let work = job_rng.range_u64(cfg.base.job_secs.0, cfg.base.job_secs.1 + 1);
        let deadline = submit + cfg.base.max_response;

        // Initial gang placement on distinct machines.
        let mut placements = gang_placement(
            &events,
            predictor,
            policy,
            machines,
            submit,
            work,
            cfg.tasks,
            &mut choice_rng,
        );
        while placements.len() < cfg.tasks {
            placements.push(None); // tasks that could not be placed yet
        }

        let mut makespan = 0u64;
        let mut job_timed_out = false;
        for slot in placements {
            // Each task then follows the single-task restart loop,
            // starting from its (possibly deferred) initial placement.
            let mut now = submit;
            let mut placed = slot;
            let finished = loop {
                if now >= deadline {
                    break false;
                }
                let m = match placed.take() {
                    Some(m) => m,
                    None => match choose_machine(
                        &events,
                        predictor,
                        policy,
                        machines,
                        now,
                        work,
                        &mut choice_rng,
                    ) {
                        Some(m) => m,
                        None => {
                            let wake = (0..machines)
                                .filter_map(|m| events.covering(m, now).and_then(|r| r.end))
                                .min()
                                .unwrap_or(now + 600);
                            now = wake.max(now + 60);
                            continue;
                        }
                    },
                };
                match events.next_after(m, now) {
                    Some(r) if r.start < now + work => {
                        total_failures += 1;
                        now = r.start.max(now + 1);
                    }
                    _ => {
                        now += work;
                        break true;
                    }
                }
            };
            if finished {
                makespan = makespan.max(now - submit);
            } else {
                job_timed_out = true;
                makespan = cfg.base.max_response;
            }
        }
        if job_timed_out {
            timed_out += 1;
        }
        total_response += makespan as f64;
    }

    PolicyOutcome {
        policy,
        mean_response: total_response / cfg.base.jobs.max(1) as f64,
        mean_failures: total_failures as f64 / (cfg.base.jobs.max(1) * cfg.tasks.max(1)) as f64,
        timed_out,
    }
}

/// Picks up to `k` distinct machines for a gang at time `now`.
#[allow(clippy::too_many_arguments)]
fn gang_placement(
    events: &MachineEvents<'_>,
    predictor: &dyn AvailabilityPredictor,
    policy: Policy,
    machines: u32,
    now: u64,
    work: u64,
    k: usize,
    rng: &mut Rng,
) -> Vec<Option<u32>> {
    let mut candidates: Vec<u32> = (0..machines)
        .filter(|&m| events.available(m, now))
        .collect();
    match policy {
        Policy::Oblivious => rng.shuffle(&mut candidates),
        Policy::Proactive => {
            candidates.sort_by(|&a, &b| {
                predictor
                    .predict(b, now, work)
                    .partial_cmp(&predictor.predict(a, now, work))
                    .expect("probabilities are not NaN")
            });
        }
    }
    candidates.into_iter().take(k).map(Some).collect()
}

/// Gang-job comparison under both policies, paired job sets.
pub fn compare_gang(
    trace: &Trace,
    predictor: &mut dyn AvailabilityPredictor,
    train_fraction: f64,
    cfg: &GangConfig,
) -> (PolicyOutcome, PolicyOutcome) {
    let train_end = (trace.meta.span_secs as f64 * train_fraction) as u64;
    predictor.fit(trace, train_end);
    let mut c = cfg.clone();
    c.base.submit_from = c.base.submit_from.max(train_end);
    let oblivious = replay_gang(trace, predictor, Policy::Oblivious, &c);
    let proactive = replay_gang(trace, predictor, Policy::Proactive, &c);
    (oblivious, proactive)
}

/// Runs the full comparison: trains the predictor on the first
/// `train_fraction` of the trace, replays the same job set under both
/// policies, returns `(oblivious, proactive)`.
pub fn compare(
    trace: &Trace,
    predictor: &mut dyn AvailabilityPredictor,
    train_fraction: f64,
    cfg: &ProactiveConfig,
) -> (PolicyOutcome, PolicyOutcome) {
    let train_end = (trace.meta.span_secs as f64 * train_fraction) as u64;
    predictor.fit(trace, train_end);
    let mut c = cfg.clone();
    c.submit_from = c.submit_from.max(train_end);
    let oblivious = replay(trace, predictor, Policy::Oblivious, &c);
    let proactive = replay(trace, predictor, Policy::Proactive, &c);
    (oblivious, proactive)
}

/// SLO migration trigger used by the guest scheduler (`fgcs-sched`,
/// DESIGN.md §14): a guest is proactively re-placed when the predicted
/// probability of losing its host within the lookahead window reaches
/// `fail_threshold`. The comparison is **inclusive** — a failure
/// probability exactly at the threshold migrates — so a zero threshold
/// means "migrate at any risk" and a threshold above 1.0 disables
/// migration entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationTrigger {
    /// Failure-probability threshold in `[0, 1]`.
    pub fail_threshold: f64,
}

impl MigrationTrigger {
    /// Creates a trigger firing at the given failure probability.
    pub fn new(fail_threshold: f64) -> Self {
        MigrationTrigger { fail_threshold }
    }

    /// Whether a guest whose host survives the lookahead window with
    /// probability `survival` should be re-placed now. A non-finite
    /// survival (a predictor bug upstream) must not strand the guest
    /// on a dying host, so it counts as certain failure.
    pub fn should_migrate(&self, survival: f64) -> bool {
        !survival.is_finite() || (1.0 - survival) >= self.fail_threshold
    }
}

/// Largest window `w <= max_horizon` (whole seconds) for which
/// `survive(w)` stays at or above `threshold` — the scheduler's
/// "predicted time to unavailability" of one machine. `survive` must be
/// non-increasing in the window length, which any survival function
/// is; the binary search probes it `O(log max_horizon)` times, so the
/// helper is cheap enough to run over a wire-backed predictor (one
/// `QueryAvail` round trip per probe). Returns 0 when even an
/// instantaneous placement misses the threshold (a non-finite probe
/// counts as a miss), and `max_horizon` when the whole horizon clears
/// it.
pub fn time_to_failure(
    mut survive: impl FnMut(u64) -> f64,
    threshold: f64,
    max_horizon: u64,
) -> u64 {
    let clears = |p: f64| p.is_finite() && p >= threshold;
    if clears(survive(max_horizon)) {
        return max_horizon;
    }
    if !clears(survive(0)) {
        return 0;
    }
    let (mut lo, mut hi) = (0u64, max_horizon);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if clears(survive(mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineAvailabilityModel;
    use crate::predictor::{HistoryWindowPredictor, MachineHourlyPredictor};
    use fgcs_testbed::runner::{run_testbed, TestbedConfig};

    fn lab_trace() -> Trace {
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.machines = 6;
        cfg.lab.days = 28;
        run_testbed(&cfg)
    }

    #[test]
    fn migration_threshold_is_inclusive() {
        let trig = MigrationTrigger::new(0.25);
        // Failure probability exactly at the threshold migrates.
        assert!(trig.should_migrate(0.75));
        assert!(trig.should_migrate(0.60));
        assert!(!trig.should_migrate(0.7500001));
        // Degenerate thresholds pin the boundary semantics down.
        assert!(MigrationTrigger::new(0.0).should_migrate(1.0));
        assert!(MigrationTrigger::new(1.0).should_migrate(0.0));
        assert!(!MigrationTrigger::new(1.1).should_migrate(0.0));
        // A broken predictor (NaN survival) must evacuate, not strand.
        assert!(trig.should_migrate(f64::NAN));
    }

    #[test]
    fn time_to_failure_boundary_is_inclusive() {
        // A step survival function: >= threshold up to exactly 100s.
        let step = |w: u64| if w <= 100 { 0.5 } else { 0.4 };
        assert_eq!(time_to_failure(step, 0.5, 86_400), 100);
        // Certain-failure and never-failure extremes.
        assert_eq!(time_to_failure(|_| 0.0, 0.5, 86_400), 0);
        assert_eq!(time_to_failure(|_| 1.0, 0.5, 86_400), 86_400);
        assert_eq!(time_to_failure(|_| f64::NAN, 0.5, 86_400), 0);
        assert_eq!(time_to_failure(|_| 0.9, 0.5, 0), 0);
    }

    #[test]
    fn empty_history_never_triggers_migration() {
        // A model that has seen no samples and no events treats every
        // machine as event-free: survival 1.0 at any window, so the
        // migration policy leaves guests alone and the predicted time
        // to failure is the whole horizon.
        let model = OnlineAvailabilityModel::new(0);
        let surv = model.predict(7, 0, 6 * 3600);
        assert_eq!(surv, 1.0);
        assert!(!MigrationTrigger::new(0.5).should_migrate(surv));
        assert_eq!(
            time_to_failure(|w| model.predict(7, 0, w), 0.5, 86_400),
            86_400
        );
    }

    #[test]
    fn all_unavailable_history_triggers_immediately() {
        // An event at the top of every hour for a week: the machine is
        // effectively always failing, so the trigger fires and the
        // predicted time to failure is well under an hour.
        let mut model = OnlineAvailabilityModel::new(0);
        model.ensure_machine(1);
        for h in 0..(7 * 24) {
            model.record_event(1, h * 3600);
        }
        model.observe_time(7 * 86_400);
        let now = 7 * 86_400;
        let surv = model.predict(1, now, 3600);
        assert!(surv < 0.5, "hourly-failing machine survives {surv}");
        assert!(MigrationTrigger::new(0.5).should_migrate(surv));
        let ttf = time_to_failure(|w| model.predict(1, now, w), 0.5, 86_400);
        assert!(ttf < 3600, "ttf {ttf} for an hourly-failing machine");
    }

    #[test]
    fn jobs_complete_under_both_policies() {
        let trace = lab_trace();
        let mut p = HistoryWindowPredictor::new();
        let cfg = ProactiveConfig {
            jobs: 60,
            job_secs: (1800, 2 * 3600),
            ..Default::default()
        };
        let (obl, pro) = compare(&trace, &mut p, 0.6, &cfg);
        assert_eq!(obl.policy, Policy::Oblivious);
        assert_eq!(pro.policy, Policy::Proactive);
        assert!(obl.mean_response > 0.0);
        assert!(pro.mean_response > 0.0);
        assert_eq!(obl.timed_out, 0, "{obl:?}");
        assert_eq!(pro.timed_out, 0, "{pro:?}");
    }

    #[test]
    fn proactive_does_not_lose_badly() {
        // On the lab trace, prediction-driven placement must be at least
        // competitive with random placement (the paper expects a win).
        let trace = lab_trace();
        let mut p = MachineHourlyPredictor::default();
        let cfg = ProactiveConfig {
            jobs: 150,
            ..Default::default()
        };
        let (obl, pro) = compare(&trace, &mut p, 0.6, &cfg);
        assert!(
            pro.mean_response <= obl.mean_response * 1.1,
            "proactive {} vs oblivious {}",
            pro.mean_response,
            obl.mean_response
        );
    }

    #[test]
    fn gang_jobs_complete_and_cost_more_than_singles() {
        let trace = lab_trace();
        let mut p = MachineHourlyPredictor::default();
        let base = ProactiveConfig {
            jobs: 60,
            job_secs: (1800, 2 * 3600),
            ..Default::default()
        };
        let (single, _) = compare(&trace, &mut p, 0.6, &base);
        let gang_cfg = GangConfig { base, tasks: 4 };
        let (gang, _) = compare_gang(&trace, &mut p, 0.6, &gang_cfg);
        // The makespan over 4 tasks is at least the single-task response.
        assert!(
            gang.mean_response >= single.mean_response,
            "gang {} single {}",
            gang.mean_response,
            single.mean_response
        );
        assert_eq!(gang.timed_out, 0, "{gang:?}");
    }

    #[test]
    fn gang_proactive_beats_oblivious_on_heterogeneous_lab() {
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.machines = 10;
        cfg.lab.days = 28;
        cfg.lab.machine_busyness_spread = 0.6;
        let trace = run_testbed(&cfg);
        let mut p = MachineHourlyPredictor::default();
        let gang_cfg = GangConfig {
            base: ProactiveConfig {
                jobs: 120,
                ..Default::default()
            },
            tasks: 4,
        };
        let (obl, pro) = compare_gang(&trace, &mut p, 0.6, &gang_cfg);
        assert!(
            pro.mean_response <= obl.mean_response,
            "proactive {} oblivious {}",
            pro.mean_response,
            obl.mean_response
        );
    }

    #[test]
    fn response_time_includes_waiting() {
        // A job on a single machine with a long outage must include the
        // wait in its response time.
        use fgcs_core::model::{FailureCause, Thresholds};
        use fgcs_testbed::trace::{TraceMeta, TraceRecord};
        let meta = TraceMeta {
            seed: 1,
            machines: 1,
            days: 2,
            sample_period: 15,
            start_weekday: 0,
            span_secs: 2 * 86_400,
            thresholds: Thresholds::LINUX_TESTBED,
        };
        let records = vec![TraceRecord {
            machine: 0,
            cause: FailureCause::Revocation,
            start: 0,
            end: Some(40_000),
            raw_end: Some(39_000),
            avail_cpu: 1.0,
            avail_mem_mb: 900,
        }];
        let trace = Trace { meta, records };
        let mut p = HistoryWindowPredictor::new();
        p.fit(&trace, 10);
        let cfg = ProactiveConfig {
            jobs: 5,
            job_secs: (600, 601),
            submit_from: 100,
            submit_until: 101,
            ..Default::default()
        };
        let out = replay(&trace, &p, Policy::Oblivious, &cfg);
        // Submitted at ~100 while the machine is down until 40_000.
        assert!(out.mean_response >= 39_000.0, "{out:?}");
    }
}
