//! Availability prediction for fine-grained cycle sharing.
//!
//! The ICPP'06 paper establishes *that* FGCS availability is predictable
//! (daily patterns repeat, §5.3) and leaves the predictors themselves as
//! future work (§6). This crate builds them:
//!
//! * [`predictor`] — the paper's history-window scheme (same clock
//!   window on recent same-type days, with irregular-data trimming) and
//!   the baselines it must beat: global-rate Poisson, hourly-rate
//!   Poisson, last-day, base-rate.
//! * [`eval`] — train/test evaluation with Brier score and accuracy
//!   over a grid of window lengths.
//! * [`renewal`] — a renewal-theory predictor built directly on the
//!   Figure 6 interval-length distributions.
//! * [`proactive`] — the motivating application: proactive guest-job
//!   placement versus oblivious random placement, replayed over testbed
//!   traces, comparing job response times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod online;
pub mod predictor;
pub mod proactive;
pub mod renewal;

pub use eval::{evaluate, standard_predictors, EvalConfig, EvalResult};
pub use online::OnlineAvailabilityModel;
pub use predictor::{
    AvailabilityPredictor, BaseRatePredictor, GlobalRatePredictor, HistoryWindowPredictor,
    HourlyRatePredictor, LastDayPredictor, MachineHourlyPredictor,
};
pub use proactive::{
    compare, compare_gang, replay, replay_gang, time_to_failure, GangConfig, MigrationTrigger,
    Policy, PolicyOutcome, ProactiveConfig,
};
pub use renewal::RenewalPredictor;
