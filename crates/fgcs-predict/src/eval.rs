//! Predictor evaluation.
//!
//! Splits a trace into a training prefix and a test suffix, builds a
//! query set of `(machine, t, window)` probes over the test period, and
//! scores each predictor with the Brier score and thresholded accuracy
//! against the ground truth.

use fgcs_testbed::calendar::SECS_PER_DAY;
use fgcs_testbed::quality::TraceQualityReport;
use fgcs_testbed::trace::Trace;

use crate::predictor::{AvailabilityPredictor, EventIndex};

/// Evaluation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Fraction of the trace used for training (by time).
    pub train_fraction: f64,
    /// Window lengths to probe, seconds.
    pub windows: Vec<u64>,
    /// Spacing between query start times, seconds.
    pub query_stride: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            train_fraction: 0.75,
            windows: vec![1800, 3600, 2 * 3600, 4 * 3600, 8 * 3600],
            query_stride: 2 * 3600,
        }
    }
}

/// Score of one predictor at one window length.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Predictor name.
    pub predictor: &'static str,
    /// Window length, seconds.
    pub window: u64,
    /// Mean Brier score (lower is better; 0.25 = coin flip).
    pub brier: f64,
    /// Accuracy of thresholding the probability at 0.5.
    pub accuracy: f64,
    /// Fraction of probed windows that were actually available.
    pub base_rate: f64,
    /// Number of queries scored.
    pub queries: usize,
}

/// Evaluates a set of predictors on a trace. Each predictor is trained
/// on the prefix `[0, train_end)` and probed over the suffix.
pub fn evaluate(
    trace: &Trace,
    predictors: &mut [Box<dyn AvailabilityPredictor>],
    cfg: &EvalConfig,
) -> Vec<EvalResult> {
    evaluate_inner(trace, None, predictors, cfg)
}

/// [`evaluate`] on a trace with known quality problems: queries whose
/// probe window overlaps a censored span of that machine are skipped —
/// their "ground truth" would be read from a stretch nobody observed, so
/// scoring against it would be noise, not evaluation. An empty report
/// makes this identical to [`evaluate`].
pub fn evaluate_censored(
    trace: &Trace,
    quality: &TraceQualityReport,
    predictors: &mut [Box<dyn AvailabilityPredictor>],
    cfg: &EvalConfig,
) -> Vec<EvalResult> {
    evaluate_inner(trace, Some(quality), predictors, cfg)
}

fn evaluate_inner(
    trace: &Trace,
    quality: Option<&TraceQualityReport>,
    predictors: &mut [Box<dyn AvailabilityPredictor>],
    cfg: &EvalConfig,
) -> Vec<EvalResult> {
    let span = trace.meta.span_secs;
    let train_end = ((span as f64 * cfg.train_fraction) as u64 / SECS_PER_DAY) * SECS_PER_DAY;
    for p in predictors.iter_mut() {
        p.fit(trace, train_end);
    }

    let truth_index = EventIndex::build(trace, u64::MAX);
    let mut results = Vec::new();
    for &window in &cfg.windows {
        // Shared query set and ground truth for every predictor.
        let mut queries: Vec<(u32, u64, bool)> = Vec::new();
        for m in 0..trace.meta.machines {
            let censored = quality.and_then(|q| q.machines.get(&m));
            let mut t = train_end;
            while t + window <= span {
                if censored.is_some_and(|mq| mq.overlaps_censored(t, t + window)) {
                    t += cfg.query_stride;
                    continue;
                }
                let truth = truth_index.window_available(m, t, window);
                queries.push((m, t, truth));
                t += cfg.query_stride;
            }
        }
        let base_rate = if queries.is_empty() {
            0.0
        } else {
            queries.iter().filter(|q| q.2).count() as f64 / queries.len() as f64
        };
        for p in predictors.iter() {
            let mut brier = 0.0;
            let mut correct = 0usize;
            for &(m, t, truth) in &queries {
                let prob = p.predict(m, t, window).clamp(0.0, 1.0);
                let y = if truth { 1.0 } else { 0.0 };
                brier += (prob - y) * (prob - y);
                if (prob >= 0.5) == truth {
                    correct += 1;
                }
            }
            let n = queries.len().max(1) as f64;
            results.push(EvalResult {
                predictor: p.name(),
                window,
                brier: brier / n,
                accuracy: correct as f64 / n,
                base_rate,
                queries: queries.len(),
            });
        }
    }
    results
}

/// The standard predictor lineup: the paper's history-window scheme and
/// all baselines.
pub fn standard_predictors() -> Vec<Box<dyn AvailabilityPredictor>> {
    use crate::predictor::*;
    vec![
        Box::new(HistoryWindowPredictor::new()),
        Box::new(HistoryWindowPredictor::new().with_trim(false)),
        Box::new(MachineHourlyPredictor::default()),
        Box::new(HourlyRatePredictor::default()),
        Box::new(crate::renewal::RenewalPredictor::default()),
        Box::new(GlobalRatePredictor::default()),
        Box::new(LastDayPredictor::default()),
        Box::new(BaseRatePredictor::new(3600)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_testbed::runner::{run_testbed, TestbedConfig};

    fn small_trace() -> Trace {
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.machines = 4;
        cfg.lab.days = 28;
        run_testbed(&cfg)
    }

    #[test]
    fn evaluation_produces_rows_for_every_predictor_and_window() {
        let trace = small_trace();
        let mut preds = standard_predictors();
        let cfg = EvalConfig {
            windows: vec![3600, 4 * 3600],
            ..Default::default()
        };
        let rows = evaluate(&trace, &mut preds, &cfg);
        assert_eq!(rows.len(), preds.len() * 2);
        for r in &rows {
            assert!(r.queries > 0);
            assert!((0.0..=1.0).contains(&r.brier), "{r:?}");
            assert!((0.0..=1.0).contains(&r.accuracy), "{r:?}");
        }
    }

    #[test]
    fn history_window_beats_global_rate_on_lab_trace() {
        let trace = small_trace();
        let mut preds = standard_predictors();
        let cfg = EvalConfig {
            windows: vec![2 * 3600],
            ..Default::default()
        };
        let rows = evaluate(&trace, &mut preds, &cfg);
        let brier_of = |name: &str| {
            rows.iter()
                .find(|r| r.predictor == name)
                .map(|r| r.brier)
                .unwrap()
        };
        // The paper's claim: history windows predict better than a
        // structure-free rate.
        assert!(
            brier_of("history-window") < brier_of("base-rate"),
            "history {} vs base {}",
            brier_of("history-window"),
            brier_of("base-rate")
        );
    }

    #[test]
    fn empty_quality_report_changes_nothing() {
        let trace = small_trace();
        let cfg = EvalConfig {
            windows: vec![3600],
            ..Default::default()
        };
        let plain = evaluate(&trace, &mut standard_predictors(), &cfg);
        let censored = evaluate_censored(
            &trace,
            &TraceQualityReport::new(),
            &mut standard_predictors(),
            &cfg,
        );
        assert_eq!(plain, censored);
    }

    #[test]
    fn censored_windows_are_not_scored() {
        let trace = small_trace();
        let cfg = EvalConfig {
            windows: vec![3600],
            ..Default::default()
        };
        let plain = evaluate(&trace, &mut standard_predictors(), &cfg);
        // Censor the whole test suffix of machine 0: all its queries go.
        let mut q = TraceQualityReport::new();
        q.machine_mut(0).censored_spans = vec![(0, trace.meta.span_secs)];
        let censored = evaluate_censored(&trace, &q, &mut standard_predictors(), &cfg);
        let per_machine = plain[0].queries / trace.meta.machines as usize;
        assert_eq!(censored[0].queries, plain[0].queries - per_machine);
    }

    #[test]
    fn evaluation_survives_a_gappy_supervised_trace() {
        use fgcs_faults::FaultConfig;
        use fgcs_testbed::runner::{run_testbed_faulty, SupervisorConfig};
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.machines = 4;
        cfg.lab.days = 28;
        let mut faults = FaultConfig::noisy(5);
        faults.crash_rate_per_day = 0.1; // some censoring, not total
        let (trace, quality) = run_testbed_faulty(&cfg, &faults, &SupervisorConfig::default());
        let ecfg = EvalConfig {
            windows: vec![3600],
            ..Default::default()
        };
        let rows = evaluate_censored(&trace, &quality, &mut standard_predictors(), &ecfg);
        for r in &rows {
            assert!(r.queries > 0, "not everything may be censored");
            assert!((0.0..=1.0).contains(&r.brier), "{r:?}");
            assert!((0.0..=1.0).contains(&r.accuracy), "{r:?}");
        }
    }

    #[test]
    fn brier_degrades_gracefully_with_window_length() {
        // Longer windows are intrinsically harder (lower base rate);
        // scores must remain valid probabilistic scores.
        let trace = small_trace();
        let mut preds: Vec<Box<dyn AvailabilityPredictor>> =
            vec![Box::new(crate::predictor::HistoryWindowPredictor::new())];
        let cfg = EvalConfig {
            windows: vec![1800, 8 * 3600],
            ..Default::default()
        };
        let rows = evaluate(&trace, &mut preds, &cfg);
        assert!(rows.iter().all(|r| r.brier <= 0.5));
    }
}
