//! Availability predictors.
//!
//! §5.3 of the paper concludes: "it is feasible to predict resource
//! availability over an arbitrary future time window, if the prediction
//! uses history data for the corresponding time windows from previous
//! weekdays or weekends ... One approach is to use statistics on history
//! trace to alleviate the effects of 'irregular' data." The
//! [`HistoryWindowPredictor`] is that algorithm; the others are the
//! baselines any evaluation needs.
//!
//! A predictor answers: *what is the probability that machine `m`
//! remains available throughout the window `[t, t+w)`?*

use fgcs_testbed::calendar::{day_index, day_type, DayType, SECS_PER_DAY};
use fgcs_testbed::trace::{Trace, TraceRecord};

/// Probability that a machine stays available over a future window.
pub trait AvailabilityPredictor {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// Trains on all trace records that *start* before `train_end`.
    fn fit(&mut self, trace: &Trace, train_end: u64);
    /// Probability of zero unavailability on `machine` during
    /// `[t, t + window)`. Must return a value in `[0, 1]`.
    fn predict(&self, machine: u32, t: u64, window: u64) -> f64;
}

/// True iff no occurrence on `machine` intersects `[t, t+w)` — the
/// ground truth the predictors are scored against.
pub fn window_was_available(records: &[TraceRecord], machine: u32, t: u64, w: u64) -> bool {
    !records
        .iter()
        .any(|r| r.machine == machine && r.start < t + w && r.end.unwrap_or(u64::MAX) > t)
}

/// Per-machine event index with O(log n) window queries.
///
/// The detector guarantees each machine's occurrences are non-overlapping
/// and start-ordered, so a window `[t, t+w)` intersects an occurrence iff
/// either some occurrence *starts* inside the window, or the last
/// occurrence starting before `t` is still open at `t`.
#[derive(Debug, Clone, Default)]
pub struct EventIndex {
    // (start, end) per machine, start-sorted.
    per_machine: Vec<Vec<(u64, u64)>>,
}

impl EventIndex {
    /// Builds the index from all records starting before `cutoff`.
    pub fn build(trace: &Trace, cutoff: u64) -> Self {
        let mut per_machine = vec![Vec::new(); trace.meta.machines as usize];
        for r in &trace.records {
            if r.start < cutoff {
                per_machine[r.machine as usize].push((r.start, r.end.unwrap_or(u64::MAX)));
            }
        }
        for v in &mut per_machine {
            v.sort_unstable();
        }
        EventIndex { per_machine }
    }

    /// True iff no indexed occurrence intersects `[t, t+w)` on `machine`.
    pub fn window_available(&self, machine: u32, t: u64, w: u64) -> bool {
        let Some(events) = self.per_machine.get(machine as usize) else {
            return true;
        };
        let before_end = events.partition_point(|&(s, _)| s < t + w);
        let before_start = events.partition_point(|&(s, _)| s < t);
        if before_start < before_end {
            return false; // an occurrence starts inside the window
        }
        if before_start > 0 {
            let (_, end) = events[before_start - 1];
            if end > t {
                return false; // a preceding occurrence still covers t
            }
        }
        true
    }
}

fn training_records(trace: &Trace, train_end: u64) -> Vec<&TraceRecord> {
    trace
        .records
        .iter()
        .filter(|r| r.start < train_end)
        .collect()
}

// ---------------------------------------------------------------------
// The paper's proposal.
// ---------------------------------------------------------------------

/// History-window prediction: look at the *same clock window* on the
/// most recent `history_days` days of the same type (weekday/weekend)
/// and report the (Laplace-smoothed) fraction that was failure-free.
///
/// With `trim_worst` set, the single worst day (the most "irregular"
/// datum) is dropped before averaging — the paper's suggestion to "use
/// statistics on history trace to alleviate the effects of irregular
/// data".
#[derive(Debug, Clone)]
pub struct HistoryWindowPredictor {
    /// How many same-type history days to consult.
    pub history_days: usize,
    /// Laplace smoothing pseudo-count.
    pub alpha: f64,
    /// Drop the most pessimistic history day before averaging.
    pub trim_worst: bool,
    start_weekday: u8,
    index: EventIndex,
    train_end: u64,
}

impl HistoryWindowPredictor {
    /// Creates an untrained predictor with the paper-suggested defaults
    /// (10 history days, mild smoothing, trimming on).
    pub fn new() -> Self {
        HistoryWindowPredictor {
            history_days: 10,
            alpha: 0.5,
            trim_worst: true,
            start_weekday: 0,
            index: EventIndex::default(),
            train_end: 0,
        }
    }

    /// Sets the history depth.
    pub fn with_history_days(mut self, days: usize) -> Self {
        self.history_days = days.max(1);
        self
    }

    /// Enables/disables irregular-data trimming.
    pub fn with_trim(mut self, trim: bool) -> Self {
        self.trim_worst = trim;
        self
    }
}

impl Default for HistoryWindowPredictor {
    fn default() -> Self {
        HistoryWindowPredictor::new()
    }
}

impl AvailabilityPredictor for HistoryWindowPredictor {
    fn name(&self) -> &'static str {
        if self.trim_worst {
            "history-window"
        } else {
            "history-no-trim"
        }
    }

    fn fit(&mut self, trace: &Trace, train_end: u64) {
        self.start_weekday = trace.meta.start_weekday;
        self.train_end = train_end;
        self.index = EventIndex::build(trace, train_end);
    }

    fn predict(&self, machine: u32, t: u64, window: u64) -> f64 {
        let target_type = day_type(day_index(t), self.start_weekday);
        let mut outcomes: Vec<f64> = Vec::with_capacity(self.history_days);
        let mut day = day_index(t);
        // Walk backwards over same-type days fully inside the training
        // span.
        while outcomes.len() < self.history_days && day > 0 {
            day -= 1;
            if day_type(day, self.start_weekday) != target_type {
                continue;
            }
            let shift = (day_index(t) - day) * SECS_PER_DAY;
            if t < shift {
                break;
            }
            let (hs, hw) = (t - shift, window);
            if hs + hw > self.train_end {
                continue; // window leaks outside the training data
            }
            outcomes.push(if self.index.window_available(machine, hs, hw) {
                1.0
            } else {
                0.0
            });
        }
        if outcomes.is_empty() {
            return 0.5; // no history: maximal uncertainty
        }
        if self.trim_worst && outcomes.len() >= 3 {
            // Drop one worst (0.0 if any) sample: a single irregular bad
            // day should not dominate the estimate.
            if let Some(pos) = outcomes.iter().position(|&o| o == 0.0) {
                outcomes.remove(pos);
            }
        }
        let good: f64 = outcomes.iter().sum();
        let n = outcomes.len() as f64;
        ((good + self.alpha) / (n + 2.0 * self.alpha)).clamp(0.0, 1.0)
    }
}

// ---------------------------------------------------------------------
// Baselines.
// ---------------------------------------------------------------------

/// Homogeneous-Poisson baseline: one global failure rate per machine,
/// `P = exp(-λ_m · w)`. Ignores all temporal structure.
#[derive(Debug, Clone, Default)]
pub struct GlobalRatePredictor {
    rates: Vec<f64>, // per machine, events per second
}

impl AvailabilityPredictor for GlobalRatePredictor {
    fn name(&self) -> &'static str {
        "global-rate"
    }

    fn fit(&mut self, trace: &Trace, train_end: u64) {
        let span = train_end.max(1) as f64;
        self.rates = vec![0.0; trace.meta.machines as usize];
        for r in training_records(trace, train_end) {
            self.rates[r.machine as usize] += 1.0;
        }
        for rate in &mut self.rates {
            *rate /= span;
        }
    }

    fn predict(&self, machine: u32, _t: u64, window: u64) -> f64 {
        let lambda = self.rates.get(machine as usize).copied().unwrap_or(0.0);
        (-lambda * window as f64).exp()
    }
}

/// Hour-profile Poisson baseline: a per-(day-type, hour) failure rate
/// pooled over machines, integrated over the query window. Captures the
/// diurnal pattern but not machine identity or day-to-day persistence.
#[derive(Debug, Clone, Default)]
pub struct HourlyRatePredictor {
    /// events per machine-second, by (weekday? 0:1, hour).
    rates: [[f64; 24]; 2],
    start_weekday: u8,
}

impl AvailabilityPredictor for HourlyRatePredictor {
    fn name(&self) -> &'static str {
        "hourly-rate"
    }

    fn fit(&mut self, trace: &Trace, train_end: u64) {
        self.start_weekday = trace.meta.start_weekday;
        let mut counts = [[0.0f64; 24]; 2];
        let mut hours_of_type = [0.0f64; 2];
        let machines = trace.meta.machines.max(1) as f64;
        let train_days = (train_end / SECS_PER_DAY).min(trace.meta.days as u64);
        for day in 0..train_days {
            let idx = match day_type(day, self.start_weekday) {
                DayType::Weekday => 0,
                DayType::Weekend => 1,
            };
            hours_of_type[idx] += 1.0;
        }
        for r in training_records(trace, train_end) {
            let idx = match day_type(day_index(r.start), self.start_weekday) {
                DayType::Weekday => 0,
                DayType::Weekend => 1,
            };
            let hour = ((r.start % SECS_PER_DAY) / 3600) as usize;
            counts[idx][hour] += 1.0;
        }
        for (idx, row) in counts.iter().enumerate() {
            for (h, &c) in row.iter().enumerate() {
                let machine_secs = hours_of_type[idx] * 3600.0 * machines;
                self.rates[idx][h] = if machine_secs > 0.0 {
                    c / machine_secs
                } else {
                    0.0
                };
            }
        }
    }

    fn predict(&self, _machine: u32, t: u64, window: u64) -> f64 {
        // Integrate the rate over the window, hour slice by hour slice.
        let mut expected = 0.0;
        let mut cursor = t;
        let end = t + window;
        while cursor < end {
            let idx = match day_type(day_index(cursor), self.start_weekday) {
                DayType::Weekday => 0,
                DayType::Weekend => 1,
            };
            let hour = ((cursor % SECS_PER_DAY) / 3600) as usize;
            let hour_end = cursor - (cursor % 3600) + 3600;
            let slice = hour_end.min(end) - cursor;
            expected += self.rates[idx][hour] * slice as f64;
            cursor = hour_end;
        }
        (-expected).exp()
    }
}

/// Factorized per-machine × hour-of-day Poisson predictor:
/// `λ(m, d, h) = rate_m · shape(d, h)`, where `rate_m` is machine `m`'s
/// overall failure rate and `shape` is the pooled diurnal profile
/// normalized to mean 1.
///
/// This is the placement-grade predictor: the history-window scheme is
/// better *calibrated* for a single machine over time (best Brier), but
/// its per-window estimates are too coarse to rank machines against each
/// other at a fixed instant — exactly what a proactive scheduler needs.
/// Factorizing pools the diurnal shape across machines (lots of data)
/// while keeping the per-machine identity (the quiet corner machine
/// really is quieter).
#[derive(Debug, Clone, Default)]
pub struct MachineHourlyPredictor {
    machine_rate: Vec<f64>, // events per second, per machine
    shape: [[f64; 24]; 2],  // multiplier per (day type, hour), mean ~1
    start_weekday: u8,
}

impl AvailabilityPredictor for MachineHourlyPredictor {
    fn name(&self) -> &'static str {
        "machine-hourly"
    }

    fn fit(&mut self, trace: &Trace, train_end: u64) {
        self.start_weekday = trace.meta.start_weekday;
        let machines = trace.meta.machines.max(1) as usize;
        let span = train_end.max(1) as f64;
        self.machine_rate = vec![0.0; machines];
        let mut hour_counts = [[0.0f64; 24]; 2];
        let mut hours_of_type = [0.0f64; 2];
        let train_days = (train_end / SECS_PER_DAY).min(trace.meta.days as u64);
        for day in 0..train_days {
            let idx = (day_type(day, self.start_weekday) == DayType::Weekend) as usize;
            hours_of_type[idx] += 1.0;
        }
        let mut total_events = 0.0;
        for r in training_records(trace, train_end) {
            self.machine_rate[r.machine as usize] += 1.0;
            let idx =
                (day_type(day_index(r.start), self.start_weekday) == DayType::Weekend) as usize;
            let hour = ((r.start % SECS_PER_DAY) / 3600) as usize;
            hour_counts[idx][hour] += 1.0;
            total_events += 1.0;
        }
        for rate in &mut self.machine_rate {
            *rate /= span;
        }
        // Normalize the pooled hourly counts into a mean-1 shape:
        // shape(d, h) = (pooled rate in that hour) / (pooled overall rate).
        let machines_f = machines as f64;
        let overall_rate = total_events / (span * machines_f); // events/machine-sec
        for (idx, row) in hour_counts.iter().enumerate() {
            for (h, &c) in row.iter().enumerate() {
                let machine_secs = hours_of_type[idx] * 3600.0 * machines_f;
                let hour_rate = if machine_secs > 0.0 {
                    c / machine_secs
                } else {
                    0.0
                };
                self.shape[idx][h] = if overall_rate > 0.0 {
                    hour_rate / overall_rate
                } else {
                    1.0
                };
            }
        }
    }

    fn predict(&self, machine: u32, t: u64, window: u64) -> f64 {
        let rate = self
            .machine_rate
            .get(machine as usize)
            .copied()
            .unwrap_or(0.0);
        let mut expected = 0.0;
        let mut cursor = t;
        let end = t + window;
        while cursor < end {
            let idx =
                (day_type(day_index(cursor), self.start_weekday) == DayType::Weekend) as usize;
            let hour = ((cursor % SECS_PER_DAY) / 3600) as usize;
            let hour_end = cursor - (cursor % 3600) + 3600;
            let slice = hour_end.min(end) - cursor;
            expected += rate * self.shape[idx][hour] * slice as f64;
            cursor = hour_end;
        }
        (-expected).exp()
    }
}

/// Last-same-day baseline: report what happened in the same window on
/// the most recent day of the same type, clamped away from certainty.
/// The degenerate `history_days = 1`, no-smoothing-to-speak-of variant
/// of the paper's scheme.
#[derive(Debug, Clone, Default)]
pub struct LastDayPredictor {
    inner: Option<HistoryWindowPredictor>,
}

impl AvailabilityPredictor for LastDayPredictor {
    fn name(&self) -> &'static str {
        "last-day"
    }

    fn fit(&mut self, trace: &Trace, train_end: u64) {
        let mut p = HistoryWindowPredictor::new()
            .with_history_days(1)
            .with_trim(false);
        p.alpha = 0.05;
        p.fit(trace, train_end);
        self.inner = Some(p);
    }

    fn predict(&self, machine: u32, t: u64, window: u64) -> f64 {
        self.inner
            .as_ref()
            .map(|p| p.predict(machine, t, window))
            .unwrap_or(0.5)
    }
}

/// Constant optimist: always predicts the training-set base rate of
/// window availability — the weakest calibrated baseline.
#[derive(Debug, Clone)]
pub struct BaseRatePredictor {
    /// Window length the base rate was estimated for.
    probe_window: u64,
    rate: f64,
}

impl BaseRatePredictor {
    /// Creates a base-rate predictor probing with the given window.
    pub fn new(probe_window: u64) -> Self {
        BaseRatePredictor {
            probe_window,
            rate: 0.5,
        }
    }
}

impl AvailabilityPredictor for BaseRatePredictor {
    fn name(&self) -> &'static str {
        "base-rate"
    }

    fn fit(&mut self, trace: &Trace, train_end: u64) {
        let records: Vec<TraceRecord> = trace
            .records
            .iter()
            .filter(|r| r.start < train_end)
            .copied()
            .collect();
        let mut good = 0u64;
        let mut total = 0u64;
        let step = self.probe_window.max(600);
        for m in 0..trace.meta.machines {
            let mut t = 0;
            while t + self.probe_window <= train_end {
                total += 1;
                if window_was_available(&records, m, t, self.probe_window) {
                    good += 1;
                }
                t += step;
            }
        }
        self.rate = if total == 0 {
            0.5
        } else {
            good as f64 / total as f64
        };
    }

    fn predict(&self, _machine: u32, _t: u64, _window: u64) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_core::model::{FailureCause, Thresholds};
    use fgcs_testbed::trace::TraceMeta;

    fn meta(machines: u32, days: u32) -> TraceMeta {
        TraceMeta {
            seed: 1,
            machines,
            days,
            sample_period: 15,
            start_weekday: 0,
            span_secs: days as u64 * SECS_PER_DAY,
            thresholds: Thresholds::LINUX_TESTBED,
        }
    }

    fn rec(machine: u32, start: u64, end: u64) -> TraceRecord {
        TraceRecord {
            machine,
            cause: FailureCause::CpuContention,
            start,
            end: Some(end),
            raw_end: Some(end),
            avail_cpu: 0.9,
            avail_mem_mb: 800,
        }
    }

    /// A trace where machine 0 fails 10:00–10:30 on every weekday.
    fn regular_trace(days: u32) -> Trace {
        let mut records = Vec::new();
        for d in 0..days as u64 {
            if day_type(d, 0) == DayType::Weekday {
                let s = d * SECS_PER_DAY + 10 * 3600;
                records.push(rec(0, s, s + 1800));
            }
        }
        Trace {
            meta: meta(2, days),
            records,
        }
    }

    #[test]
    fn ground_truth_window_checks() {
        let records = vec![rec(0, 1000, 2000)];
        assert!(!window_was_available(&records, 0, 500, 1000)); // overlaps start
        assert!(!window_was_available(&records, 0, 1500, 100)); // inside
        assert!(window_was_available(&records, 0, 2000, 500)); // after end
        assert!(window_was_available(&records, 0, 0, 1000)); // before start
        assert!(window_was_available(&records, 1, 1500, 100)); // other machine
    }

    #[test]
    fn history_predictor_learns_the_10am_failure() {
        let trace = regular_trace(28);
        let mut p = HistoryWindowPredictor::new().with_trim(false);
        p.fit(&trace, 21 * SECS_PER_DAY);
        // Day 21 is a Monday. The 10:00–10:30 window fails every weekday.
        let bad = p.predict(0, 21 * SECS_PER_DAY + 10 * 3600, 1800);
        let good = p.predict(0, 21 * SECS_PER_DAY + 14 * 3600, 1800);
        assert!(bad < 0.2, "bad-window prediction {bad}");
        assert!(good > 0.8, "good-window prediction {good}");
        // Machine 1 never fails.
        let other = p.predict(1, 21 * SECS_PER_DAY + 10 * 3600, 1800);
        assert!(other > 0.8, "other machine {other}");
    }

    #[test]
    fn history_predictor_distinguishes_day_types() {
        let trace = regular_trace(28);
        let mut p = HistoryWindowPredictor::new().with_trim(false);
        p.fit(&trace, 26 * SECS_PER_DAY);
        // Day 26 is a Saturday: weekends never fail at 10:00.
        let weekend = p.predict(0, 26 * SECS_PER_DAY + 10 * 3600, 1800);
        assert!(weekend > 0.8, "weekend {weekend}");
    }

    #[test]
    fn history_predictor_with_no_history_is_uncertain() {
        let trace = regular_trace(28);
        let mut p = HistoryWindowPredictor::new();
        p.fit(&trace, 1); // nothing usable
        assert_eq!(p.predict(0, 10 * 3600, 1800), 0.5);
    }

    #[test]
    fn trimming_forgives_one_irregular_day() {
        // Machine fails at 10:00 only on ONE of ten weekdays.
        let mut records = Vec::new();
        let s = 7 * SECS_PER_DAY + 10 * 3600; // second Monday
        records.push(rec(0, s, s + 1800));
        let trace = Trace {
            meta: meta(1, 28),
            records,
        };
        let t = 21 * SECS_PER_DAY + 10 * 3600;
        let mut trimmed = HistoryWindowPredictor::new().with_trim(true);
        trimmed.fit(&trace, 21 * SECS_PER_DAY);
        let mut plain = HistoryWindowPredictor::new().with_trim(false);
        plain.fit(&trace, 21 * SECS_PER_DAY);
        assert!(trimmed.predict(0, t, 1800) > plain.predict(0, t, 1800));
        assert!(trimmed.predict(0, t, 1800) > 0.9);
    }

    #[test]
    fn global_rate_decays_with_window() {
        let trace = regular_trace(28);
        let mut p = GlobalRatePredictor::default();
        p.fit(&trace, 21 * SECS_PER_DAY);
        let short = p.predict(0, 0, 600);
        let long = p.predict(0, 0, 6 * 3600);
        assert!(short > long, "short {short} long {long}");
        assert!(short > 0.9);
        // Machine 1 never failed: probability 1.
        assert_eq!(p.predict(1, 0, 6 * 3600), 1.0);
    }

    #[test]
    fn hourly_rate_sees_the_diurnal_pattern() {
        let trace = regular_trace(56);
        let mut p = HourlyRatePredictor::default();
        p.fit(&trace, 49 * SECS_PER_DAY);
        let t_bad = 49 * SECS_PER_DAY + 10 * 3600;
        let t_good = 49 * SECS_PER_DAY + 2 * 3600;
        assert!(p.predict(0, t_bad, 3600) < p.predict(0, t_good, 3600));
    }

    #[test]
    fn base_rate_is_constant_and_sane() {
        let trace = regular_trace(28);
        let mut p = BaseRatePredictor::new(3600);
        p.fit(&trace, 21 * SECS_PER_DAY);
        let a = p.predict(0, 123, 3600);
        let b = p.predict(1, 999_999, 7200);
        assert_eq!(a, b);
        assert!(a > 0.5 && a <= 1.0, "base rate {a}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let trace = regular_trace(28);
        let mut predictors: Vec<Box<dyn AvailabilityPredictor>> = vec![
            Box::new(HistoryWindowPredictor::new()),
            Box::new(GlobalRatePredictor::default()),
            Box::new(HourlyRatePredictor::default()),
            Box::new(LastDayPredictor::default()),
            Box::new(BaseRatePredictor::new(3600)),
        ];
        for p in &mut predictors {
            p.fit(&trace, 21 * SECS_PER_DAY);
            for t in [0u64, 10 * 3600, 21 * SECS_PER_DAY + 5 * 3600] {
                for w in [600u64, 3600, 8 * 3600] {
                    let prob = p.predict(0, t, w);
                    assert!((0.0..=1.0).contains(&prob), "{}: {prob}", p.name());
                }
            }
        }
    }
}
