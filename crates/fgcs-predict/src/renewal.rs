//! A renewal-theory predictor built on the Figure 6 distributions.
//!
//! §5.2 argues that "facilities to predict such interval lengths provide
//! the knowledge of how much computation power an FGCS system can
//! deliver without interruption". This module turns that claim into an
//! algorithm: model each machine as an alternating renewal process of
//! availability intervals (length distribution `F`, the Figure 6 CDF)
//! and outages. For a random time point in equilibrium,
//!
//! ```text
//! P(no failure in [t, t+w]) = E[max(0, L − w)] / (E[L] + E[D])
//! ```
//!
//! where `L` is an availability-interval length and `D` an outage
//! duration: the window survives iff `t` falls inside an interval whose
//! *residual* exceeds `w`, and the inspection-paradox-weighted residual
//! integral is exactly `E[max(0, L − w)]`.
//!
//! Interval samples are kept per day type (the paper's weekday/weekend
//! split), so the predictor inherits Figure 6's weekday-vs-weekend
//! difference, though not the finer hour-of-day structure.

use fgcs_testbed::calendar::{day_index, day_type, DayType, SECS_PER_DAY};
use fgcs_testbed::trace::Trace;

use crate::predictor::AvailabilityPredictor;

/// Interval-distribution (renewal) availability predictor.
#[derive(Debug, Clone, Default)]
pub struct RenewalPredictor {
    /// Sorted availability-interval lengths, per day type.
    intervals: [Vec<f64>; 2],
    /// Mean outage duration, per day type.
    mean_outage: [f64; 2],
    start_weekday: u8,
}

impl RenewalPredictor {
    fn slot(dt: DayType) -> usize {
        (dt == DayType::Weekend) as usize
    }

    /// `E[max(0, L − w)]` over the stored samples for the day type.
    fn mean_excess(&self, slot: usize, w: f64) -> f64 {
        let samples = &self.intervals[slot];
        if samples.is_empty() {
            return 0.0;
        }
        // Samples are sorted: only the suffix with L > w contributes.
        let idx = samples.partition_point(|&l| l <= w);
        let excess: f64 = samples[idx..].iter().map(|l| l - w).sum();
        excess / samples.len() as f64
    }

    fn mean_interval(&self, slot: usize) -> f64 {
        self.mean_excess(slot, 0.0)
    }
}

impl AvailabilityPredictor for RenewalPredictor {
    fn name(&self) -> &'static str {
        "renewal"
    }

    fn fit(&mut self, trace: &Trace, train_end: u64) {
        self.start_weekday = trace.meta.start_weekday;
        let mut intervals: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        let mut outage_sum = [0.0f64; 2];
        let mut outage_n = [0u64; 2];

        for (_, recs) in trace.per_machine() {
            let mut cursor = 0u64;
            for r in recs {
                if r.start >= train_end {
                    break;
                }
                if r.start > cursor {
                    // Attribute the interval to the day type of its
                    // midpoint: an interval spanning Friday evening to
                    // Monday morning is weekend capacity.
                    let mid = cursor + (r.start - cursor) / 2;
                    let slot = Self::slot(day_type(day_index(mid), self.start_weekday));
                    intervals[slot].push((r.start - cursor) as f64);
                }
                let end = r.end.unwrap_or(train_end).min(train_end);
                let slot = Self::slot(day_type(day_index(r.start), self.start_weekday));
                outage_sum[slot] += end.saturating_sub(r.start) as f64;
                outage_n[slot] += 1;
                cursor = cursor.max(end);
            }
            // Trailing interval up to the training horizon.
            if cursor < train_end {
                let mid = cursor + (train_end - cursor) / 2;
                let slot = Self::slot(day_type(day_index(mid), self.start_weekday));
                intervals[slot].push((train_end - cursor) as f64);
            }
        }
        for v in &mut intervals {
            v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        }
        self.intervals = intervals;
        for slot in 0..2 {
            self.mean_outage[slot] = if outage_n[slot] > 0 {
                outage_sum[slot] / outage_n[slot] as f64
            } else {
                0.0
            };
        }
    }

    fn predict(&self, _machine: u32, t: u64, window: u64) -> f64 {
        let slot = Self::slot(day_type(t / SECS_PER_DAY, self.start_weekday));
        let mu_l = self.mean_interval(slot);
        if mu_l == 0.0 {
            return 0.5; // no training data for this day type
        }
        let cycle = mu_l + self.mean_outage[slot];
        (self.mean_excess(slot, window as f64) / cycle).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_core::model::{FailureCause, Thresholds};
    use fgcs_testbed::trace::{TraceMeta, TraceRecord};

    fn meta(machines: u32, days: u32) -> TraceMeta {
        TraceMeta {
            seed: 1,
            machines,
            days,
            sample_period: 15,
            start_weekday: 0,
            span_secs: days as u64 * SECS_PER_DAY,
            thresholds: Thresholds::LINUX_TESTBED,
        }
    }

    fn rec(machine: u32, start: u64, end: u64) -> TraceRecord {
        TraceRecord {
            machine,
            cause: FailureCause::CpuContention,
            start,
            end: Some(end),
            raw_end: Some(end),
            avail_cpu: 0.9,
            avail_mem_mb: 800,
        }
    }

    /// One machine failing for 30 min every 4 hours on weekdays —
    /// regular intervals of 3.5 h — and never on weekends.
    fn periodic_trace() -> Trace {
        let mut records = Vec::new();
        for day in 0..21u64 {
            if day_type(day, 0) == DayType::Weekend {
                continue;
            }
            for k in 0..6u64 {
                let s = day * SECS_PER_DAY + k * 4 * 3600 + 3600;
                records.push(rec(0, s, s + 1800));
            }
        }
        Trace {
            meta: meta(1, 21),
            records,
        }
    }

    #[test]
    fn mean_excess_is_monotone_decreasing() {
        let mut p = RenewalPredictor::default();
        p.fit(&periodic_trace(), 14 * SECS_PER_DAY);
        let mut prev = f64::INFINITY;
        for w in [0u64, 1800, 3600, 2 * 3600, 4 * 3600, 8 * 3600] {
            let v = p.mean_excess(0, w as f64);
            assert!(v <= prev, "not decreasing at {w}");
            prev = v;
        }
    }

    #[test]
    fn prediction_decays_with_window() {
        let mut p = RenewalPredictor::default();
        p.fit(&periodic_trace(), 14 * SECS_PER_DAY);
        let t = 15 * SECS_PER_DAY + 10 * 3600;
        let short = p.predict(0, t, 600);
        let long = p.predict(0, t, 6 * 3600);
        assert!(short > long + 0.3, "short {short} long {long}");
        assert!(short > 0.7, "short windows mostly survive: {short}");
        // Regular weekday intervals are ~3.5 h; only the rare
        // weekend-adjacent long intervals can fit a 6 h window.
        assert!(long < 0.3, "long {long}");
    }

    #[test]
    fn untrained_returns_uncertainty() {
        let p = RenewalPredictor::default();
        assert_eq!(p.predict(0, 0, 3600), 0.5);
    }

    #[test]
    fn weekday_weekend_distributions_are_separate() {
        // Failures only on weekdays: weekend windows should look great.
        let mut p = RenewalPredictor::default();
        p.fit(&periodic_trace(), 21 * SECS_PER_DAY);
        let weekday_t = 22 * SECS_PER_DAY + 10 * 3600; // Tuesday
        let weekend_t = 26 * SECS_PER_DAY + 10 * 3600; // Saturday
        let wd = p.predict(0, weekday_t, 2 * 3600);
        let we = p.predict(0, weekend_t, 2 * 3600);
        assert!(we > wd, "weekend {we} weekday {wd}");
    }

    #[test]
    fn probabilities_are_valid_on_real_traces() {
        use fgcs_testbed::runner::{run_testbed, TestbedConfig};
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.days = 14;
        let trace = run_testbed(&cfg);
        let mut p = RenewalPredictor::default();
        p.fit(&trace, 10 * SECS_PER_DAY);
        for t in (10 * SECS_PER_DAY..13 * SECS_PER_DAY).step_by(7200) {
            for w in [600u64, 3600, 6 * 3600] {
                let prob = p.predict(0, t, w);
                assert!((0.0..=1.0).contains(&prob), "prob {prob}");
            }
        }
    }
}
