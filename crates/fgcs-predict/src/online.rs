//! Online (streaming) availability prediction for the service.
//!
//! The batch predictors in [`crate::predictor`] train on a complete
//! [`fgcs_testbed::trace::Trace`]. A server ingesting live sample
//! streams has no such artifact — events arrive one at a time and
//! queries may come at any moment. [`OnlineAvailabilityModel`] keeps
//! the sufficient statistics of the placement-grade
//! [`crate::predictor::MachineHourlyPredictor`] (per-machine event
//! counts, pooled per-(day-type, hour) counts, observed span)
//! incrementally, so its answers match a freshly fitted batch
//! predictor — the equivalence test below pins this, bit for bit.

use std::collections::BTreeMap;

use fgcs_testbed::calendar::{day_index, day_type, DayType, SECS_PER_DAY};

/// Streaming sufficient statistics for the factorized
/// `λ(m, d, h) = rate_m · shape(d, h)` model.
///
/// Matches [`crate::predictor::MachineHourlyPredictor`] fitted with
/// `train_end` equal to this model's observed horizon, provided the
/// same machines are registered and the horizon does not exceed the
/// trace's nominal span (the batch fit clamps its day count to
/// `meta.days`; a live stream has no such bound).
#[derive(Debug, Clone, Default)]
pub struct OnlineAvailabilityModel {
    start_weekday: u8,
    /// Unavailability events per machine. Registration with zero events
    /// matters: the machine count normalizes the pooled shape.
    events: BTreeMap<u32, u64>,
    hour_counts: [[f64; 24]; 2],
    /// Per-machine `(day-type, hour)` event counts, for
    /// [`OnlineAvailabilityModel::predict_machine`]. Only machines with
    /// at least one event carry an entry.
    machine_hours: BTreeMap<u32, [[f64; 24]; 2]>,
    total_events: u64,
    horizon_t: u64,
}

/// Pseudo-event count weighting the pooled shape in
/// [`OnlineAvailabilityModel::predict_machine`]: a machine's own hourly
/// profile earns weight `n / (n + BLEND_PSEUDO_EVENTS)` after `n`
/// events, so sparse machines lean on the fleet-wide shape and
/// well-observed ones speak for themselves.
const BLEND_PSEUDO_EVENTS: f64 = 12.0;

impl OnlineAvailabilityModel {
    /// A fresh model. `start_weekday` anchors the weekday/weekend
    /// calendar, as in `TraceMeta::start_weekday`.
    pub fn new(start_weekday: u8) -> Self {
        OnlineAvailabilityModel {
            start_weekday,
            ..Default::default()
        }
    }

    /// Registers a machine (idempotent). Machines with zero events
    /// still count toward the pooled-shape normalization, exactly as
    /// `meta.machines` does in the batch fit.
    pub fn ensure_machine(&mut self, machine: u32) {
        self.events.entry(machine).or_insert(0);
    }

    /// Advances the observed horizon — the streaming analogue of
    /// `train_end`. Call with every ingested sample timestamp.
    pub fn observe_time(&mut self, t: u64) {
        self.horizon_t = self.horizon_t.max(t);
    }

    /// Records the *start* of an unavailability occurrence.
    pub fn record_event(&mut self, machine: u32, start: u64) {
        *self.events.entry(machine).or_insert(0) += 1;
        let idx = (day_type(day_index(start), self.start_weekday) == DayType::Weekend) as usize;
        let hour = ((start % SECS_PER_DAY) / 3600) as usize;
        self.hour_counts[idx][hour] += 1.0;
        self.machine_hours.entry(machine).or_insert([[0.0; 24]; 2])[idx][hour] += 1.0;
        self.total_events += 1;
    }

    /// Machines registered so far.
    pub fn machines(&self) -> usize {
        self.events.len()
    }

    /// Observed horizon (max sample timestamp seen).
    pub fn horizon(&self) -> u64 {
        self.horizon_t
    }

    /// Total events recorded.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Probability that `machine` stays available throughout
    /// `[t, t + window)` under the factorized Poisson model, using
    /// everything streamed so far. An unknown machine is treated as
    /// event-free (probability 1), like an out-of-range machine id in
    /// the batch predictor.
    pub fn predict(&self, machine: u32, t: u64, window: u64) -> f64 {
        let span = self.horizon_t.max(1) as f64;
        let rate = match self.events.get(&machine) {
            Some(&n) => n as f64 / span,
            None => 0.0,
        };

        // Same-type day tally over the observed span, mirroring the
        // batch fit's `train_days` loop.
        let mut hours_of_type = [0.0f64; 2];
        for day in 0..self.horizon_t / SECS_PER_DAY {
            let idx = (day_type(day, self.start_weekday) == DayType::Weekend) as usize;
            hours_of_type[idx] += 1.0;
        }
        let machines_f = self.events.len().max(1) as f64;
        let overall_rate = self.total_events as f64 / (span * machines_f);

        let shape = |idx: usize, hour: usize| -> f64 {
            let machine_secs = hours_of_type[idx] * 3600.0 * machines_f;
            let hour_rate = if machine_secs > 0.0 {
                self.hour_counts[idx][hour] / machine_secs
            } else {
                0.0
            };
            if overall_rate > 0.0 {
                hour_rate / overall_rate
            } else {
                1.0
            }
        };

        let mut expected = 0.0;
        let mut cursor = t;
        let end = t + window;
        while cursor < end {
            let idx =
                (day_type(day_index(cursor), self.start_weekday) == DayType::Weekend) as usize;
            let hour = ((cursor % SECS_PER_DAY) / 3600) as usize;
            let hour_end = cursor - (cursor % 3600) + 3600;
            let slice = hour_end.min(end) - cursor;
            expected += rate * shape(idx, hour) * slice as f64;
            cursor = hour_end;
        }
        (-expected).exp()
    }

    /// Like [`OnlineAvailabilityModel::predict`], but resolved *per
    /// machine*: the event-rate integral blends this machine's own
    /// `(day-type, hour)` profile with the pooled factorized model,
    /// weighted `n / (n + BLEND_PSEUDO_EVENTS)` by the machine's event
    /// count. The factorized model can only rank machines by overall
    /// rate — two fleets busy at *opposite hours* look identical to it
    /// — while this one learns each machine's schedule, which is what
    /// placement-grade predictions need (§7: "different patterns of
    /// host workloads").
    pub fn predict_machine(&self, machine: u32, t: u64, window: u64) -> f64 {
        let n = match self.events.get(&machine) {
            Some(&n) => n as f64,
            None => return 1.0,
        };
        let span = self.horizon_t.max(1) as f64;
        let rate = n / span;
        let own = self.machine_hours.get(&machine);
        let weight = n / (n + BLEND_PSEUDO_EVENTS);

        let mut hours_of_type = [0.0f64; 2];
        for day in 0..self.horizon_t / SECS_PER_DAY {
            let idx = (day_type(day, self.start_weekday) == DayType::Weekend) as usize;
            hours_of_type[idx] += 1.0;
        }
        let machines_f = self.events.len().max(1) as f64;
        let overall_rate = self.total_events as f64 / (span * machines_f);

        let pooled_shape = |idx: usize, hour: usize| -> f64 {
            let machine_secs = hours_of_type[idx] * 3600.0 * machines_f;
            let hour_rate = if machine_secs > 0.0 {
                self.hour_counts[idx][hour] / machine_secs
            } else {
                0.0
            };
            if overall_rate > 0.0 {
                hour_rate / overall_rate
            } else {
                1.0
            }
        };
        let own_rate = |idx: usize, hour: usize| -> f64 {
            let secs = hours_of_type[idx] * 3600.0;
            match own {
                Some(counts) if secs > 0.0 => counts[idx][hour] / secs,
                _ => 0.0,
            }
        };

        let mut expected = 0.0;
        let mut cursor = t;
        let end = t + window;
        while cursor < end {
            let idx =
                (day_type(day_index(cursor), self.start_weekday) == DayType::Weekend) as usize;
            let hour = ((cursor % SECS_PER_DAY) / 3600) as usize;
            let hour_end = cursor - (cursor % 3600) + 3600;
            let slice = hour_end.min(end) - cursor;
            let lambda =
                weight * own_rate(idx, hour) + (1.0 - weight) * rate * pooled_shape(idx, hour);
            expected += lambda * slice as f64;
            cursor = hour_end;
        }
        (-expected).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{AvailabilityPredictor, MachineHourlyPredictor};
    use fgcs_testbed::{run_testbed, TestbedConfig};

    #[test]
    fn matches_batch_machine_hourly_predictor_bit_for_bit() {
        let cfg = TestbedConfig::tiny();
        let trace = run_testbed(&cfg);
        let train_end = 3 * SECS_PER_DAY; // inside the 4-day span

        let mut batch = MachineHourlyPredictor::default();
        batch.fit(&trace, train_end);

        let mut online = OnlineAvailabilityModel::new(trace.meta.start_weekday);
        for m in 0..trace.meta.machines {
            online.ensure_machine(m);
        }
        online.observe_time(train_end);
        for r in trace.records.iter().filter(|r| r.start < train_end) {
            online.record_event(r.machine, r.start);
        }

        for m in 0..trace.meta.machines {
            for t in [train_end, train_end + 7 * 3600, train_end + 20 * 3600] {
                for w in [600u64, 1800, 3600, 8 * 3600] {
                    let a = batch.predict(m, t, w);
                    let b = online.predict(m, t, w);
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "machine {m} t {t} w {w}: batch {a} online {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn rebuild_from_records_matches_streamed_model_bit_for_bit() {
        // The service snapshot restore path does not persist this model;
        // it replays (machine, start) pairs from the restored records and
        // re-advances the horizon. That rebuild must be indistinguishable
        // from the model that streamed the events live.
        let cfg = TestbedConfig::tiny();
        let trace = run_testbed(&cfg);
        let horizon = trace.records.iter().map(|r| r.start).max().unwrap() + 900;

        let mut live = OnlineAvailabilityModel::new(trace.meta.start_weekday);
        for m in 0..trace.meta.machines {
            live.ensure_machine(m);
        }
        // Interleave time advances and events, as live ingest does.
        for r in &trace.records {
            live.observe_time(r.start);
            live.record_event(r.machine, r.start);
        }
        live.observe_time(horizon);

        let mut rebuilt = OnlineAvailabilityModel::new(trace.meta.start_weekday);
        for m in 0..trace.meta.machines {
            rebuilt.ensure_machine(m);
        }
        for r in &trace.records {
            rebuilt.record_event(r.machine, r.start);
        }
        rebuilt.observe_time(horizon);

        assert_eq!(live.total_events(), rebuilt.total_events());
        assert_eq!(live.horizon(), rebuilt.horizon());
        assert_eq!(live.machines(), rebuilt.machines());
        for m in 0..trace.meta.machines {
            for w in [600u64, 3600, 8 * 3600] {
                let a = live.predict(m, horizon, w);
                let b = rebuilt.predict(m, horizon, w);
                assert_eq!(a.to_bits(), b.to_bits(), "machine {m} w {w}");
            }
        }
    }

    #[test]
    fn unknown_machine_predicts_certainty() {
        let online = OnlineAvailabilityModel::new(0);
        assert_eq!(online.predict(99, 0, 3600), 1.0);
    }

    #[test]
    fn per_machine_prediction_separates_opposite_shifts() {
        // Two machines, identical event totals, opposite schedules: the
        // pooled factorized model cannot tell them apart; the
        // per-machine blend must.
        let mut online = OnlineAvailabilityModel::new(0);
        online.ensure_machine(0);
        online.ensure_machine(1);
        online.observe_time(14 * SECS_PER_DAY);
        for day in 0..14u64 {
            online.record_event(0, day * SECS_PER_DAY + 10 * 3600); // day shift
            online.record_event(1, day * SECS_PER_DAY + 22 * 3600); // night shift
        }
        let at = 14 * SECS_PER_DAY + 9 * 3600 + 1800; // 9:30 AM, weekday
        let window = 2 * 3600;
        let pooled0 = online.predict(0, at, window);
        let pooled1 = online.predict(1, at, window);
        assert_eq!(
            pooled0.to_bits(),
            pooled1.to_bits(),
            "the factorized model is blind to per-machine schedules"
        );
        let m0 = online.predict_machine(0, at, window);
        let m1 = online.predict_machine(1, at, window);
        assert!(
            m0 + 0.1 < m1,
            "day-shift machine must look risky at 9:30 AM: {m0} vs {m1}"
        );
        // And the ranking flips at night.
        let at_night = 14 * SECS_PER_DAY + 21 * 3600 + 1800;
        let n0 = online.predict_machine(0, at_night, window);
        let n1 = online.predict_machine(1, at_night, window);
        assert!(
            n1 + 0.1 < n0,
            "night-shift machine risky at 9:30 PM: {n1} vs {n0}"
        );
    }

    #[test]
    fn sparse_machines_shrink_to_the_pooled_model() {
        let mut online = OnlineAvailabilityModel::new(0);
        online.ensure_machine(0);
        online.ensure_machine(1);
        online.observe_time(14 * SECS_PER_DAY);
        for day in 0..14u64 {
            online.record_event(0, day * SECS_PER_DAY + 10 * 3600);
        }
        // One event at hour 10: the lone-event machine's blend should
        // sit close to the pooled prediction, not swing to its own
        // (noisy) profile.
        online.record_event(1, 10 * 3600);
        let at = 14 * SECS_PER_DAY + 10 * 3600;
        let pooled = online.predict(1, at, 3600);
        let blended = online.predict_machine(1, at, 3600);
        assert!(
            (blended - pooled).abs() < 0.05,
            "1 event of evidence must barely move the blend: pooled {pooled} blended {blended}"
        );
        // A machine with no events at all predicts certainty, like the
        // pooled model does for an unknown machine.
        assert_eq!(online.predict_machine(99, at, 3600), 1.0);
    }

    #[test]
    fn events_lower_the_probability() {
        let mut online = OnlineAvailabilityModel::new(0);
        online.ensure_machine(0);
        online.ensure_machine(1);
        online.observe_time(7 * SECS_PER_DAY);
        for day in 0..5u64 {
            online.record_event(0, day * SECS_PER_DAY + 10 * 3600);
        }
        let busy = online.predict(0, 7 * SECS_PER_DAY + 9 * 3600, 2 * 3600);
        let quiet = online.predict(1, 7 * SECS_PER_DAY + 9 * 3600, 2 * 3600);
        assert!(busy < quiet, "busy {busy} quiet {quiet}");
        assert!((0.0..=1.0).contains(&busy));
        assert_eq!(quiet, 1.0);
    }
}
