//! The [`Strategy`] trait and the built-in strategies: integer and float
//! ranges, tuples, constants, closures, and `prop_map`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of test values. Unlike upstream there is no value tree or
/// shrinking: a strategy is just a deterministic function of the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, as upstream's `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy backed by a plain closure; see [`fn_strategy`].
pub struct FnStrategy<T, F> {
    f: F,
    _marker: PhantomData<fn() -> T>,
}

/// Wraps `f` as a strategy. This is what `prop_compose!` expands to.
pub fn fn_strategy<T, F>(f: F) -> FnStrategy<T, F>
where
    F: Fn(&mut TestRng) -> T,
{
    FnStrategy {
        f,
        _marker: PhantomData,
    }
}

impl<T, F> Strategy for FnStrategy<T, F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // 1/64 of draws pin an endpoint so `..=` bounds are hit.
                match rng.next_u64() % 64 {
                    0 => lo,
                    1 => hi,
                    _ => lo + rng.next_f64() as $t * (hi - lo),
                }
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-20i8..=19).generate(&mut rng);
            assert!((-20..=19).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&v));
            let w = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::new(1);
        let s = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 19);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(0u64..1000, 1..50);
        let a: Vec<u64> = s.generate(&mut TestRng::new(9));
        let b: Vec<u64> = s.generate(&mut TestRng::new(9));
        assert_eq!(a, b);
    }
}
