//! Offline stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no access to a crate
//! registry, so this crate provides — under the same package name and
//! module paths — exactly the subset of proptest's API the workspace's
//! property tests use: the [`proptest!`]/[`prop_compose!`] macros, range
//! and tuple strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::bool::weighted`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   deterministic per-test seed instead of a minimized input. Every
//!   value is derived from `(test name, case index)`, so failures
//!   reproduce exactly across runs and machines.
//! * **Fixed case counts.** `ProptestConfig::with_cases(n)` runs exactly
//!   `n` cases; there is no persistence/regression file handling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// `prop::collection` — collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from `size` and elements
    /// from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose length lies in `size` (half-open) and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Some` three times out of four.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy to produce `Option`s (mostly `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `prop::bool` — strategies for `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `true` with a fixed probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "probability in [0,1]");
        Weighted { p }
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.p
        }
    }
}

/// Types with a canonical strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = bool::Weighted;
    fn arbitrary() -> bool::Weighted {
        bool::weighted(0.5)
    }
}

macro_rules! arbitrary_full_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::FnStrategy<$t, fn(&mut test_runner::TestRng) -> $t>;
            fn arbitrary() -> Self::Strategy {
                strategy::fn_strategy(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}
arbitrary_full_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// The canonical strategy for `T`, as in `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, Arbitrary,
    };

    /// Namespaced strategy modules, as upstream's `prop::` re-export.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Drives one `proptest!`-generated test: `cases` deterministic cases
/// seeded from the test name. Panics (failing the surrounding `#[test]`)
/// on the first case whose body returns an error.
pub fn run_proptest<F>(cfg: &test_runner::Config, name: &str, mut body: F)
where
    F: FnMut(&mut test_runner::TestRng) -> test_runner::TestCaseResult,
{
    for case in 0..cfg.cases {
        let seed = test_runner::case_seed(name, case);
        let mut rng = test_runner::TestRng::new(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest '{name}' failed at case {case}/{} (seed {seed:#x}): {}",
                cfg.cases, e.message
            );
        }
    }
}

/// Defines property tests. Supports the upstream form
/// `proptest! { #![proptest_config(...)] #[test] fn name(x in strat, ..) { body } .. }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::run_proptest(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __out: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                __out
            });
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Defines a named strategy function from component strategies, as
/// upstream's `prop_compose!`. Both the zero-argument and parameterized
/// forms are supported.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
     ($($bind:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::fn_strategy(move |__rng: &mut $crate::test_runner::TestRng| -> $ret {
                $(let $bind = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        $crate::prop_assert!(__l == __r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = ($left, $right);
        $crate::prop_assert!(__l == __r, "{}: {:?} != {:?}", format!($($fmt)*), __l, __r);
    }};
}

/// Asserts two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        $crate::prop_assert!(__l != __r, "assertion failed: both sides equal {:?}", __l);
    }};
}
