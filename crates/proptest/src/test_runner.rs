//! Test-runner plumbing: configuration, the deterministic generator, and
//! the case-failure error type.

/// Per-`proptest!` configuration. Only `cases` is supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Honors PROPTEST_CASES like upstream; defaults to 256.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// A failed property-test case: the message `prop_assert!` produced.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 generator used for value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The seed for `(test name, case index)`: FNV-1a over the name mixed
/// with the case index, so each case is independent yet reproducible.
pub fn case_seed(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)
}
