//! Byte-level corruption of serialized trace files.
//!
//! Real trace archives end up with truncated lines (a monitor killed
//! mid-write), garbled bytes (disk/transfer errors) and junk lines. This
//! module injects those, deterministically, into any line-oriented
//! serialization (the testbed's JSONL and CSV formats).
//!
//! Every corruption kind used here is *detectable*: a strict prefix of a
//! minified JSON object or of a fixed-arity CSV row, a garbage line, or
//! a `0x01` byte smashed into a structured field all fail to parse. That
//! is deliberate — it makes "lines the injector corrupted" and "lines
//! the recovering loader counted as corrupt" the same number, which the
//! fault-matrix experiment and CI assert exactly. (A digit flipped to
//! another digit would parse to a silently wrong record; defending
//! against *that* requires checksums, which the on-disk format — frozen
//! for byte-compatibility — does not carry. See DESIGN.md §8.)

use fgcs_stats::rng::Rng;

use crate::FaultConfig;

/// Domain-separation salt for the corruption RNG.
const CORRUPT_SALT: u64 = 0x6661_756c_7443_7270; // "faultCrp"

/// What [`corrupt_text`] did to a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorruptionReport {
    /// Number of lines corrupted (each at most once).
    pub lines_corrupted: u64,
    /// Zero-based indices of the corrupted lines, ascending.
    pub corrupted_line_numbers: Vec<usize>,
}

/// Corrupts a line-oriented serialization with probability
/// `cfg.corrupt_rate` per line, deterministic in `(cfg.seed, stream)`.
///
/// The first line is never touched: both trace formats carry a required
/// header (JSONL meta / CSV column row) whose loss makes the whole file
/// unreadable rather than degradable, and the point of the recovering
/// loaders is per-record degradation. Each corrupted line suffers one of:
///
/// * truncation to a strict non-empty prefix,
/// * replacement with a garbage line,
/// * a `0x01` byte smashed over one of its bytes.
pub fn corrupt_text(text: &str, cfg: &FaultConfig, stream: u64) -> (String, CorruptionReport) {
    let mut rng = Rng::for_stream(cfg.seed ^ CORRUPT_SALT, stream);
    let mut report = CorruptionReport::default();
    if cfg.corrupt_rate <= 0.0 {
        return (text.to_string(), report);
    }
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.lines().enumerate() {
        let corrupt = i > 0 && !line.is_empty() && rng.chance(cfg.corrupt_rate);
        if !corrupt {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        report.lines_corrupted += 1;
        report.corrupted_line_numbers.push(i);
        match rng.below(3) {
            0 => {
                // Truncate: keep a strict, non-empty prefix. For
                // comma-separated lines the cut lands at or before the
                // last comma, so the arity check must fail — a cut
                // inside the final field would leave a shorter-but-valid
                // number, i.e. a silently wrong record. Respect UTF-8
                // boundaries (trace lines are ASCII, but be safe).
                let limit = line.rfind(',').unwrap_or(line.len().saturating_sub(1));
                let mut cut = if limit == 0 {
                    0
                } else {
                    rng.range_u64(1, limit as u64 + 1) as usize
                };
                while cut > 0 && !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                if cut == 0 {
                    out.push_str("####corrupt####");
                } else {
                    out.push_str(&line[..cut]);
                }
            }
            1 => {
                out.push_str("####corrupt####");
            }
            _ => {
                let pos = rng.below(line.len() as u64) as usize;
                let mut bytes = line.as_bytes().to_vec();
                // Smash whole UTF-8 sequences, not just one byte, so the
                // result stays a valid (if garbled) Rust string.
                let start = (0..=pos)
                    .rev()
                    .find(|&p| line.is_char_boundary(p))
                    .unwrap_or(0);
                let end = (pos + 1..=line.len())
                    .find(|&p| line.is_char_boundary(p))
                    .unwrap_or(line.len());
                bytes.splice(start..end, std::iter::once(0x01));
                out.push_str(&String::from_utf8(bytes).expect("char-boundary splice"));
            }
        }
        out.push('\n');
    }
    (out, report)
}

/// Domain-separation salt for the frame-corruption RNG.
const FRAME_SALT: u64 = 0x6672_616d_6543_7270; // "frameCrp"

/// Byte-level corruption of binary protocol frames, the wire analogue of
/// [`corrupt_text`]: with probability `rate` per frame, one payload byte
/// is XOR-ed with a nonzero mask.
///
/// Unlike the frozen on-disk trace formats, the wire format *does* carry
/// a per-frame CRC32 of its payload, so here even a single flipped bit
/// is detectable — the stronger guarantee the text corruptor cannot
/// give. The load generator counts frames it corrupted; the server
/// counts frames its decoder rejected; the corruption experiment asserts
/// the two numbers are equal.
#[derive(Debug)]
pub struct FrameCorruptor {
    rng: Rng,
    rate: f64,
    /// Frames corrupted so far.
    pub frames_corrupted: u64,
}

impl FrameCorruptor {
    /// A corruptor for one (seeded) stream, flipping a byte in each
    /// frame with probability `cfg.corrupt_rate`.
    pub fn new(cfg: &FaultConfig, stream: u64) -> Self {
        FrameCorruptor {
            rng: Rng::for_stream(cfg.seed ^ FRAME_SALT, stream),
            rate: cfg.corrupt_rate,
            frames_corrupted: 0,
        }
    }

    /// Possibly corrupts one encoded frame in place, XOR-ing a single
    /// byte at index `skip..` (callers pass the frame header length so
    /// only payload bytes are touched — a header flip would desync the
    /// whole stream instead of poisoning one frame). Returns whether the
    /// frame was corrupted. Frames with no payload pass through.
    pub fn corrupt(&mut self, frame: &mut [u8], skip: usize) -> bool {
        if frame.len() <= skip || !self.rng.chance(self.rate) {
            return false;
        }
        let idx = skip + self.rng.below((frame.len() - skip) as u64) as usize;
        frame[idx] ^= 0xa5;
        self.frames_corrupted += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_text() -> String {
        let mut t = String::from("header line\n");
        for i in 0..200 {
            t.push_str(&format!("{{\"machine\":{i},\"start\":{}}}\n", i * 100));
        }
        t
    }

    #[test]
    fn zero_rate_is_identity() {
        let text = sample_text();
        let (out, rep) = corrupt_text(&text, &FaultConfig::off(1), 0);
        assert_eq!(out, text);
        assert_eq!(rep.lines_corrupted, 0);
    }

    #[test]
    fn corruption_is_deterministic() {
        let mut cfg = FaultConfig::off(5);
        cfg.corrupt_rate = 0.2;
        let text = sample_text();
        let (a, ra) = corrupt_text(&text, &cfg, 3);
        let (b, rb) = corrupt_text(&text, &cfg, 3);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        let (c, _) = corrupt_text(&text, &cfg, 4);
        assert_ne!(a, c, "different streams corrupt differently");
    }

    #[test]
    fn header_is_never_corrupted_and_counts_match() {
        let mut cfg = FaultConfig::off(5);
        cfg.corrupt_rate = 0.5;
        let text = sample_text();
        let (out, rep) = corrupt_text(&text, &cfg, 0);
        assert!(rep.lines_corrupted > 50);
        assert_eq!(
            rep.lines_corrupted as usize,
            rep.corrupted_line_numbers.len()
        );
        assert!(rep.corrupted_line_numbers.iter().all(|&i| i > 0));
        let out_lines: Vec<&str> = out.lines().collect();
        let in_lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            out_lines.len(),
            in_lines.len(),
            "corruption never adds or removes lines"
        );
        assert_eq!(out_lines[0], in_lines[0]);
        // Exactly the reported lines differ, and none is left empty.
        for (i, (a, b)) in in_lines.iter().zip(&out_lines).enumerate() {
            let touched = rep.corrupted_line_numbers.contains(&i);
            assert_eq!(a != b, touched, "line {i}");
            assert!(!b.is_empty());
        }
    }

    #[test]
    fn frame_corruptor_flips_exactly_one_payload_byte() {
        let mut cfg = FaultConfig::off(9);
        cfg.corrupt_rate = 1.0;
        let mut c = FrameCorruptor::new(&cfg, 0);
        let skip = 12;
        for round in 0..50u8 {
            let original: Vec<u8> = (0..40).map(|i| i ^ round).collect();
            let mut frame = original.clone();
            assert!(c.corrupt(&mut frame, skip));
            let diffs: Vec<usize> = (0..frame.len())
                .filter(|&i| frame[i] != original[i])
                .collect();
            assert_eq!(diffs.len(), 1, "exactly one byte must change");
            assert!(diffs[0] >= skip, "header bytes must never be touched");
            assert_eq!(frame[diffs[0]] ^ original[diffs[0]], 0xa5);
        }
        assert_eq!(c.frames_corrupted, 50);
    }

    #[test]
    fn frame_corruptor_zero_rate_and_empty_payload_pass_through() {
        let mut c = FrameCorruptor::new(&FaultConfig::off(9), 0);
        let mut frame = vec![1u8; 20];
        assert!(!c.corrupt(&mut frame, 12), "zero rate never corrupts");
        let mut cfg = FaultConfig::off(9);
        cfg.corrupt_rate = 1.0;
        let mut c = FrameCorruptor::new(&cfg, 0);
        let mut header_only = vec![1u8; 12];
        assert!(
            !c.corrupt(&mut header_only, 12),
            "no payload, nothing to corrupt"
        );
        assert_eq!(c.frames_corrupted, 0);
    }

    #[test]
    fn frame_corruptor_is_deterministic_per_stream() {
        let mut cfg = FaultConfig::off(5);
        cfg.corrupt_rate = 0.5;
        let run = |stream: u64| {
            let mut c = FrameCorruptor::new(&cfg, stream);
            let mut outcomes = Vec::new();
            for i in 0..100u8 {
                let mut frame = vec![i; 32];
                c.corrupt(&mut frame, 12);
                outcomes.push(frame);
            }
            (outcomes, c.frames_corrupted)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different streams corrupt differently");
    }

    #[test]
    fn corrupted_jsonl_lines_never_parse() {
        // The contract the count cross-check rests on: every corruption
        // kind defeats a JSON object parse.
        let mut cfg = FaultConfig::off(77);
        cfg.corrupt_rate = 1.0;
        let text = sample_text();
        let (out, rep) = corrupt_text(&text, &cfg, 0);
        assert_eq!(rep.lines_corrupted, 200);
        for line in out.lines().skip(1) {
            let balanced = line.starts_with('{')
                && line.ends_with('}')
                && !line.contains('\u{1}')
                && !line.contains("####");
            assert!(!balanced, "corrupted line still looks parseable: {line:?}");
        }
    }
}
