//! Sample-stream and probe-level fault injection.

use std::cell::Cell;
use std::collections::VecDeque;

use fgcs_core::monitor::ResourceProbe;
use fgcs_stats::dist::{Exponential, Sample};
use fgcs_stats::rng::Rng;

use crate::{FaultConfig, InjectionStats};

/// Domain-separation constants so the stream, crash and probe RNGs of
/// the same `(seed, machine)` never overlap.
const STREAM_SALT: u64 = 0x6661_756c_7453_7472; // "faultStr"
const CRASH_SALT: u64 = 0x6661_756c_7443_7273; // "faultCrs"
const PROBE_SALT: u64 = 0x6661_756c_7450_7262; // "faultPrb"

/// Anything with a rewritable timestamp — the injector's only
/// requirement on a sample type. Implemented by the testbed's
/// `LoadSample`; implement it for any other observation record to make
/// that stream injectable too.
pub trait Timestamped {
    /// The sample's timestamp, in the stream's time unit.
    fn ts(&self) -> u64;
    /// Overwrites the timestamp (used for clock jumps/skew).
    fn set_ts(&mut self, t: u64);
}

/// A sample held back by a delay fault, due for delivery after
/// `after_slots` more underlying samples have been processed.
#[derive(Debug, Clone)]
struct Delayed<S> {
    sample: S,
    after_slots: u32,
}

/// Iterator adapter injecting the stream-level failure modes of a
/// [`FaultConfig`] into any [`Timestamped`] sample stream:
///
/// * **drops** — the sample never arrives;
/// * **duplicates** — the sample arrives twice;
/// * **delays** — the sample is held back a few slots and arrives out of
///   order (downstream must discard or reorder stale timestamps);
/// * **monitor restarts** — a contiguous run of samples is lost while
///   the monitor is down (and any cumulative counters it kept restart
///   from zero — see [`FaultyProbe`] for the probe-level counterpart);
/// * **clock jumps** — a persistent offset is added to every subsequent
///   timestamp, forward jumps opening artificial gaps and backward jumps
///   producing non-monotone time.
///
/// The injection is a pure function of `(cfg.seed, machine_id)` and the
/// input stream. With an all-zero config the adapter is the identity.
#[derive(Debug, Clone)]
pub struct FaultStream<I: Iterator> {
    inner: I,
    cfg: FaultConfig,
    rng: Rng,
    stats: InjectionStats,
    /// Output queue (duplicates and released delayed samples).
    out: VecDeque<I::Item>,
    /// Samples in flight on the delay path.
    pending: Vec<Delayed<I::Item>>,
    /// Samples still to swallow for the current monitor restart.
    outage_left: u32,
    /// Cumulative clock offset, seconds (signed).
    clock_offset: i64,
    /// Set when a restart was injected since the last query; lets a
    /// cooperating probe wrapper reset its counters in lockstep.
    restart_pending: bool,
    inner_done: bool,
}

impl<I> FaultStream<I>
where
    I: Iterator,
    I::Item: Timestamped + Clone,
{
    /// Wraps `inner` with the fault plan for `machine_id`.
    pub fn new(inner: I, cfg: &FaultConfig, machine_id: u64) -> Self {
        FaultStream {
            inner,
            cfg: cfg.clone(),
            rng: Rng::for_stream(cfg.seed ^ STREAM_SALT, machine_id),
            stats: InjectionStats::default(),
            out: VecDeque::new(),
            pending: Vec::new(),
            outage_left: 0,
            clock_offset: 0,
            restart_pending: false,
            inner_done: false,
        }
    }

    /// What has been injected so far (complete once the stream is
    /// exhausted).
    pub fn stats(&self) -> InjectionStats {
        self.stats
    }

    /// True if a monitor restart was injected since the last call;
    /// clears the flag. The supervisor uses this to reset per-machine
    /// monitor state (counter baselines) at the right sample boundary.
    pub fn take_restart(&mut self) -> bool {
        std::mem::take(&mut self.restart_pending)
    }

    /// Advances the delay queue by one underlying slot, moving samples
    /// whose delay expired to the output queue (in held-back order).
    fn tick_pending(&mut self) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].after_slots <= 1 {
                let d = self.pending.remove(i);
                self.out.push_back(d.sample);
            } else {
                self.pending[i].after_slots -= 1;
                i += 1;
            }
        }
    }

    fn apply_clock(&self, s: &mut I::Item) {
        if self.clock_offset != 0 {
            let t = s.ts() as i64 + self.clock_offset;
            s.set_ts(t.max(0) as u64);
        }
    }
}

impl<I> Iterator for FaultStream<I>
where
    I: Iterator,
    I::Item: Timestamped + Clone,
{
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        loop {
            if let Some(s) = self.out.pop_front() {
                return Some(s);
            }
            if self.inner_done {
                // Flush whatever is still in flight, preserving how long
                // each sample was held back.
                if self.pending.is_empty() {
                    return None;
                }
                self.pending.sort_by_key(|d| d.after_slots);
                for d in self.pending.drain(..) {
                    self.out.push_back(d.sample);
                }
                continue;
            }
            let Some(mut s) = self.inner.next() else {
                self.inner_done = true;
                continue;
            };
            self.tick_pending();

            // Monitor down: the sample is never observed.
            if self.outage_left > 0 {
                self.outage_left -= 1;
                self.stats.lost_in_restart += 1;
                continue;
            }
            if self.cfg.restart_rate > 0.0 && self.rng.chance(self.cfg.restart_rate) {
                self.stats.restarts += 1;
                self.restart_pending = true;
                self.outage_left = self.cfg.restart_outage_samples;
                if self.outage_left > 0 {
                    self.outage_left -= 1;
                    self.stats.lost_in_restart += 1;
                    continue;
                }
            }
            if self.cfg.clock_jump_rate > 0.0
                && self.cfg.clock_jump_max_secs > 0
                && self.rng.chance(self.cfg.clock_jump_rate)
            {
                self.stats.clock_jumps += 1;
                let m = self.cfg.clock_jump_max_secs as i64;
                let jump = self.rng.range_u64(0, 2 * m as u64 + 1) as i64 - m;
                self.clock_offset += jump;
            }
            self.apply_clock(&mut s);

            if self.cfg.drop_rate > 0.0 && self.rng.chance(self.cfg.drop_rate) {
                self.stats.dropped += 1;
                continue;
            }
            if self.cfg.delay_rate > 0.0
                && self.cfg.max_delay_slots > 0
                && self.rng.chance(self.cfg.delay_rate)
            {
                self.stats.delayed += 1;
                let slots = self.rng.range_u64(1, self.cfg.max_delay_slots as u64 + 1) as u32;
                self.pending.push(Delayed {
                    sample: s,
                    after_slots: slots,
                });
                continue;
            }
            if self.cfg.duplicate_rate > 0.0 && self.rng.chance(self.cfg.duplicate_rate) {
                self.stats.duplicated += 1;
                self.out.push_back(s.clone());
            }
            return Some(s);
        }
    }
}

/// The Poisson schedule of tracing-task crashes for one machine — the
/// mid-trace process deaths the testbed supervisor must recover from
/// with capped exponential backoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    /// Crash timestamps, seconds since trace start, strictly increasing.
    pub times: Vec<u64>,
}

impl CrashPlan {
    /// Generates machine `machine_id`'s crash schedule over `span_secs`,
    /// deterministic in `(cfg.seed, machine_id)`.
    pub fn generate(cfg: &FaultConfig, machine_id: u64, span_secs: u64) -> CrashPlan {
        let mut times = Vec::new();
        if cfg.crash_rate_per_day > 0.0 {
            let mut rng = Rng::for_stream(cfg.seed ^ CRASH_SALT, machine_id);
            let gap = Exponential::new(cfg.crash_rate_per_day / 86_400.0);
            let mut t = gap.sample(&mut rng) as u64;
            while t < span_secs {
                times.push(t);
                t += 1 + gap.sample(&mut rng) as u64;
            }
        }
        CrashPlan { times }
    }
}

/// Wraps a [`ResourceProbe`] and injects monitor restarts at the counter
/// level: with probability `restart_rate` per read, the cumulative CPU
/// counters restart from zero — exactly what a rebooted monitor daemon
/// (or `/proc/stat` after a host reboot) presents. A naive consumer that
/// diffs counters across the reset computes a negative busy span and
/// reports garbage load; the hardened [`fgcs_core::monitor::Monitor`]
/// detects the reset and re-baselines instead.
#[derive(Debug)]
pub struct FaultyProbe<P> {
    inner: P,
    restart_rate: f64,
    rng: std::cell::RefCell<Rng>,
    /// Counter values at the last injected reset; reads report the
    /// inner counters minus this base (i.e. "since monitor start").
    base: Cell<(u64, u64)>,
    resets: Cell<u64>,
}

impl<P: ResourceProbe> FaultyProbe<P> {
    /// Wraps `inner`, resetting counters with probability
    /// `cfg.restart_rate` per read, deterministic in
    /// `(cfg.seed, machine_id)`.
    pub fn new(inner: P, cfg: &FaultConfig, machine_id: u64) -> Self {
        FaultyProbe {
            inner,
            restart_rate: cfg.restart_rate,
            rng: std::cell::RefCell::new(Rng::for_stream(cfg.seed ^ PROBE_SALT, machine_id)),
            base: Cell::new((0, 0)),
            resets: Cell::new(0),
        }
    }

    /// Number of counter resets injected so far.
    pub fn resets(&self) -> u64 {
        self.resets.get()
    }

    /// The wrapped probe.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: ResourceProbe> ResourceProbe for FaultyProbe<P> {
    fn cpu_counters(&self) -> (u64, u64) {
        let (busy, total) = self.inner.cpu_counters();
        if self.restart_rate > 0.0 && self.rng.borrow_mut().chance(self.restart_rate) {
            self.base.set((busy, total));
            self.resets.set(self.resets.get() + 1);
        }
        let (b0, t0) = self.base.get();
        (busy.saturating_sub(b0), total.saturating_sub(t0))
    }

    fn free_mem_for_guest_mb(&self) -> u32 {
        self.inner.free_mem_for_guest_mb()
    }

    fn service_alive(&self) -> bool {
        self.inner.service_alive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct S(u64);

    impl Timestamped for S {
        fn ts(&self) -> u64 {
            self.0
        }
        fn set_ts(&mut self, t: u64) {
            self.0 = t;
        }
    }

    fn stream(n: u64) -> impl Iterator<Item = S> {
        (0..n).map(|i| S(i * 15))
    }

    #[test]
    fn zero_config_is_identity() {
        let cfg = FaultConfig::off(42);
        let mut fs = FaultStream::new(stream(1000), &cfg, 3);
        let out: Vec<S> = (&mut fs).collect();
        assert_eq!(out, stream(1000).collect::<Vec<_>>());
        assert_eq!(fs.stats(), InjectionStats::default());
    }

    #[test]
    fn injection_is_deterministic() {
        let cfg = FaultConfig::noisy(42);
        let a: Vec<S> = FaultStream::new(stream(5000), &cfg, 1).collect();
        let b: Vec<S> = FaultStream::new(stream(5000), &cfg, 1).collect();
        assert_eq!(a, b);
        let c: Vec<S> = FaultStream::new(stream(5000), &cfg, 2).collect();
        assert_ne!(a, c, "machines get independent fault streams");
    }

    #[test]
    fn drops_are_counted_exactly() {
        let mut cfg = FaultConfig::off(7);
        cfg.drop_rate = 0.2;
        let mut fs = FaultStream::new(stream(10_000), &cfg, 0);
        let out: Vec<S> = (&mut fs).collect();
        let st = fs.stats();
        assert_eq!(out.len() as u64 + st.dropped, 10_000);
        assert!(st.dropped > 1000, "dropped {}", st.dropped);
    }

    #[test]
    fn duplicates_add_samples() {
        let mut cfg = FaultConfig::off(7);
        cfg.duplicate_rate = 0.1;
        let mut fs = FaultStream::new(stream(10_000), &cfg, 0);
        let out: Vec<S> = (&mut fs).collect();
        let st = fs.stats();
        assert_eq!(out.len() as u64, 10_000 + st.duplicated);
        assert!(st.duplicated > 500);
    }

    #[test]
    fn delays_reorder_but_lose_nothing() {
        let mut cfg = FaultConfig::off(7);
        cfg.delay_rate = 0.1;
        cfg.max_delay_slots = 5;
        let mut fs = FaultStream::new(stream(10_000), &cfg, 0);
        let out: Vec<S> = (&mut fs).collect();
        let st = fs.stats();
        assert_eq!(out.len(), 10_000, "delays must not lose samples");
        assert!(st.delayed > 500);
        let mut sorted: Vec<S> = out.clone();
        sorted.sort_by_key(|s| s.0);
        assert_eq!(sorted, stream(10_000).collect::<Vec<_>>());
        assert_ne!(out, sorted, "some samples must arrive out of order");
    }

    #[test]
    fn restarts_swallow_contiguous_runs() {
        let mut cfg = FaultConfig::off(7);
        cfg.restart_rate = 0.01;
        cfg.restart_outage_samples = 4;
        let mut fs = FaultStream::new(stream(10_000), &cfg, 0);
        let out: Vec<S> = (&mut fs).collect();
        let st = fs.stats();
        assert!(st.restarts > 20);
        assert_eq!(out.len() as u64 + st.lost_in_restart, 10_000);
        // Outages are at most the configured length per restart.
        assert!(st.lost_in_restart <= st.restarts * 4);
    }

    #[test]
    fn clock_jumps_skew_persistently() {
        let mut cfg = FaultConfig::off(9);
        cfg.clock_jump_rate = 0.001;
        cfg.clock_jump_max_secs = 600;
        let mut fs = FaultStream::new(stream(20_000), &cfg, 0);
        let out: Vec<S> = (&mut fs).collect();
        let st = fs.stats();
        assert!(st.clock_jumps > 5);
        assert_eq!(out.len(), 20_000);
        // After the last jump the offset persists: the tail differs from
        // the clean timestamps by a constant.
        let clean: Vec<S> = stream(20_000).collect();
        let d_last = out.last().unwrap().0 as i64 - clean.last().unwrap().0 as i64;
        let d_prev = out[out.len() - 2].0 as i64 - clean[clean.len() - 2].0 as i64;
        assert_eq!(d_last, d_prev, "skew must persist between jumps");
    }

    #[test]
    fn crash_plan_is_deterministic_and_sorted() {
        let mut cfg = FaultConfig::off(3);
        cfg.crash_rate_per_day = 2.0;
        let span = 30 * 86_400;
        let a = CrashPlan::generate(&cfg, 5, span);
        let b = CrashPlan::generate(&cfg, 5, span);
        assert_eq!(a, b);
        assert!(!a.times.is_empty());
        for w in a.times.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(a.times.iter().all(|&t| t < span));
        let off = CrashPlan::generate(&FaultConfig::off(3), 5, span);
        assert!(off.times.is_empty());
    }

    #[test]
    fn faulty_probe_resets_counters() {
        struct P;
        impl ResourceProbe for P {
            fn cpu_counters(&self) -> (u64, u64) {
                (500, 1000)
            }
            fn free_mem_for_guest_mb(&self) -> u32 {
                512
            }
            fn service_alive(&self) -> bool {
                true
            }
        }
        let mut cfg = FaultConfig::off(11);
        cfg.restart_rate = 1.0; // reset on every read
        let probe = FaultyProbe::new(P, &cfg, 0);
        let (b, t) = probe.cpu_counters();
        assert_eq!((b, t), (0, 0), "fresh reset reports zeroed counters");
        assert_eq!(probe.resets(), 1);
        assert_eq!(probe.free_mem_for_guest_mb(), 512);
        assert!(probe.service_alive());
    }
}
