//! Deterministic fault injection for the FGCS measurement stack.
//!
//! The paper's three-month Purdue deployment (§5) ran on real machines:
//! monitors crashed and restarted, samples were lost or delivered late,
//! cumulative CPU counters reset to zero mid-trace, clocks jumped, and
//! log files ended up with truncated or garbled lines. The reproduction's
//! monitor → detector → trace → analysis pipeline, by contrast, was built
//! on a perfect observation stream — so nothing downstream had ever been
//! exercised against the failure modes the original testbed actually saw.
//!
//! This crate injects exactly those failure modes, deterministically from
//! a seed, so the hardened consumers can be tested and the §5 results can
//! be re-derived under increasing measurement noise:
//!
//! * [`FaultConfig`] — one knob per failure mode, all zero by default
//!   (the identity injection);
//! * [`injector::FaultStream`] — wraps any time-stamped sample stream and
//!   applies drops, duplicates, delayed (out-of-order) delivery, monitor
//!   restarts (a contiguous outage of lost samples) and persistent clock
//!   jumps;
//! * [`injector::CrashPlan`] — Poisson schedule of tracing-task crashes
//!   for the testbed supervisor to recover from;
//! * [`injector::FaultyProbe`] — wraps a [`fgcs_core::monitor::ResourceProbe`]
//!   and resets its cumulative CPU counters to zero at monitor restarts,
//!   the failure the monitor must detect instead of emitting garbage;
//! * [`corrupt`] — byte-level corruption of serialized JSONL/CSV traces
//!   (flipped bytes, truncated lines, deleted lines, inserted garbage).
//!
//! Everything is a pure function of `(FaultConfig::seed, machine_id)`:
//! two runs with the same configuration inject byte-identical faults, so
//! experiments are reproducible and failures shrink to a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod injector;

pub use corrupt::{corrupt_text, CorruptionReport, FrameCorruptor};
pub use injector::{CrashPlan, FaultStream, FaultyProbe, Timestamped};

/// Fault rates for one injection run. All rates are probabilities per
/// underlying sample (or per line, for corruption) in `[0, 1]`; the
/// default is all-zero, which injects nothing and reproduces the clean
/// pipeline bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Master seed; machine `i` derives its own independent stream.
    pub seed: u64,
    /// Probability a sample is silently lost.
    pub drop_rate: f64,
    /// Probability a sample is delivered twice.
    pub duplicate_rate: f64,
    /// Probability a sample is delayed and arrives out of order.
    pub delay_rate: f64,
    /// Maximum delay, in delivered-sample slots (a delayed sample is
    /// re-inserted after 1..=this many later samples).
    pub max_delay_slots: u32,
    /// Probability, per sample, that the monitor restarts: the next
    /// [`FaultConfig::restart_outage_samples`] samples are lost and any
    /// cumulative counters the monitor kept reset to zero.
    pub restart_rate: f64,
    /// How many consecutive samples a monitor restart swallows.
    pub restart_outage_samples: u32,
    /// Probability, per sample, that the machine clock jumps. The jump
    /// is persistent (skew): every later timestamp keeps the offset.
    pub clock_jump_rate: f64,
    /// Maximum magnitude of one clock jump, seconds (drawn uniformly in
    /// `[-max, +max]`).
    pub clock_jump_max_secs: u64,
    /// Tracing-task crashes per machine-day (Poisson), handled by the
    /// testbed supervisor with capped exponential backoff.
    pub crash_rate_per_day: f64,
    /// Probability a serialized trace line is corrupted on disk.
    pub corrupt_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::off(0)
    }
}

impl FaultConfig {
    /// The identity injection: nothing is dropped, delayed, reset,
    /// jumped, crashed or corrupted.
    pub fn off(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            max_delay_slots: 4,
            restart_rate: 0.0,
            restart_outage_samples: 8,
            clock_jump_rate: 0.0,
            clock_jump_max_secs: 120,
            crash_rate_per_day: 0.0,
            corrupt_rate: 0.0,
        }
    }

    /// A representative noisy monitoring fleet: roughly one lost sample
    /// in 200, occasional duplicates and late deliveries, a monitor
    /// restart every few hours, a clock jump a day, a tracer crash every
    /// couple of weeks and one corrupt line in 500.
    pub fn noisy(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_rate: 0.005,
            duplicate_rate: 0.002,
            delay_rate: 0.002,
            max_delay_slots: 4,
            restart_rate: 0.0005,
            restart_outage_samples: 8,
            clock_jump_rate: 0.0002,
            clock_jump_max_secs: 120,
            crash_rate_per_day: 0.08,
            corrupt_rate: 0.002,
        }
    }

    /// Scales every rate by `factor` (clamped to `[0, 1]`), keeping the
    /// structural knobs (outage length, delay slots, jump magnitude)
    /// fixed. `scaled(0.0)` is the identity injection.
    pub fn scaled(&self, factor: f64) -> Self {
        let s = |r: f64| (r * factor).clamp(0.0, 1.0);
        FaultConfig {
            seed: self.seed,
            drop_rate: s(self.drop_rate),
            duplicate_rate: s(self.duplicate_rate),
            delay_rate: s(self.delay_rate),
            max_delay_slots: self.max_delay_slots,
            restart_rate: s(self.restart_rate),
            restart_outage_samples: self.restart_outage_samples,
            clock_jump_rate: s(self.clock_jump_rate),
            clock_jump_max_secs: self.clock_jump_max_secs,
            crash_rate_per_day: (self.crash_rate_per_day * factor).max(0.0),
            corrupt_rate: s(self.corrupt_rate),
        }
    }

    /// True when every rate is zero — the injection is the identity and
    /// the pipeline must produce bit-identical output.
    pub fn is_off(&self) -> bool {
        self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.delay_rate == 0.0
            && self.restart_rate == 0.0
            && self.clock_jump_rate == 0.0
            && self.crash_rate_per_day == 0.0
            && self.corrupt_rate == 0.0
    }
}

/// What one injection run actually did — the ground truth the hardened
/// consumers' quality reports are checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionStats {
    /// Samples silently dropped.
    pub dropped: u64,
    /// Samples delivered twice.
    pub duplicated: u64,
    /// Samples delivered late (out of order).
    pub delayed: u64,
    /// Monitor restarts injected.
    pub restarts: u64,
    /// Samples swallowed by monitor-restart outages.
    pub lost_in_restart: u64,
    /// Persistent clock jumps applied.
    pub clock_jumps: u64,
    /// Serialized lines corrupted.
    pub corrupted_lines: u64,
}

impl InjectionStats {
    /// Component-wise sum, for fleet-wide totals.
    pub fn merge(&mut self, other: &InjectionStats) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.restarts += other.restarts;
        self.lost_in_restart += other.lost_in_restart;
        self.clock_jumps += other.clock_jumps;
        self.corrupted_lines += other.corrupted_lines;
    }

    /// Total number of injected fault events of any kind.
    pub fn total_events(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.delayed
            + self.restarts
            + self.clock_jumps
            + self.corrupted_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_off() {
        assert!(FaultConfig::off(7).is_off());
        assert!(!FaultConfig::noisy(7).is_off());
        assert!(FaultConfig::noisy(7).scaled(0.0).is_off());
    }

    #[test]
    fn scaling_clamps() {
        let c = FaultConfig::noisy(1).scaled(1e6);
        assert!(c.drop_rate <= 1.0 && c.corrupt_rate <= 1.0);
        assert_eq!(c.max_delay_slots, FaultConfig::noisy(1).max_delay_slots);
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = InjectionStats {
            dropped: 1,
            duplicated: 2,
            ..Default::default()
        };
        let b = InjectionStats {
            dropped: 10,
            clock_jumps: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dropped, 11);
        assert_eq!(a.duplicated, 2);
        assert_eq!(a.clock_jumps, 3);
        assert_eq!(a.total_events(), 16);
    }
}
