//! Component microbenchmarks: the hot inner loops of the simulator,
//! detector, trace generator, statistics substrate and parallel harness.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fgcs_core::detector::{Detector, DetectorConfig};
use fgcs_core::monitor::{Monitor, Observation};
use fgcs_predict::predictor::EventIndex;
use fgcs_sim::machine::Machine;
use fgcs_sim::proc::ProcSpec;
use fgcs_sim::time::secs;
use fgcs_sim::workloads::synthetic;
use fgcs_stats::ecdf::Ecdf;
use fgcs_stats::rng::Rng;
use fgcs_testbed::lab::{LabConfig, MachinePlan};

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched");
    for procs in [2usize, 6, 12] {
        let mut m = Machine::default_linux();
        let mut rng = Rng::new(9);
        for s in synthetic::host_group(&mut rng, 0.6, procs - 1) {
            m.spawn(s);
        }
        m.spawn(ProcSpec::cpu_bound_guest("g", 19));
        g.throughput(Throughput::Elements(secs(1)));
        g.bench_function(format!("machine_second/{procs}procs"), |b| {
            b.iter(|| {
                m.run_ticks(secs(1));
                black_box(m.now())
            })
        });
    }
    g.finish();
}

fn bench_monitor_detector(c: &mut Criterion) {
    let mut g = c.benchmark_group("detect");
    let mut machine = Machine::default_linux();
    machine.spawn(synthetic::host_process("h", 0.4));
    machine.run_ticks(secs(10));
    let mut monitor = Monitor::new();
    g.bench_function("monitor_sample", |b| {
        b.iter(|| black_box(monitor.sample(&machine)))
    });

    let mut det = Detector::new(DetectorConfig::wallclock_default());
    let mut t = 0u64;
    g.throughput(Throughput::Elements(1));
    g.bench_function("detector_observe", |b| {
        b.iter(|| {
            t += 15;
            let load = if (t / 900).is_multiple_of(2) {
                0.1
            } else {
                0.9
            };
            black_box(det.observe(
                t,
                &Observation {
                    host_load: load,
                    free_mem_mb: 512,
                    alive: true,
                },
            ))
        })
    });
    g.finish();
}

fn bench_lab_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("lab");
    let cfg = LabConfig {
        days: 7,
        ..LabConfig::default()
    };
    g.bench_function("plan_generation_7days", |b| {
        b.iter(|| black_box(MachinePlan::generate(&cfg, 3)))
    });
    let plan = MachinePlan::generate(&cfg, 3);
    g.throughput(Throughput::Elements(cfg.span_secs() / cfg.sample_period));
    g.bench_function("rasterize_7days", |b| {
        b.iter(|| black_box(plan.samples().count()))
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    let mut rng = Rng::new(5);
    let samples: Vec<f64> = (0..10_000).map(|_| rng.f64() * 12.0).collect();
    g.bench_function("ecdf_build_10k", |b| {
        b.iter(|| black_box(Ecdf::new(&samples)))
    });
    let ecdf = Ecdf::new(&samples);
    g.bench_function("ecdf_eval", |b| b.iter(|| black_box(ecdf.eval(6.0))));
    g.bench_function("rng_f64_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.f64();
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_event_index(c: &mut Criterion) {
    let trace = fgcs_bench::bench_trace();
    let index = EventIndex::build(&trace, u64::MAX);
    c.bench_function("event_index/window_query", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 7919) % trace.meta.span_secs;
            black_box(index.window_available(2, t, 3600))
        })
    });
}

fn bench_par(c: &mut Criterion) {
    // The ablation the DESIGN calls out: parallel harness vs sequential
    // on a realistic sweep shape.
    let items: Vec<u64> = (0..64).collect();
    let work = |&i: &u64| -> f64 {
        let mut rng = Rng::for_stream(42, i);
        (0..20_000).map(|_| rng.f64()).sum()
    };
    let mut g = c.benchmark_group("par");
    g.bench_function("sequential_64", |b| {
        b.iter(|| black_box(items.iter().map(work).collect::<Vec<_>>()))
    });
    g.bench_function("par_map_64", |b| {
        b.iter(|| black_box(fgcs_par::par_map(&items, work)))
    });
    g.finish();
}

fn bench_policy_and_cluster(c: &mut Criterion) {
    use fgcs_core::cluster::{Cluster, LeastLoadedPlacement};
    use fgcs_core::controller::ControllerConfig;
    use fgcs_core::model::Thresholds;
    use fgcs_core::policy::{run_policy, TwoThresholdPolicy};
    use fgcs_sim::machine::MachineConfig;
    use fgcs_sim::proc::{Demand, MemSpec, ProcClass};

    let mut g = c.benchmark_group("policy");
    g.bench_function("two_threshold_managed_run", |b| {
        let hosts = [synthetic::host_process("h", 0.4)];
        b.iter(|| {
            let mut p = TwoThresholdPolicy::new(Thresholds::LINUX_TESTBED, secs(60));
            black_box(run_policy(
                &MachineConfig::default(),
                &hosts,
                &mut p,
                secs(2),
                2,
                20,
            ))
        })
    });
    g.bench_function("cluster_drain_4nodes", |b| {
        b.iter(|| {
            let machines = (0..4).map(|_| Machine::default_linux()).collect();
            let mut cluster = Cluster::new(
                machines,
                ControllerConfig::default(),
                Box::new(LeastLoadedPlacement),
            );
            for _ in 0..4 {
                cluster.submit(fgcs_sim::proc::ProcSpec::new(
                    "j",
                    ProcClass::Guest,
                    0,
                    Demand::CpuBound {
                        total_work: Some(secs(2)),
                    },
                    MemSpec::tiny(),
                ));
            }
            cluster.run_until_drained(secs(120));
            black_box(cluster.stats())
        })
    });
    g.finish();
}

fn bench_predictors_fit(c: &mut Criterion) {
    use fgcs_predict::predictor::{HistoryWindowPredictor, MachineHourlyPredictor};
    use fgcs_predict::renewal::RenewalPredictor;
    use fgcs_predict::AvailabilityPredictor;

    let trace = fgcs_bench::bench_trace_long();
    let train_end = trace.meta.span_secs / 2;
    let mut g = c.benchmark_group("predictor");
    g.bench_function("fit_history_window", |b| {
        b.iter(|| {
            let mut p = HistoryWindowPredictor::new();
            p.fit(&trace, train_end);
            black_box(p.predict(0, train_end + 3_600, 7_200))
        })
    });
    g.bench_function("fit_machine_hourly", |b| {
        b.iter(|| {
            let mut p = MachineHourlyPredictor::default();
            p.fit(&trace, train_end);
            black_box(p.predict(0, train_end + 3_600, 7_200))
        })
    });
    g.bench_function("fit_renewal", |b| {
        b.iter(|| {
            let mut p = RenewalPredictor::default();
            p.fit(&trace, train_end);
            black_box(p.predict(0, train_end + 3_600, 7_200))
        })
    });
    g.finish();
}

fn bench_loadtrace(c: &mut Criterion) {
    use fgcs_testbed::loadtrace::{derive_events, LoadSeries};
    let mut cfg = fgcs_testbed::lab::LabConfig::tiny();
    cfg.days = 2;
    let series = LoadSeries::collect(&cfg, 0);
    let det = fgcs_core::detector::DetectorConfig::wallclock_default();
    let mut g = c.benchmark_group("loadtrace");
    g.throughput(Throughput::Elements(series.samples.len() as u64));
    g.bench_function("derive_events_2days", |b| {
        b.iter(|| {
            black_box(derive_events(
                &series,
                det,
                cfg.phys_mem_mb,
                cfg.kernel_mem_mb,
            ))
        })
    });
    g.bench_function("csv_write_2days", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(1 << 20);
            series.write_csv(&mut buf).unwrap();
            black_box(buf.len())
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = components;
    config = config();
    targets = bench_scheduler, bench_monitor_detector, bench_lab_generator,
              bench_stats, bench_event_index, bench_par, bench_policy_and_cluster,
              bench_predictors_fit, bench_loadtrace
}
criterion_main!(components);
