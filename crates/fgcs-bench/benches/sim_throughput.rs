//! Simulator stepping throughput: the per-tick reference path
//! (`run_ticks_stepwise`) versus the event-horizon batched path
//! (`run_ticks`), in ticks per second, over three workload shapes:
//!
//! * `idle_heavy` — low-duty hosts that sleep most of every period; the
//!   machine idles between wakes, so the batched path retires whole
//!   sleep horizons at once;
//! * `contended` — CPU-bound host and guest processes competing at
//!   mixed priorities; batches span quantum runs;
//! * `thrashing` — memory overcommit; work ticks go through the slow
//!   path but iowait stalls batch.
//!
//! `scripts/ci.sh` runs this with `FGCS_BENCH_QUICK=1`; BENCH_sim.json
//! records a full run's before/after ticks per second.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fgcs_sim::machine::{Machine, MachineConfig};
use fgcs_sim::proc::{Demand, MemSpec, ProcClass, ProcSpec};
use fgcs_sim::time::secs;

/// Sub-percent-duty host mix — the paper's mostly-idle lab machine.
/// Long sleeps between short bursts, so most wall time is idle and the
/// batched path retires whole sleep horizons at once.
fn idle_heavy() -> Machine {
    let mut m = Machine::default_linux();
    m.spawn(ProcSpec::new(
        "h1",
        ProcClass::Host,
        0,
        Demand::DutyCycle { busy: 2, idle: 998 },
        MemSpec::tiny(),
    ));
    m.spawn(ProcSpec::new(
        "h2",
        ProcClass::Host,
        0,
        Demand::DutyCycle {
            busy: 5,
            idle: 1995,
        },
        MemSpec::tiny(),
    ));
    m.spawn(ProcSpec::new(
        "sys",
        ProcClass::System,
        0,
        Demand::DutyCycle {
            busy: 1,
            idle: 4999,
        },
        MemSpec::tiny(),
    ));
    m.spawn(ProcSpec::new(
        "g",
        ProcClass::Guest,
        19,
        Demand::DutyCycle {
            busy: 10,
            idle: 3990,
        },
        MemSpec::tiny(),
    ));
    m
}

/// CPU-bound contention: two hosts and two guests, mixed priorities —
/// always someone runnable, batches bounded by quanta and margins.
fn contended() -> Machine {
    let mut m = Machine::default_linux();
    m.spawn(ProcSpec::new(
        "h1",
        ProcClass::Host,
        0,
        Demand::CpuBound { total_work: None },
        MemSpec::tiny(),
    ));
    m.spawn(ProcSpec::new(
        "h2",
        ProcClass::Host,
        5,
        Demand::CpuBound { total_work: None },
        MemSpec::tiny(),
    ));
    m.spawn(ProcSpec::new(
        "g1",
        ProcClass::Guest,
        19,
        Demand::CpuBound { total_work: None },
        MemSpec::tiny(),
    ));
    m.spawn(ProcSpec::new(
        "g2",
        ProcClass::Guest,
        10,
        Demand::CpuBound { total_work: None },
        MemSpec::tiny(),
    ));
    m
}

/// Memory overcommit on the small Solaris-class machine: every executed
/// tick owes page-fault stall, most wall time is iowait.
fn thrashing() -> Machine {
    let mut m = Machine::new(MachineConfig::solaris_384mb());
    m.spawn(ProcSpec::new(
        "h",
        ProcClass::Host,
        0,
        Demand::CpuBound { total_work: None },
        MemSpec::resident(250),
    ));
    m.spawn(ProcSpec::new(
        "g",
        ProcClass::Guest,
        19,
        Demand::CpuBound { total_work: None },
        MemSpec::resident(250),
    ));
    m
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    let span = secs(10);
    for (name, build) in [
        ("idle_heavy", idle_heavy as fn() -> Machine),
        ("contended", contended),
        ("thrashing", thrashing),
    ] {
        // Warm one machine per path past spawn transients, then measure
        // steady-state stepping. State carries across iterations — the
        // workloads are steady, so every span is representative.
        let mut stepwise = build();
        stepwise.run_ticks_stepwise(secs(5));
        let mut batched = build();
        batched.run_ticks(secs(5));

        g.throughput(Throughput::Elements(span));
        g.bench_function(format!("stepwise/{name}"), |b| {
            b.iter(|| {
                stepwise.run_ticks_stepwise(span);
                black_box(stepwise.now())
            })
        });
        g.bench_function(format!("batched/{name}"), |b| {
            b.iter(|| {
                batched.run_ticks(span);
                black_box(batched.now())
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sim_throughput
}
criterion_main!(benches);
