//! Fleet-path benchmarks: the two optimizations that make the 100k+
//! machine sweep (X15) feasible.
//!
//! * `tracer` — the per-sample reference tracer (`trace_machine`)
//!   versus the event-horizon batched tracer (`trace_machine_batched`)
//!   over one machine-fortnight, per archetype. The batched path
//!   collapses dead downtime to a single detector observe and skips the
//!   full observe on provably-calm idle spans; the two are
//!   bit-identical (asserted in fgcs-testbed's tests).
//! * `quantiles` — sort-based exact quantiles versus the mergeable
//!   [`RankSketch`] over a 100k-element stream: the sketch is what lets
//!   the Figure 6 analysis run without materializing fleet-scale
//!   interval vectors.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fgcs_core::detector::DetectorConfig;
use fgcs_stats::quantile::quantiles;
use fgcs_stats::sketch::RankSketch;
use fgcs_testbed::fleet::Archetype;
use fgcs_testbed::runner::{trace_machine, trace_machine_batched, TestbedConfig};

fn archetype_testbed(arch: Archetype) -> TestbedConfig {
    let mut lab = arch.lab_config();
    lab.machines = 1;
    lab.days = 14;
    TestbedConfig {
        lab,
        detector: DetectorConfig::wallclock_default(),
    }
}

fn bench_tracer(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_tracer");
    for arch in [
        Archetype::StudentLab,
        Archetype::ServerFarm,
        Archetype::Laptop,
    ] {
        let cfg = archetype_testbed(arch);
        g.throughput(Throughput::Elements(cfg.lab.days as u64));
        g.bench_function(format!("exact/{}", arch.name()), |b| {
            b.iter(|| black_box(trace_machine(&cfg, 0).len()))
        });
        g.bench_function(format!("batched/{}", arch.name()), |b| {
            b.iter(|| black_box(trace_machine_batched(&cfg, 0).len()))
        });
    }
    g.finish();
}

fn bench_quantiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_quantiles");
    // A deterministic scrambled stream, no RNG needed.
    let xs: Vec<f64> = (0u64..100_000)
        .map(|i| (i.wrapping_mul(2_654_435_761) % 100_003) as f64)
        .collect();
    let qs = [0.5, 0.9, 0.99];
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("sort_exact", |b| b.iter(|| black_box(quantiles(&xs, &qs))));
    g.bench_function("sketch_k4096", |b| {
        b.iter(|| {
            let mut sk = RankSketch::new(4096);
            sk.extend(&xs);
            black_box(sk.quantiles(&qs))
        })
    });
    // The mergeable path the fleet runner actually uses: per-chunk
    // sketches merged in order.
    g.bench_function("sketch_k4096_merged_16", |b| {
        b.iter(|| {
            let mut total = RankSketch::new(4096);
            for chunk in xs.chunks(xs.len() / 16) {
                let mut part = RankSketch::new(4096);
                part.extend(chunk);
                total.merge(&part);
            }
            black_box(total.quantiles(&qs))
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tracer, bench_quantiles
}
criterion_main!(benches);
