//! One benchmark group per paper table/figure: each runs the exact code
//! path `fgcs-exp` uses to regenerate that artifact, at reduced scale.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fgcs_bench::{bench_contention_cfg, bench_testbed_cfg, bench_trace, bench_trace_long};
use fgcs_core::contention::{
    guest_usage_experiment, measure_group, priority_sweep, reduction_point, table1_measurements,
};
use fgcs_predict::eval::{evaluate, standard_predictors, EvalConfig};
use fgcs_predict::predictor::MachineHourlyPredictor;
use fgcs_predict::proactive::{replay, Policy, ProactiveConfig};
use fgcs_predict::AvailabilityPredictor;
use fgcs_sim::machine::MachineConfig;
use fgcs_sim::workloads::{musbus, spec};
use fgcs_testbed::analysis;
use fgcs_testbed::runner::run_testbed;

fn bench_table1(c: &mut Criterion) {
    let cfg = bench_contention_cfg();
    c.bench_function("bench_table1/measure_all_workloads", |b| {
        b.iter(|| black_box(table1_measurements(&cfg)))
    });
}

fn bench_fig1(c: &mut Criterion) {
    let cfg = bench_contention_cfg();
    let mut g = c.benchmark_group("bench_fig1");
    g.bench_function("reduction_point_nice0", |b| {
        b.iter(|| black_box(reduction_point(0.5, 3, 0, &cfg)))
    });
    g.bench_function("reduction_point_nice19", |b| {
        b.iter(|| black_box(reduction_point(0.5, 3, 19, &cfg)))
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let cfg = bench_contention_cfg();
    c.bench_function("bench_fig2/priority_sweep_2x3", |b| {
        b.iter(|| black_box(priority_sweep(&[0.3, 0.7], &[0, 10, 19], &cfg)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let cfg = bench_contention_cfg();
    c.bench_function("bench_fig3/guest_usage_grid", |b| {
        b.iter(|| black_box(guest_usage_experiment(&[0.2], &[1.0, 0.8], &cfg)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let cfg = bench_contention_cfg();
    let hosts = musbus::H5.processes();
    let guest = spec::APSI.guest_spec(0);
    c.bench_function("bench_fig4/h5_apsi_thrashing_pair", |b| {
        b.iter(|| {
            black_box(measure_group(
                &MachineConfig::solaris_384mb(),
                &hosts,
                Some(&guest),
                &cfg,
            ))
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let cfg = bench_testbed_cfg();
    let trace = bench_trace();
    let mut g = c.benchmark_group("bench_table2");
    g.bench_function("run_testbed_4x7", |b| {
        b.iter(|| black_box(run_testbed(&cfg)))
    });
    g.bench_function("analyze_causes", |b| {
        b.iter(|| black_box(analysis::table2(&trace)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let trace = bench_trace();
    c.bench_function("bench_fig6/interval_cdfs", |b| {
        b.iter(|| black_box(analysis::intervals(&trace)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("bench_fig7");
    g.bench_function("hourly_bands", |b| {
        b.iter(|| black_box(analysis::hourly(&trace)))
    });
    g.bench_function("regularity", |b| {
        b.iter(|| black_box(analysis::regularity(&trace)))
    });
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let trace = bench_trace_long();
    let mut g = c.benchmark_group("bench_predict");
    g.bench_function("evaluate_all_predictors_1window", |b| {
        b.iter(|| {
            let mut preds = standard_predictors();
            let cfg = EvalConfig {
                windows: vec![2 * 3600],
                ..Default::default()
            };
            black_box(evaluate(&trace, &mut preds, &cfg))
        })
    });
    let mut predictor = MachineHourlyPredictor::default();
    predictor.fit(&trace, trace.meta.span_secs / 2);
    g.bench_function("proactive_replay_50_jobs", |b| {
        b.iter(|| {
            let cfg = ProactiveConfig {
                jobs: 50,
                submit_from: trace.meta.span_secs / 2,
                ..Default::default()
            };
            black_box(replay(&trace, &predictor, Policy::Proactive, &cfg))
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = artifacts;
    config = config();
    targets = bench_table1, bench_fig1, bench_fig2, bench_fig3, bench_fig4,
              bench_table2, bench_fig6, bench_fig7, bench_predict
}
criterion_main!(artifacts);
