//! Shared fixtures for the fgcs benchmark suite (see `benches/`).
//!
//! Benchmarks run scaled-down versions of the real experiment code
//! paths: the same functions `fgcs-exp` uses to regenerate each table
//! and figure, with parameters reduced so a full `cargo bench` completes
//! in minutes.

use fgcs_core::contention::ContentionConfig;
use fgcs_testbed::runner::TestbedConfig;
use fgcs_testbed::trace::Trace;

/// Contention config for benches: short runs, single combo.
pub fn bench_contention_cfg() -> ContentionConfig {
    ContentionConfig {
        warmup_secs: 2,
        measure_secs: 20,
        combos: 1,
        seed: 0xBE7C4,
    }
}

/// Testbed config for benches: 4 machines, 7 days.
pub fn bench_testbed_cfg() -> TestbedConfig {
    let mut cfg = TestbedConfig::tiny();
    cfg.lab.machines = 4;
    cfg.lab.days = 7;
    cfg
}

/// A pre-generated small trace shared by analysis benches.
pub fn bench_trace() -> Trace {
    fgcs_testbed::runner::run_testbed(&bench_testbed_cfg())
}

/// A longer trace for predictor benches (needs enough history days).
pub fn bench_trace_long() -> Trace {
    let mut cfg = bench_testbed_cfg();
    cfg.lab.days = 21;
    fgcs_testbed::runner::run_testbed(&cfg)
}
