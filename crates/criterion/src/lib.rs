//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crate registry, so this crate provides the
//! subset of criterion's API the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! calibrate-then-sample wall-clock harness.
//!
//! Each benchmark prints one line:
//!
//! ```text
//! bench <id>  <mean> ns/iter  (<throughput> elem/s)
//! ```
//!
//! The format is stable so scripts (e.g. `scripts/ci.sh`, the
//! `BENCH_sim.json` generator) can parse it. Command-line arguments after
//! `--` act as substring filters on benchmark ids, like upstream.
//! Setting `FGCS_BENCH_QUICK=1` shrinks warm-up and measurement times for
//! smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration (reported as elem/s).
    Elements(u64),
    /// Bytes processed per iteration (reported as B/s).
    Bytes(u64),
}

/// Benchmark harness configuration and driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            filters,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id, None, f);
        self
    }

    /// Opens a named group; benchmark ids become `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn effective_times(&self) -> (Duration, Duration) {
        if std::env::var_os("FGCS_BENCH_QUICK").is_some() {
            (
                self.warm_up.min(Duration::from_millis(50)),
                self.measurement.min(Duration::from_millis(200)),
            )
        } else {
            (self.warm_up, self.measurement)
        }
    }
}

/// A benchmark group, created by [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.c, &id, self.throughput, f);
        self
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(c: &Criterion, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !c.matches(id) {
        return;
    }
    let (warm_up, measurement) = c.effective_times();

    // Calibrate: double the iteration count until one batch is long
    // enough to time reliably, warming caches as a side effect.
    let warm_deadline = Instant::now() + warm_up;
    let mut iters: u64 = 1;
    let mut per_iter_ns: f64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns = (b.elapsed.as_nanos() as f64 / iters as f64).max(0.01);
        if b.elapsed >= warm_up / 5 || Instant::now() >= warm_deadline {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    // Sample: split the measurement budget into sample_size batches.
    let target_batch_ns = measurement.as_nanos() as f64 / c.sample_size as f64;
    let batch_iters = ((target_batch_ns / per_iter_ns) as u64).max(1);
    let mut total = Duration::ZERO;
    let mut best_ns = f64::INFINITY;
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters: batch_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        let ns = b.elapsed.as_nanos() as f64 / batch_iters as f64;
        if ns < best_ns {
            best_ns = ns;
        }
    }
    let mean_ns = total.as_nanos() as f64 / (c.sample_size as u64 * batch_iters) as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  ({:.4e} elem/s)", n as f64 * 1e9 / mean_ns),
        Throughput::Bytes(n) => format!("  ({:.4e} B/s)", n as f64 * 1e9 / mean_ns),
    });
    println!(
        "bench {id}  {mean_ns:.1} ns/iter  (best {best_ns:.1}){}",
        rate.unwrap_or_default()
    );
}

/// Declares a group of benchmark functions, as upstream.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
