//! A multi-machine FGCS cluster — the iShare service end-to-end.
//!
//! In iShare, "resource publication and discovery are enabled by a
//! Peer-to-Peer network \[and\] cycle sharing happens when resource
//! consumers submit guest jobs to published machines" (§5). This module
//! is that service running on *live* simulated machines (as opposed to
//! the trace-replay experiments in `fgcs-predict`): a set of per-machine
//! [`Controller`]s behind a shared job queue and a pluggable
//! [`Placement`] strategy.
//!
//! Jobs flow: `submit` → cluster queue → placement picks an available,
//! idle node → the node's controller runs the guest under the
//! five-state policy → completion, or termination and automatic
//! re-queueing at the cluster level (the guest loses all progress, per
//! the model).

use std::collections::VecDeque;

use fgcs_sim::machine::Machine;
use fgcs_sim::proc::ProcSpec;
use fgcs_stats::rng::Rng;

use crate::controller::{Controller, ControllerConfig, ControllerStats};
use crate::model::AvailState;

/// What placement strategies see about each node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeView {
    /// Node index within the cluster.
    pub node: usize,
    /// Detector state of the node.
    pub state: AvailState,
    /// True if the node can accept a job right now (available, no guest).
    pub accepts_jobs: bool,
    /// Host load from the node's latest monitor sample, if any.
    pub host_load: Option<f64>,
    /// Unavailability occurrences recorded on this node so far.
    pub failures: usize,
}

/// A job-placement strategy over cluster nodes.
pub trait Placement {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// Chooses one of the nodes with `accepts_jobs == true`, or `None`
    /// to hold the job in the queue.
    fn choose(&mut self, nodes: &[NodeView]) -> Option<usize>;
}

/// Uniformly random among accepting nodes.
#[derive(Debug)]
pub struct RandomPlacement {
    rng: Rng,
}

impl RandomPlacement {
    /// Creates a random placement with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPlacement {
            rng: Rng::new(seed),
        }
    }
}

impl Placement for RandomPlacement {
    fn name(&self) -> &'static str {
        "random"
    }

    fn choose(&mut self, nodes: &[NodeView]) -> Option<usize> {
        let open: Vec<usize> = nodes
            .iter()
            .filter(|n| n.accepts_jobs)
            .map(|n| n.node)
            .collect();
        if open.is_empty() {
            None
        } else {
            Some(*self.rng.choose(&open))
        }
    }
}

/// Round-robin over accepting nodes.
#[derive(Debug, Default)]
pub struct RoundRobinPlacement {
    next: usize,
}

impl Placement for RoundRobinPlacement {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn choose(&mut self, nodes: &[NodeView]) -> Option<usize> {
        if nodes.is_empty() {
            return None;
        }
        for offset in 0..nodes.len() {
            let idx = (self.next + offset) % nodes.len();
            if nodes[idx].accepts_jobs {
                self.next = idx + 1;
                return Some(nodes[idx].node);
            }
        }
        None
    }
}

/// Lowest current host load among accepting nodes — the natural greedy
/// strategy a load monitor enables.
#[derive(Debug, Default)]
pub struct LeastLoadedPlacement;

impl Placement for LeastLoadedPlacement {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn choose(&mut self, nodes: &[NodeView]) -> Option<usize> {
        nodes
            .iter()
            .filter(|n| n.accepts_jobs)
            .min_by(|a, b| {
                let la = a.host_load.unwrap_or(1.0);
                let lb = b.host_load.unwrap_or(1.0);
                la.partial_cmp(&lb).expect("loads are not NaN")
            })
            .map(|n| n.node)
    }
}

/// Fewest historical failures among accepting nodes — a trivial
/// history-based strategy, the cluster-level analogue of availability
/// prediction.
#[derive(Debug, Default)]
pub struct FewestFailuresPlacement;

impl Placement for FewestFailuresPlacement {
    fn name(&self) -> &'static str {
        "fewest-failures"
    }

    fn choose(&mut self, nodes: &[NodeView]) -> Option<usize> {
        nodes
            .iter()
            .filter(|n| n.accepts_jobs)
            .min_by_key(|n| n.failures)
            .map(|n| n.node)
    }
}

/// Aggregate cluster statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterStats {
    /// Jobs dispatched to nodes (including re-dispatches).
    pub dispatched: u64,
    /// Jobs completed across all nodes.
    pub completed: u64,
    /// Guest terminations across all nodes.
    pub terminated: u64,
    /// Jobs currently waiting in the cluster queue.
    pub queued: usize,
    /// Mean response time (submit → completion) of finished jobs, ticks.
    pub mean_response_ticks: f64,
}

/// Lifecycle record of one cluster job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job's process spec.
    pub spec: ProcSpec,
    /// Cluster time at submission.
    pub submitted_at: u64,
    /// Cluster time at completion, once finished.
    pub completed_at: Option<u64>,
    /// Times the job was killed and re-queued.
    pub restarts: u32,
}

impl JobRecord {
    /// Response time (submit → completion), if finished.
    pub fn response(&self) -> Option<u64> {
        self.completed_at.map(|c| c - self.submitted_at)
    }
}

/// The FGCS cluster: one controller per machine plus a shared queue.
pub struct Cluster {
    nodes: Vec<Controller>,
    /// Indices into `jobs` awaiting dispatch.
    queue: VecDeque<usize>,
    jobs: Vec<JobRecord>,
    /// Job index currently running on each node.
    in_flight: Vec<Option<usize>>,
    /// Per-node completed count at the last reconciliation.
    seen_completed: Vec<u64>,
    placement: Box<dyn Placement>,
    dispatched: u64,
    now: u64,
    dispatch_period: u64,
    next_dispatch: u64,
}

impl Cluster {
    /// Builds a cluster from machines, one controller each. Terminated
    /// jobs return to the *cluster* queue (so another node can pick them
    /// up), hence per-node resubmission is disabled.
    pub fn new(
        machines: Vec<Machine>,
        mut controller_cfg: ControllerConfig,
        placement: Box<dyn Placement>,
    ) -> Self {
        controller_cfg.resubmit_on_failure = false;
        let dispatch_period = controller_cfg.sample_period;
        let nodes: Vec<Controller> = machines
            .into_iter()
            .map(|m| Controller::new(controller_cfg, m))
            .collect();
        let n = nodes.len();
        Cluster {
            nodes,
            queue: VecDeque::new(),
            jobs: Vec::new(),
            in_flight: vec![None; n],
            seen_completed: vec![0; n],
            placement,
            dispatched: 0,
            now: 0,
            dispatch_period,
            next_dispatch: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a clusterless cluster.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Submits a job to the cluster queue; returns its job index.
    pub fn submit(&mut self, spec: ProcSpec) -> usize {
        let idx = self.jobs.len();
        self.jobs.push(JobRecord {
            spec,
            submitted_at: self.now,
            completed_at: None,
            restarts: 0,
        });
        self.queue.push_back(idx);
        idx
    }

    /// Lifecycle records of every submitted job.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Read access to a node's controller.
    pub fn node(&self, idx: usize) -> &Controller {
        &self.nodes[idx]
    }

    /// Mutable access to a node's controller (e.g. to inject host load).
    pub fn node_mut(&mut self, idx: usize) -> &mut Controller {
        &mut self.nodes[idx]
    }

    /// Current views of every node, as placement strategies see them.
    pub fn views(&self) -> Vec<NodeView> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, c)| NodeView {
                node: i,
                state: c.detector().state(),
                accepts_jobs: c.detector().is_available()
                    && !c.detector().spike_active()
                    && !c.guest_running()
                    && c.queue_len() == 0,
                host_load: c.last_observation().map(|o| o.host_load),
                failures: c.event_log().events().len(),
            })
            .collect()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ClusterStats {
        let mut s = ClusterStats {
            queued: self.queue.len(),
            dispatched: self.dispatched,
            ..Default::default()
        };
        for n in &self.nodes {
            let ns: ControllerStats = n.stats();
            s.completed += ns.completed;
            s.terminated += ns.terminated;
        }
        let responses: Vec<u64> = self.jobs.iter().filter_map(|j| j.response()).collect();
        if !responses.is_empty() {
            s.mean_response_ticks = responses.iter().sum::<u64>() as f64 / responses.len() as f64;
        }
        s
    }

    /// Advances every node by `n` ticks, dispatching queued jobs at the
    /// sampling cadence and reclaiming jobs whose guests were killed.
    pub fn run_ticks(&mut self, n: u64) {
        let end = self.now + n;
        while self.now < end {
            let step = self.dispatch_period.min(end - self.now).max(1);
            for node in &mut self.nodes {
                node.run_ticks(step);
            }
            self.now += step;
            if self.now >= self.next_dispatch {
                self.reconcile();
                self.dispatch();
                self.next_dispatch = self.now + self.dispatch_period;
            }
        }
    }

    /// Runs until every job completes or `max_ticks` elapse; returns the
    /// ticks consumed.
    pub fn run_until_drained(&mut self, max_ticks: u64) -> u64 {
        let start = self.now;
        while self.has_outstanding_work() && self.now - start < max_ticks {
            self.run_ticks(self.dispatch_period);
        }
        self.now - start
    }

    /// True while any job is queued or running.
    pub fn has_outstanding_work(&self) -> bool {
        !self.queue.is_empty()
            || self
                .nodes
                .iter()
                .any(|n| n.guest_running() || n.queue_len() > 0)
    }

    /// Reconciles per-node outcomes with the job table: jobs whose guest
    /// completed get a completion time; jobs whose guest was killed go
    /// back to the cluster queue (the guest loses all progress).
    fn reconcile(&mut self) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let killed = node.take_killed();
            let completed = node.stats().completed;
            if let Some(job) = self.in_flight[i] {
                if !killed.is_empty() {
                    self.jobs[job].restarts += 1;
                    self.queue.push_back(job);
                    self.in_flight[i] = None;
                } else if completed > self.seen_completed[i] {
                    self.jobs[job].completed_at = Some(self.now);
                    self.in_flight[i] = None;
                }
            }
            self.seen_completed[i] = completed;
        }
    }

    fn dispatch(&mut self) {
        loop {
            if self.queue.is_empty() {
                break;
            }
            let views = self.views();
            let Some(node) = self.placement.choose(&views) else {
                break;
            };
            debug_assert!(views[node].accepts_jobs, "placement chose a busy node");
            let job = self.queue.pop_front().expect("checked non-empty");
            self.nodes[node].submit(self.jobs[job].spec.clone());
            self.in_flight[node] = Some(job);
            self.dispatched += 1;
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("queued", &self.queue.len())
            .field("placement", &self.placement.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_sim::proc::{Demand, MemSpec, ProcClass};
    use fgcs_sim::time::secs;
    use fgcs_sim::workloads::synthetic;

    fn job(work_secs: u64) -> ProcSpec {
        ProcSpec::new(
            "job",
            ProcClass::Guest,
            0,
            Demand::CpuBound {
                total_work: Some(secs(work_secs)),
            },
            MemSpec::tiny(),
        )
    }

    fn idle_cluster(n: usize, placement: Box<dyn Placement>) -> Cluster {
        let machines = (0..n).map(|_| Machine::default_linux()).collect();
        Cluster::new(machines, ControllerConfig::default(), placement)
    }

    #[test]
    fn jobs_complete_across_nodes() {
        let mut c = idle_cluster(3, Box::new(RoundRobinPlacement::default()));
        for _ in 0..6 {
            c.submit(job(5));
        }
        c.run_until_drained(secs(300));
        let s = c.stats();
        assert_eq!(s.completed, 6, "{s:?}");
        assert_eq!(s.queued, 0);
        assert!(!c.has_outstanding_work());
        // Round-robin used every node.
        for i in 0..3 {
            assert!(c.node(i).stats().completed > 0, "node {i} unused");
        }
    }

    #[test]
    fn one_job_per_node_at_a_time() {
        let mut c = idle_cluster(2, Box::new(RoundRobinPlacement::default()));
        for _ in 0..5 {
            c.submit(job(30));
        }
        c.run_ticks(secs(10));
        let running: usize = (0..2).map(|i| c.node(i).guest_running() as usize).sum();
        assert_eq!(running, 2, "both nodes busy");
        assert!(
            c.stats().queued >= 1,
            "excess jobs wait in the cluster queue"
        );
    }

    #[test]
    fn least_loaded_avoids_the_busy_machine() {
        let mut busy = Machine::default_linux();
        busy.spawn(synthetic::host_process("hog", 0.5));
        let idle = Machine::default_linux();
        let mut c = Cluster::new(
            vec![busy, idle],
            ControllerConfig::default(),
            Box::new(LeastLoadedPlacement),
        );
        // Let monitors take a couple of samples before any job arrives.
        c.run_ticks(secs(10));
        c.submit(job(5));
        c.run_until_drained(secs(120));
        assert_eq!(
            c.node(1).stats().completed,
            1,
            "idle node should get the job"
        );
        assert_eq!(c.node(0).stats().started, 0);
    }

    #[test]
    fn random_placement_spreads_work() {
        let mut c = idle_cluster(4, Box::new(RandomPlacement::new(7)));
        for _ in 0..24 {
            c.submit(job(2));
        }
        c.run_until_drained(secs(600));
        assert_eq!(c.stats().completed, 24);
        let used = (0..4).filter(|&i| c.node(i).stats().completed > 0).count();
        assert!(used >= 3, "random placement used only {used} nodes");
    }

    #[test]
    fn fewest_failures_prefers_reliable_nodes() {
        // Node 0 carries a persistent overload that kills guests.
        let mut flaky = Machine::default_linux();
        flaky.spawn(synthetic::host_process("hog", 0.9));
        let steady = Machine::default_linux();
        let mut c = Cluster::new(
            vec![flaky, steady],
            ControllerConfig::default(),
            Box::new(FewestFailuresPlacement),
        );
        // Give the flaky node time to record failures.
        c.run_ticks(fgcs_sim::time::minutes(10));
        assert!(
            !c.node(0).event_log().events().is_empty(),
            "flaky node has history"
        );
        c.submit(job(5));
        c.run_until_drained(secs(300));
        assert_eq!(c.node(1).stats().completed, 1);
    }

    #[test]
    fn job_records_track_lifecycle() {
        let mut c = idle_cluster(2, Box::new(RoundRobinPlacement::default()));
        c.run_ticks(secs(30)); // submissions later than t=0
        let id = c.submit(job(5));
        assert_eq!(id, 0);
        assert!(c.jobs()[id].submitted_at >= secs(30));
        c.run_until_drained(secs(120));
        let rec = &c.jobs()[id];
        assert!(rec.completed_at.is_some(), "{rec:?}");
        let resp = rec.response().unwrap();
        assert!(resp >= secs(5) && resp < secs(60), "response {resp}");
        assert_eq!(rec.restarts, 0);
        assert!(c.stats().mean_response_ticks > 0.0);
    }

    #[test]
    fn killed_jobs_restart_and_finish_elsewhere() {
        // Node 0 becomes overloaded shortly after the job starts there.
        let mut flaky = Machine::default_linux();
        flaky.spawn(ProcSpec::new(
            "late-hog",
            ProcClass::Host,
            0,
            Demand::Phases {
                phases: vec![
                    fgcs_sim::proc::Phase {
                        busy: 1,
                        idle: secs(20),
                    },
                    fgcs_sim::proc::Phase {
                        busy: secs(600),
                        idle: 1,
                    },
                ],
                repeat: false,
            },
            MemSpec::tiny(),
        ));
        let steady = Machine::default_linux();
        // Round-robin places the first job on node 0.
        let mut c = Cluster::new(
            vec![flaky, steady],
            ControllerConfig::default(),
            Box::new(RoundRobinPlacement::default()),
        );
        let id = c.submit(job(300));
        c.run_until_drained(fgcs_sim::time::minutes(60));
        let rec = &c.jobs()[id];
        assert!(rec.completed_at.is_some(), "{rec:?}");
        assert!(
            rec.restarts >= 1,
            "job should have been killed once: {rec:?}"
        );
        assert_eq!(
            c.node(1).stats().completed,
            1,
            "finished on the steady node"
        );
    }

    #[test]
    fn views_reflect_node_states() {
        let mut overloaded = Machine::default_linux();
        overloaded.spawn(synthetic::host_process("hog", 0.95));
        let mut c = Cluster::new(
            vec![overloaded, Machine::default_linux()],
            ControllerConfig::default(),
            Box::new(RoundRobinPlacement::default()),
        );
        c.run_ticks(fgcs_sim::time::minutes(3));
        let views = c.views();
        assert_eq!(views.len(), 2);
        assert!(
            !views[0].accepts_jobs,
            "overloaded node must not accept jobs: {views:?}"
        );
        assert!(views[1].accepts_jobs, "{views:?}");
        assert!(views[0].failures >= 1);
        assert_eq!(views[1].state, AvailState::S1);
    }

    #[test]
    fn queue_drains_when_nodes_recover() {
        // A single node that is overloaded for two minutes, then idle.
        let mut m = Machine::default_linux();
        m.spawn(ProcSpec::new(
            "burst",
            ProcClass::Host,
            0,
            Demand::CpuBound {
                total_work: Some(secs(120)),
            },
            MemSpec::tiny(),
        ));
        let mut c = Cluster::new(
            vec![m],
            ControllerConfig::default(),
            Box::new(RoundRobinPlacement::default()),
        );
        c.submit(job(5));
        c.run_ticks(secs(60));
        assert_eq!(c.stats().completed, 0, "node still overloaded");
        c.run_until_drained(fgcs_sim::time::minutes(20));
        assert_eq!(c.stats().completed, 1, "{:?}", c.stats());
    }
}
