//! The FGCS core: the ICPP'06 paper's primary contribution.
//!
//! * [`model`] — the five-state availability model of §4 (Figure 5),
//!   with the two contention thresholds `Th1`/`Th2`.
//! * [`monitor`] — the non-intrusive resource monitor (§5): periodic
//!   `vmstat`-style sampling of host CPU load, free memory and service
//!   liveness.
//! * [`detector`] — maps observations to states and unavailability
//!   events, applying the 1-minute transient-spike and 5-minute
//!   harvest-delay rules.
//! * [`events`] — unavailability occurrences and availability-interval
//!   reconstruction (the §5 trace records).
//! * [`controller`] — the guest-job state machine: renice on S2,
//!   suspend on spikes, terminate on S3/S4/S5, queue and resubmit jobs.
//! * [`cluster`] — the multi-machine iShare service: per-node
//!   controllers behind a shared queue with pluggable placement.
//! * [`contention`] — the §3.2 offline contention experiments (Figures
//!   1–4, Table 1) against the `fgcs-sim` machine.
//! * [`calibrate`] — derives `Th1`/`Th2` from the experiments, the way
//!   the paper reads them off Figure 1.
//! * [`policy`] — the §3.2.2 design space: the two-threshold policy and
//!   the rejected alternatives (gradual priorities, always-lowest,
//!   coarse-grained), executable for quantitative comparison.
//! * [`backoff`] — the shared capped-exponential-backoff-with-jitter
//!   schedule used by every retry loop in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod calibrate;
pub mod cluster;
pub mod contention;
pub mod controller;
pub mod detector;
pub mod events;
pub mod model;
pub mod monitor;
pub mod policy;

pub use controller::{Controller, ControllerConfig, ControllerStats};
pub use detector::{
    Detector, DetectorConfig, DetectorConfigError, DetectorSnapshot, EventEdge, GuestAction, Step,
};
pub use events::{EventLog, UnavailEvent};
pub use model::{AvailState, FailureCause, LoadBand, Thresholds, NOTICEABLE_SLOWDOWN};
pub use monitor::{Monitor, MonitorSnapshot, Observation, ResourceProbe};
