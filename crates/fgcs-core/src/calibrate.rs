//! Threshold calibration — the paper's offline experiments as an API.
//!
//! "We use offline experiments to determine the values of these
//! thresholds on specific systems" (§3). [`calibrate`] runs the Figure 1
//! sweeps on a target machine configuration and extracts `Th1`/`Th2` the
//! way the paper reads them off the plots: the lowest `LH` among the
//! tested host-group sizes at which the mean reduction rate of host CPU
//! usage exceeds the 5% noticeable-slowdown bound, with the guest at
//! default priority (`Th1`) and at the lowest priority (`Th2`).

use crate::contention::{fig1_sweep, ContentionConfig, Fig1Row};
use crate::model::{Thresholds, NOTICEABLE_SLOWDOWN};

/// Calibration output: the derived thresholds plus the raw sweep data
/// they came from, for inspection and plotting.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The derived thresholds.
    pub thresholds: Thresholds,
    /// Figure 1(a) data (guest at nice 0).
    pub equal_priority: Vec<Fig1Row>,
    /// Figure 1(b) data (guest at nice 19).
    pub lowest_priority: Vec<Fig1Row>,
}

/// Grid resolution and sweep parameters for calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Host-load grid to probe.
    pub lh_grid: Vec<f64>,
    /// Host-group sizes to probe.
    pub m_values: Vec<usize>,
    /// Underlying contention-measurement parameters.
    pub contention: ContentionConfig,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            lh_grid: (1..=20).map(|i| i as f64 * 0.05).collect(),
            m_values: (1..=5).collect(),
            contention: ContentionConfig::default(),
        }
    }
}

impl CalibrationConfig {
    /// Coarser, cheaper grid for tests and benches.
    pub fn quick() -> Self {
        CalibrationConfig {
            lh_grid: (1..=10).map(|i| i as f64 * 0.1).collect(),
            m_values: vec![1, 3, 5],
            contention: ContentionConfig::quick(),
        }
    }
}

/// Extracts a threshold from sweep rows: for each group size, the lowest
/// `LH` from which the reduction rate *stays* above the
/// noticeable-slowdown bound (a single noisy grid point does not count —
/// the model's S3 requires load "steadily" above the threshold); the
/// threshold is the minimum over group sizes, falling back to the top of
/// the probed grid when no series ever crosses the bound.
pub fn threshold_from_rows(rows: &[Fig1Row]) -> f64 {
    let mut m_values: Vec<usize> = rows.iter().map(|r| r.m).collect();
    m_values.sort_unstable();
    m_values.dedup();

    let mut best: Option<f64> = None;
    for m in m_values {
        let mut series: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.m == m)
            .map(|r| (r.lh, r.reduction))
            .collect();
        series.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        for (i, &(lh, red)) in series.iter().enumerate() {
            // "Steadily above": this grid point and the following two
            // (where present) all exceed the bound.
            let steady = red > NOTICEABLE_SLOWDOWN
                && series[i + 1..]
                    .iter()
                    .take(2)
                    .all(|&(_, next)| next > NOTICEABLE_SLOWDOWN);
            if steady {
                best = Some(best.map_or(lh, |b: f64| b.min(lh)));
                break;
            }
        }
    }
    best.unwrap_or_else(|| {
        let grid_top = rows.iter().map(|r| r.lh).fold(0.0, f64::max);
        if grid_top > 0.0 {
            grid_top
        } else {
            1.0
        }
    })
}

/// Runs the full calibration: both Figure 1 sweeps plus threshold
/// extraction.
pub fn calibrate(cfg: &CalibrationConfig) -> Calibration {
    let equal_priority = fig1_sweep(0, &cfg.lh_grid, &cfg.m_values, &cfg.contention);
    let lowest_priority = fig1_sweep(19, &cfg.lh_grid, &cfg.m_values, &cfg.contention);
    let th1 = threshold_from_rows(&equal_priority);
    let th2 = threshold_from_rows(&lowest_priority);
    // Guard against a degenerate simulator: Th1 must not exceed Th2
    // (a nice-19 guest never hurts the host more than a nice-0 guest).
    let th2 = th2.max(th1);
    Calibration {
        thresholds: Thresholds::new(th1, th2),
        equal_priority,
        lowest_priority,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_extraction_picks_lowest_exceeding_lh() {
        let rows = vec![
            Fig1Row {
                lh: 0.2,
                m: 1,
                reduction: 0.02,
            },
            Fig1Row {
                lh: 0.4,
                m: 1,
                reduction: 0.08,
            },
            Fig1Row {
                lh: 0.3,
                m: 2,
                reduction: 0.06,
            },
            Fig1Row {
                lh: 0.6,
                m: 1,
                reduction: 0.2,
            },
        ];
        assert_eq!(threshold_from_rows(&rows), 0.3);
    }

    #[test]
    fn threshold_falls_back_to_grid_top() {
        let rows = vec![
            Fig1Row {
                lh: 0.2,
                m: 1,
                reduction: 0.01,
            },
            Fig1Row {
                lh: 0.8,
                m: 1,
                reduction: 0.04,
            },
        ];
        assert_eq!(threshold_from_rows(&rows), 0.8);
    }

    #[test]
    fn calibration_orders_thresholds() {
        // Quick calibration must find Th1 <= Th2, both inside (0, 1].
        let cal = calibrate(&CalibrationConfig::quick());
        let t = cal.thresholds;
        assert!(t.th1 > 0.0 && t.th1 <= t.th2 && t.th2 <= 1.0, "{t:?}");
        // The simulated machine shows the paper's separation: an
        // equal-priority guest hurts a much lighter host than a nice-19
        // guest does.
        assert!(t.th1 < t.th2, "expected strict separation, got {t:?}");
    }
}
