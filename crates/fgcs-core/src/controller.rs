//! The guest-job controller.
//!
//! Binds a [`Detector`] to a simulated [`Machine`] and enforces the §3.2
//! management policy on the running guest process:
//!
//! * S1 → run at default priority; S2 → `renice` to 19;
//! * transient spike above `Th2` → `SIGSTOP`, resume if it subsides
//!   within the tolerance ("the guest process resumes if the contention
//!   diminishes after a certain duration, otherwise it is terminated");
//! * S3/S4/S5 → kill the guest;
//! * "no more than one guest process is allowed to run concurrently on
//!   the same machine" — submissions queue.
//!
//! The controller also tracks job completions and failure counts, which
//! the proactive-scheduling experiment (X3) uses as its response-time
//! substrate.

use std::collections::VecDeque;

use fgcs_sim::machine::Machine;
use fgcs_sim::proc::{Pid, ProcSpec};
use fgcs_sim::time::secs;

use crate::detector::{Detector, DetectorConfig, GuestAction};
use crate::events::EventLog;
use crate::monitor::{Monitor, Observation};

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Detector configuration (timestamps in ticks).
    pub detector: DetectorConfig,
    /// Monitor sampling period in ticks.
    pub sample_period: u64,
    /// Whether a terminated job is automatically re-queued (the tracing
    /// probe behaviour) or dropped (one-shot jobs).
    pub resubmit_on_failure: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            detector: DetectorConfig::sim_default(),
            sample_period: secs(2),
            resubmit_on_failure: false,
        }
    }
}

/// Lifetime statistics of a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControllerStats {
    /// Guest jobs started (including restarts).
    pub started: u64,
    /// Guest jobs that ran to completion.
    pub completed: u64,
    /// Guest jobs killed by the detector.
    pub terminated: u64,
    /// SIGSTOPs issued.
    pub suspensions: u64,
    /// Renice operations issued.
    pub renices: u64,
}

#[derive(Debug, Clone)]
enum GuestSlot {
    Idle,
    Running { pid: Pid, spec: ProcSpec },
}

/// Drives one machine's guest workload under the FGCS policy.
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    machine: Machine,
    monitor: Monitor,
    detector: Detector,
    log: EventLog,
    slot: GuestSlot,
    queue: VecDeque<ProcSpec>,
    stats: ControllerStats,
    next_sample: u64,
    last_obs: Option<Observation>,
    killed: Vec<ProcSpec>,
}

impl Controller {
    /// Creates a controller around a machine.
    pub fn new(cfg: ControllerConfig, machine: Machine) -> Self {
        let detector = Detector::new(cfg.detector);
        Controller {
            cfg,
            machine,
            monitor: Monitor::new(),
            detector,
            log: EventLog::new(),
            slot: GuestSlot::Idle,
            queue: VecDeque::new(),
            stats: ControllerStats::default(),
            next_sample: 0,
            last_obs: None,
            killed: Vec::new(),
        }
    }

    /// Submits a guest job. It starts at the next sampling point at
    /// which the machine is available and no other guest runs.
    pub fn submit(&mut self, spec: ProcSpec) {
        self.queue.push_back(spec);
    }

    /// The underlying machine (for spawning host load, inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access, e.g. to inject host workload mid-run.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Detector state access.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The unavailability log accumulated so far.
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// True while a guest process occupies the machine.
    pub fn guest_running(&self) -> bool {
        matches!(self.slot, GuestSlot::Running { .. })
    }

    /// Pid of the running guest, if any.
    pub fn guest_pid(&self) -> Option<Pid> {
        match &self.slot {
            GuestSlot::Running { pid, .. } => Some(*pid),
            GuestSlot::Idle => None,
        }
    }

    /// Jobs waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Advances machine + policy by `n` ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            if self.machine.now() >= self.next_sample {
                self.sample_and_act();
                self.next_sample = self.machine.now() + self.cfg.sample_period;
            }
            self.machine.step();
            self.reap_completed();
        }
    }

    /// Runs until the queue and slot are empty or `max_ticks` elapse;
    /// returns the number of ticks consumed.
    pub fn run_until_drained(&mut self, max_ticks: u64) -> u64 {
        let start = self.machine.now();
        while (self.guest_running() || !self.queue.is_empty())
            && self.machine.now() - start < max_ticks
        {
            self.run_ticks(self.cfg.sample_period.max(1));
        }
        self.machine.now() - start
    }

    fn reap_completed(&mut self) {
        if let GuestSlot::Running { pid, .. } = &self.slot {
            let exited = self
                .machine
                .process(*pid)
                .map(|p| p.is_exited())
                .unwrap_or(true);
            if exited {
                self.slot = GuestSlot::Idle;
                self.stats.completed += 1;
            }
        }
    }

    /// The most recent monitor observation, if a sample has been taken.
    pub fn last_observation(&self) -> Option<Observation> {
        self.last_obs
    }

    /// Drains the specs of guest jobs killed by the detector since the
    /// last call (only populated when `resubmit_on_failure` is off).
    pub fn take_killed(&mut self) -> Vec<ProcSpec> {
        std::mem::take(&mut self.killed)
    }

    fn sample_and_act(&mut self) {
        let obs = self.monitor.sample(&self.machine);
        self.last_obs = Some(obs);
        let t = self.machine.now();
        let step = self.detector.observe(t, &obs);
        self.log.extend(step.edges);

        match step.action {
            Some(GuestAction::SetLowestPriority) => {
                if let GuestSlot::Running { pid, .. } = &self.slot {
                    let _ = self.machine.renice(*pid, 19);
                    self.stats.renices += 1;
                }
            }
            Some(GuestAction::RestoreDefaultPriority) => {
                if let GuestSlot::Running { pid, spec } = &self.slot {
                    let _ = self.machine.renice(*pid, spec.nice);
                    self.stats.renices += 1;
                }
            }
            Some(GuestAction::Suspend) => {
                if let GuestSlot::Running { pid, .. } = &self.slot {
                    let _ = self.machine.suspend(*pid);
                    self.stats.suspensions += 1;
                }
            }
            Some(GuestAction::Resume) => {
                if let GuestSlot::Running { pid, .. } = &self.slot {
                    let _ = self.machine.resume(*pid);
                }
            }
            Some(GuestAction::Terminate) => {
                if let GuestSlot::Running { pid, spec } =
                    std::mem::replace(&mut self.slot, GuestSlot::Idle)
                {
                    let _ = self.machine.kill(pid);
                    self.stats.terminated += 1;
                    if self.cfg.resubmit_on_failure {
                        self.queue.push_front(spec);
                    } else {
                        // Hand the spec back to whoever manages this
                        // controller (see `take_killed`): in a cluster
                        // the job is re-queued on another machine.
                        self.killed.push(spec);
                    }
                }
            }
            Some(GuestAction::MachineAvailable) | None => {}
        }

        // Start the next job if the machine is available, idle, and not
        // riding out a load spike (starting a guest mid-spike would run
        // it unmanaged until the spike resolves).
        if self.detector.is_available() && !self.detector.spike_active() && !self.guest_running() {
            if let Some(spec) = self.queue.pop_front() {
                self.detector.set_guest_working_set(spec.mem.resident_mb);
                // Re-check memory fit before placement.
                if self.machine.free_mem_for_guest_mb() >= spec.mem.resident_mb {
                    let pid = self.machine.spawn(spec.clone());
                    // Enter at the priority the current state demands.
                    if self.detector.state() == crate::model::AvailState::S2 {
                        let _ = self.machine.renice(pid, 19);
                    }
                    self.slot = GuestSlot::Running { pid, spec };
                    self.stats.started += 1;
                } else {
                    // Does not fit: requeue and wait for memory.
                    self.queue.push_front(spec);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_sim::proc::{Demand, MemSpec, ProcClass};
    use fgcs_sim::workloads::synthetic;

    fn quick_cfg() -> ControllerConfig {
        ControllerConfig {
            detector: DetectorConfig {
                thresholds: crate::model::Thresholds::LINUX_TESTBED,
                guest_working_set_mb: 4,
                spike_tolerance: secs(10),
                harvest_delay: secs(20),
                max_silence: None,
            },
            sample_period: secs(1),
            resubmit_on_failure: false,
        }
    }

    fn finite_guest(work_secs: u64) -> ProcSpec {
        ProcSpec::new(
            "job",
            ProcClass::Guest,
            0,
            Demand::CpuBound {
                total_work: Some(secs(work_secs)),
            },
            MemSpec::tiny(),
        )
    }

    #[test]
    fn idle_machine_completes_job() {
        let mut ctl = Controller::new(quick_cfg(), Machine::default_linux());
        ctl.submit(finite_guest(5));
        let ticks = ctl.run_until_drained(secs(60));
        assert!(ticks >= secs(5));
        let s = ctl.stats();
        assert_eq!(s.started, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.terminated, 0);
        assert!(!ctl.guest_running());
    }

    #[test]
    fn job_queues_behind_running_guest() {
        let mut ctl = Controller::new(quick_cfg(), Machine::default_linux());
        ctl.submit(finite_guest(3));
        ctl.submit(finite_guest(3));
        ctl.run_ticks(secs(2));
        assert!(ctl.guest_running());
        assert_eq!(ctl.queue_len(), 1, "only one guest at a time");
        ctl.run_until_drained(secs(120));
        assert_eq!(ctl.stats().completed, 2);
    }

    #[test]
    fn heavy_host_load_gets_guest_reniced() {
        let mut machine = Machine::default_linux();
        machine.spawn(synthetic::host_process("h", 0.4));
        let mut ctl = Controller::new(quick_cfg(), machine);
        ctl.submit(finite_guest(60));
        ctl.run_ticks(secs(10));
        let pid = ctl.guest_pid().expect("guest running");
        assert_eq!(
            ctl.machine().process(pid).unwrap().nice,
            19,
            "S2 demands nice 19"
        );
        assert_eq!(ctl.detector().state(), crate::model::AvailState::S2);
    }

    #[test]
    fn persistent_overload_terminates_guest() {
        let mut machine = Machine::default_linux();
        machine.spawn(synthetic::host_process("h", 0.9));
        let mut ctl = Controller::new(quick_cfg(), machine);
        ctl.submit(finite_guest(600));
        ctl.run_ticks(secs(40));
        assert!(!ctl.guest_running());
        assert_eq!(ctl.stats().terminated, 1);
        assert!(ctl.stats().suspensions >= 1, "suspended before the kill");
        assert_eq!(ctl.event_log().events().len(), 1);
        assert_eq!(
            ctl.event_log().events()[0].cause,
            crate::model::FailureCause::CpuContention
        );
    }

    #[test]
    fn resubmit_restarts_after_recovery() {
        let mut machine = Machine::default_linux();
        // Host hog that exits after 30 s, then the machine is idle.
        machine.spawn(ProcSpec::new(
            "burst",
            ProcClass::Host,
            0,
            Demand::CpuBound {
                total_work: Some(secs(30)),
            },
            MemSpec::tiny(),
        ));
        let mut cfg = quick_cfg();
        cfg.resubmit_on_failure = true;
        let mut ctl = Controller::new(cfg, machine);
        ctl.submit(finite_guest(5));
        ctl.run_ticks(secs(120));
        let s = ctl.stats();
        assert!(s.terminated >= 1, "first attempt dies under the hog: {s:?}");
        assert_eq!(s.completed, 1, "resubmitted job finishes: {s:?}");
    }

    #[test]
    fn oversized_job_waits_for_memory() {
        let mut machine = Machine::new(fgcs_sim::machine::MachineConfig::solaris_384mb());
        machine.spawn(ProcSpec::new(
            "mem-hog",
            ProcClass::Host,
            0,
            Demand::CpuBound {
                total_work: Some(secs(20)),
            },
            MemSpec::resident(250),
        ));
        let mut ctl = Controller::new(quick_cfg(), machine);
        ctl.submit(ProcSpec::new(
            "big-job",
            ProcClass::Guest,
            0,
            Demand::CpuBound {
                total_work: Some(secs(2)),
            },
            MemSpec::resident(120), // 250 + 120 + 100 > 384: must wait
        ));
        ctl.run_ticks(secs(10));
        assert!(
            !ctl.guest_running(),
            "placement deferred under memory pressure"
        );
        ctl.run_ticks(secs(120));
        assert_eq!(ctl.stats().completed, 1, "{:?}", ctl.stats());
    }

    #[test]
    fn suspension_pauses_then_resumes_guest() {
        let mut machine = Machine::default_linux();
        // A host burst long enough to trigger suspension but shorter than
        // the spike tolerance, so the guest resumes instead of dying.
        machine.spawn(ProcSpec::new(
            "spike",
            ProcClass::Host,
            0,
            Demand::Phases {
                phases: vec![fgcs_sim::proc::Phase {
                    busy: secs(5),
                    idle: secs(300),
                }],
                repeat: true,
            },
            MemSpec::tiny(),
        ));
        let mut ctl = Controller::new(quick_cfg(), machine);
        ctl.submit(finite_guest(30));
        ctl.run_ticks(secs(60));
        let s = ctl.stats();
        assert!(s.suspensions >= 1, "{s:?}");
        assert_eq!(s.terminated, 0, "{s:?}");
        assert_eq!(s.completed, 1, "{s:?}");
    }
}
