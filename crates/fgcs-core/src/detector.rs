//! Unavailability detection.
//!
//! [`Detector`] turns the monitor's observation stream into the
//! five-state model of §4, applying the paper's timing rules:
//!
//! * a load spike above `Th2` first *suspends* the guest; only if the
//!   spike persists beyond the tolerance (1 minute in the paper's
//!   experiments) is the resource declared unavailable (S3) and the
//!   guest terminated — transient spikes "caused by a host user starting
//!   remote X applications or by some system processes" do not count;
//! * insufficient free memory for the guest working set is S4
//!   *immediately* ("the guest process must be immediately terminated to
//!   avoid memory thrashing");
//! * FGCS-service death is S5 immediately;
//! * after a failure, the machine is only harvested again once it has
//!   been calm (`LH <= Th2`, memory fits, service alive) for the harvest
//!   delay — §5.2: "the system should wait for about 5 minutes before
//!   harvesting a machine recently released from heavy host workloads".

use crate::model::{AvailState, FailureCause, LoadBand, Thresholds};
use crate::monitor::Observation;

/// Detector timing and threshold configuration. Times are in the same
/// unit as the timestamps passed to [`Detector::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// The contention thresholds.
    pub thresholds: Thresholds,
    /// Guest working-set size in MB, for S4 detection.
    pub guest_working_set_mb: u32,
    /// How long `LH > Th2` may persist (guest suspended) before S3.
    pub spike_tolerance: u64,
    /// How long the machine must stay calm after a failure before a new
    /// availability interval begins.
    pub harvest_delay: u64,
    /// The gap policy: if the observation stream goes silent for longer
    /// than this, the detector no longer knows what happened — the span
    /// since the last observation is reported as a *censoring gap*
    /// ([`Step::gap`]), any open occurrence is closed at the last
    /// observed time, and detection re-baselines from the next sample.
    /// `None` (the default everywhere) disables the policy: silence
    /// silently extends whatever state was current, which is only sound
    /// for a lossless observation stream.
    pub max_silence: Option<u64>,
}

/// A [`DetectorConfig`] that cannot work: zero timing windows or a zero
/// working set make the detector misbehave silently (a zero spike
/// tolerance turns every transient blip into S3; a zero harvest delay
/// re-harvests a machine the instant it calms; a zero working set makes
/// S4 undetectable; a zero silence window censors every sample gap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorConfigError {
    /// `spike_tolerance` was 0.
    ZeroSpikeTolerance,
    /// `harvest_delay` was 0.
    ZeroHarvestDelay,
    /// `guest_working_set_mb` was 0.
    ZeroGuestWorkingSet,
    /// `max_silence` was `Some(0)`.
    ZeroMaxSilence,
}

impl std::fmt::Display for DetectorConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorConfigError::ZeroSpikeTolerance => {
                write!(
                    f,
                    "spike_tolerance must be positive (0 turns every blip into S3)"
                )
            }
            DetectorConfigError::ZeroHarvestDelay => {
                write!(
                    f,
                    "harvest_delay must be positive (0 defeats the 5-minute rule)"
                )
            }
            DetectorConfigError::ZeroGuestWorkingSet => {
                write!(
                    f,
                    "guest_working_set_mb must be positive (0 makes S4 undetectable)"
                )
            }
            DetectorConfigError::ZeroMaxSilence => {
                write!(
                    f,
                    "max_silence must be positive when set (0 censors every gap)"
                )
            }
        }
    }
}

impl std::error::Error for DetectorConfigError {}

impl DetectorConfig {
    /// Defaults with timestamps in simulator ticks (10 ms): 1-minute
    /// spike tolerance, 5-minute harvest delay, paper thresholds, and a
    /// modest 64 MB guest working set.
    pub fn sim_default() -> Self {
        DetectorConfig {
            thresholds: Thresholds::LINUX_TESTBED,
            guest_working_set_mb: 64,
            spike_tolerance: fgcs_sim::time::minutes(1),
            harvest_delay: fgcs_sim::time::minutes(5),
            max_silence: None,
        }
    }

    /// Defaults with timestamps in seconds (used by the testbed tracer).
    pub fn wallclock_default() -> Self {
        DetectorConfig {
            thresholds: Thresholds::LINUX_TESTBED,
            guest_working_set_mb: 64,
            spike_tolerance: 60,
            harvest_delay: 300,
            max_silence: None,
        }
    }

    /// Checks the configuration for values that would make the detector
    /// silently misbehave.
    pub fn validate(&self) -> Result<(), DetectorConfigError> {
        if self.spike_tolerance == 0 {
            return Err(DetectorConfigError::ZeroSpikeTolerance);
        }
        if self.harvest_delay == 0 {
            return Err(DetectorConfigError::ZeroHarvestDelay);
        }
        if self.guest_working_set_mb == 0 {
            return Err(DetectorConfigError::ZeroGuestWorkingSet);
        }
        if self.max_silence == Some(0) {
            return Err(DetectorConfigError::ZeroMaxSilence);
        }
        Ok(())
    }
}

/// What the FGCS middleware should do to the guest job after a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestAction {
    /// Restore the guest to default priority (entering S1).
    RestoreDefaultPriority,
    /// `renice` the guest to the lowest priority (entering S2).
    SetLowestPriority,
    /// SIGSTOP the guest (transient spike above `Th2`).
    Suspend,
    /// SIGCONT the guest (spike subsided within tolerance).
    Resume,
    /// Kill the guest; the resource has failed.
    Terminate,
    /// The machine has become harvestable again after a failure.
    MachineAvailable,
}

/// Start/end edge of an unavailability occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventEdge {
    /// Unavailability began.
    Started {
        /// Failure cause.
        cause: FailureCause,
        /// Timestamp.
        at: u64,
    },
    /// Unavailability ended (machine harvestable again).
    Ended {
        /// Failure cause of the occurrence that ended.
        cause: FailureCause,
        /// When the machine became harvestable (after the harvest delay).
        at: u64,
        /// When the failure condition actually cleared — the machine
        /// came back / load dropped / memory freed. The paper's URR
        /// analysis classifies outages by *this* duration ("URR with
        /// intervals shorter than one minute" are reboots).
        calm_from: u64,
    },
}

/// Result of feeding one observation to the detector.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Model state after the observation.
    pub state: AvailState,
    /// Action for the guest-job controller, if any.
    pub action: Option<GuestAction>,
    /// Unavailability edges produced by this observation (at most two:
    /// a cause change closes one occurrence and opens another).
    pub edges: Vec<EventEdge>,
    /// A censoring gap `(silent_from, silent_until)`: the stream was
    /// silent for longer than [`DetectorConfig::max_silence`] before this
    /// observation. Whatever happened in the span is unknown; any
    /// occurrence open at `silent_from` was closed there (see
    /// [`Step::edges`]) and the interval containing the gap must be
    /// treated as censored, not as observed availability.
    pub gap: Option<(u64, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Available {
        band: LoadBand,
        spike_since: Option<u64>,
    },
    Unavailable {
        cause: FailureCause,
        calm_since: Option<u64>,
        /// For revocations: when the service first responded again. The
        /// paper's URR "interval" is the down time itself ("URR with
        /// intervals shorter than one minute" are reboots), independent
        /// of how long the load then takes to calm down.
        revived: Option<u64>,
    },
}

/// Serializable view of a [`Detector`]'s dynamic state (everything but
/// the configuration), captured by [`Detector::snapshot`]. A detector
/// rebuilt via [`Detector::restore`] with the same configuration
/// continues the observation stream exactly where the snapshot left
/// off: feeding both detectors the same subsequent samples yields
/// identical steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorSnapshot {
    /// The machine was available (S1/S2, possibly with a tolerated
    /// spike pending).
    Available {
        /// Load band of the last sample.
        band: LoadBand,
        /// When the current `LH > Th2` spike started, if one is being
        /// tolerated.
        spike_since: Option<u64>,
        /// Timestamp of the last observation.
        last_t: Option<u64>,
    },
    /// The machine was inside an unavailability occurrence (S3/S4/S5).
    Unavailable {
        /// Failure cause of the open occurrence.
        cause: FailureCause,
        /// When the machine last turned calm, if the harvest-delay clock
        /// is running.
        calm_since: Option<u64>,
        /// For revocations: when the service first responded again.
        revived: Option<u64>,
        /// Timestamp of the last observation.
        last_t: Option<u64>,
    },
}

/// The incremental unavailability detector.
#[derive(Debug, Clone)]
pub struct Detector {
    cfg: DetectorConfig,
    mode: Mode,
    /// Timestamp of the last observation, for the gap policy.
    last_t: Option<u64>,
}

impl Detector {
    /// Creates a detector; the machine starts available and idle (S1).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DetectorConfig::validate`];
    /// use [`Detector::try_new`] to handle invalid configurations.
    pub fn new(cfg: DetectorConfig) -> Self {
        Self::try_new(cfg).expect("invalid DetectorConfig")
    }

    /// Creates a detector, rejecting configurations that would make it
    /// silently misbehave.
    pub fn try_new(cfg: DetectorConfig) -> Result<Self, DetectorConfigError> {
        cfg.validate()?;
        Ok(Detector {
            cfg,
            mode: Mode::Available {
                band: LoadBand::Light,
                spike_since: None,
            },
            last_t: None,
        })
    }

    /// Configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Updates the guest working-set size used for S4 detection — called
    /// by the controller when a new guest job (with a different memory
    /// footprint) is placed on the machine.
    pub fn set_guest_working_set(&mut self, mb: u32) {
        self.cfg.guest_working_set_mb = mb;
    }

    /// Current model state.
    pub fn state(&self) -> AvailState {
        match self.mode {
            Mode::Available {
                band: LoadBand::Light,
                ..
            } => AvailState::S1,
            Mode::Available { .. } => AvailState::S2,
            Mode::Unavailable { cause, .. } => cause.state(),
        }
    }

    /// True while a guest job may run (possibly suspended).
    pub fn is_available(&self) -> bool {
        matches!(self.mode, Mode::Available { .. })
    }

    /// True while a transient load spike above `Th2` is being tolerated
    /// (the guest, if any, is suspended). New jobs should not be placed
    /// until the spike resolves one way or the other.
    pub fn spike_active(&self) -> bool {
        matches!(
            self.mode,
            Mode::Available {
                spike_since: Some(_),
                ..
            }
        )
    }

    /// Captures the detector's dynamic state for checkpointing.
    pub fn snapshot(&self) -> DetectorSnapshot {
        match self.mode {
            Mode::Available { band, spike_since } => DetectorSnapshot::Available {
                band,
                spike_since,
                last_t: self.last_t,
            },
            Mode::Unavailable {
                cause,
                calm_since,
                revived,
            } => DetectorSnapshot::Unavailable {
                cause,
                calm_since,
                revived,
                last_t: self.last_t,
            },
        }
    }

    /// Rebuilds a detector from a [`Detector::snapshot`] under `cfg`.
    /// For the restored detector to continue the stream exactly, `cfg`
    /// must equal the configuration the snapshot was taken under; the
    /// configuration is still validated so a corrupted restore cannot
    /// produce a silently misbehaving detector.
    pub fn restore(
        cfg: DetectorConfig,
        snap: DetectorSnapshot,
    ) -> Result<Detector, DetectorConfigError> {
        cfg.validate()?;
        let (mode, last_t) = match snap {
            DetectorSnapshot::Available {
                band,
                spike_since,
                last_t,
            } => (Mode::Available { band, spike_since }, last_t),
            DetectorSnapshot::Unavailable {
                cause,
                calm_since,
                revived,
                last_t,
            } => (
                Mode::Unavailable {
                    cause,
                    calm_since,
                    revived,
                },
                last_t,
            ),
        };
        Ok(Detector { cfg, mode, last_t })
    }

    /// Feeds one observation taken at time `t`. Timestamps must be
    /// non-decreasing across calls.
    ///
    /// If [`DetectorConfig::max_silence`] is set and the stream was
    /// silent for longer than that since the previous observation, the
    /// silent span is reported as [`Step::gap`]: any open occurrence is
    /// closed at the moment the silence began (we cannot claim it lasted
    /// through a span we did not observe) and the detector re-baselines
    /// before processing `obs` normally.
    pub fn observe(&mut self, t: u64, obs: &Observation) -> Step {
        let mut edges = Vec::new();
        let mut action = None;

        let mut gap = None;
        if let (Some(max_silence), Some(last)) = (self.cfg.max_silence, self.last_t) {
            if t.saturating_sub(last) > max_silence {
                gap = Some((last, t));
                if let Mode::Unavailable { cause, .. } = self.mode {
                    edges.push(EventEdge::Ended {
                        cause,
                        at: last,
                        calm_from: last,
                    });
                }
                self.mode = Mode::Available {
                    band: LoadBand::Light,
                    spike_since: None,
                };
            }
        }
        self.last_t = Some(t);

        let mem_ok = obs.free_mem_mb >= self.cfg.guest_working_set_mb;

        match self.mode {
            Mode::Available { band, spike_since } => {
                if !obs.alive {
                    self.fail(FailureCause::Revocation, t, &mut edges);
                    action = Some(GuestAction::Terminate);
                } else if !mem_ok {
                    self.fail(FailureCause::MemoryThrashing, t, &mut edges);
                    action = Some(GuestAction::Terminate);
                } else {
                    match self.cfg.thresholds.classify(obs.host_load) {
                        LoadBand::Excessive => match spike_since {
                            None => {
                                // First excessive sample: suspend, start
                                // the tolerance clock.
                                self.mode = Mode::Available {
                                    band,
                                    spike_since: Some(t),
                                };
                                action = Some(GuestAction::Suspend);
                            }
                            Some(s0) if t.saturating_sub(s0) >= self.cfg.spike_tolerance => {
                                self.fail(FailureCause::CpuContention, t, &mut edges);
                                action = Some(GuestAction::Terminate);
                            }
                            Some(_) => {} // still within tolerance, stay suspended
                        },
                        new_band @ (LoadBand::Light | LoadBand::Heavy) => {
                            if spike_since.is_some() {
                                // Spike subsided within tolerance.
                                action = Some(GuestAction::Resume);
                            } else if new_band != band {
                                action = Some(match new_band {
                                    LoadBand::Light => GuestAction::RestoreDefaultPriority,
                                    _ => GuestAction::SetLowestPriority,
                                });
                            }
                            self.mode = Mode::Available {
                                band: new_band,
                                spike_since: None,
                            };
                        }
                    }
                }
            }
            Mode::Unavailable {
                cause,
                calm_since,
                revived,
            } => {
                // A machine death during a contention outage is a new,
                // different occurrence: close one, open the other.
                if !obs.alive && cause != FailureCause::Revocation {
                    edges.push(EventEdge::Ended {
                        cause,
                        at: t,
                        calm_from: t,
                    });
                    edges.push(EventEdge::Started {
                        cause: FailureCause::Revocation,
                        at: t,
                    });
                    self.mode = Mode::Unavailable {
                        cause: FailureCause::Revocation,
                        calm_since: None,
                        revived: None,
                    };
                } else {
                    // For a revocation, remember when the service first
                    // came back (resets if the machine flaps).
                    let revived = if cause == FailureCause::Revocation {
                        if obs.alive {
                            Some(revived.unwrap_or(t))
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                    let calm = obs.alive
                        && mem_ok
                        && self.cfg.thresholds.classify(obs.host_load) != LoadBand::Excessive;
                    if calm {
                        let since = calm_since.unwrap_or(t);
                        if t.saturating_sub(since) >= self.cfg.harvest_delay {
                            let calm_from = if cause == FailureCause::Revocation {
                                revived.unwrap_or(since)
                            } else {
                                since
                            };
                            edges.push(EventEdge::Ended {
                                cause,
                                at: t,
                                calm_from,
                            });
                            let band = match self.cfg.thresholds.classify(obs.host_load) {
                                LoadBand::Light => LoadBand::Light,
                                _ => LoadBand::Heavy,
                            };
                            self.mode = Mode::Available {
                                band,
                                spike_since: None,
                            };
                            action = Some(GuestAction::MachineAvailable);
                        } else {
                            self.mode = Mode::Unavailable {
                                cause,
                                calm_since: Some(since),
                                revived,
                            };
                        }
                    } else {
                        self.mode = Mode::Unavailable {
                            cause,
                            calm_since: None,
                            revived,
                        };
                    }
                }
            }
        }

        Step {
            state: self.state(),
            action,
            edges,
            gap,
        }
    }

    fn fail(&mut self, cause: FailureCause, t: u64, edges: &mut Vec<EventEdge>) {
        edges.push(EventEdge::Started { cause, at: t });
        self.mode = Mode::Unavailable {
            cause,
            calm_since: None,
            revived: None,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            thresholds: Thresholds::LINUX_TESTBED,
            guest_working_set_mb: 100,
            spike_tolerance: 60,
            harvest_delay: 300,
            max_silence: None,
        }
    }

    fn obs(load: f64) -> Observation {
        Observation {
            host_load: load,
            free_mem_mb: 1000,
            alive: true,
        }
    }

    #[test]
    fn light_load_is_s1() {
        let mut d = Detector::new(cfg());
        let s = d.observe(0, &obs(0.1));
        assert_eq!(s.state, AvailState::S1);
        assert!(s.edges.is_empty());
        assert!(s.action.is_none());
    }

    #[test]
    fn heavy_load_moves_to_s2_with_renice() {
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.1));
        let s = d.observe(10, &obs(0.4));
        assert_eq!(s.state, AvailState::S2);
        assert_eq!(s.action, Some(GuestAction::SetLowestPriority));
        // And back to S1 restores priority.
        let s = d.observe(20, &obs(0.1));
        assert_eq!(s.state, AvailState::S1);
        assert_eq!(s.action, Some(GuestAction::RestoreDefaultPriority));
    }

    #[test]
    fn transient_spike_suspends_then_resumes() {
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.3));
        let s = d.observe(10, &obs(0.9));
        assert_eq!(s.action, Some(GuestAction::Suspend));
        assert_eq!(
            s.state,
            AvailState::S2,
            "state stays S2 during a transient spike"
        );
        // Spike ends within tolerance.
        let s = d.observe(40, &obs(0.3));
        assert_eq!(s.action, Some(GuestAction::Resume));
        assert_eq!(s.state, AvailState::S2);
        assert!(s.edges.is_empty(), "no unavailability recorded");
    }

    #[test]
    fn persistent_spike_is_s3() {
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.1));
        d.observe(10, &obs(0.9));
        let s = d.observe(40, &obs(0.95));
        assert!(s.edges.is_empty(), "still within tolerance");
        let s = d.observe(70, &obs(0.9)); // 60 units after spike start
        assert_eq!(s.state, AvailState::S3);
        assert_eq!(s.action, Some(GuestAction::Terminate));
        assert_eq!(
            s.edges,
            vec![EventEdge::Started {
                cause: FailureCause::CpuContention,
                at: 70
            }]
        );
    }

    #[test]
    fn spike_state_remembers_prior_band() {
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.1)); // S1
        let s = d.observe(10, &obs(0.9));
        assert_eq!(s.state, AvailState::S1, "S1 spike stays S1 while suspended");
    }

    #[test]
    fn memory_pressure_is_immediate_s4() {
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.1));
        let o = Observation {
            host_load: 0.1,
            free_mem_mb: 99,
            alive: true,
        };
        let s = d.observe(10, &o);
        assert_eq!(s.state, AvailState::S4);
        assert_eq!(s.action, Some(GuestAction::Terminate));
        assert_eq!(
            s.edges,
            vec![EventEdge::Started {
                cause: FailureCause::MemoryThrashing,
                at: 10
            }]
        );
    }

    #[test]
    fn service_death_is_immediate_s5() {
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.1));
        let s = d.observe(10, &Observation::dead());
        assert_eq!(s.state, AvailState::S5);
        assert_eq!(
            s.edges,
            vec![EventEdge::Started {
                cause: FailureCause::Revocation,
                at: 10
            }]
        );
    }

    #[test]
    fn recovery_requires_harvest_delay() {
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.1));
        d.observe(10, &Observation::dead());
        // Machine back, calm — but the delay has not elapsed.
        let s = d.observe(20, &obs(0.1));
        assert_eq!(s.state, AvailState::S5);
        assert!(s.edges.is_empty());
        let s = d.observe(200, &obs(0.1));
        assert_eq!(s.state, AvailState::S5);
        // 300 after calm start.
        let s = d.observe(320, &obs(0.1));
        assert_eq!(s.state, AvailState::S1);
        assert_eq!(s.action, Some(GuestAction::MachineAvailable));
        assert_eq!(
            s.edges,
            vec![EventEdge::Ended {
                cause: FailureCause::Revocation,
                at: 320,
                calm_from: 20
            }]
        );
    }

    #[test]
    fn urr_interval_is_the_down_time_not_the_calm_time() {
        // Machine dies at t=10, comes back at t=40, but a load blip at
        // t=100 resets the calm clock. The recorded raw outage must still
        // be the ~30 s of down time, so the paper's reboot classification
        // (< 1 minute) is unaffected by post-boot load noise.
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.1));
        d.observe(10, &Observation::dead());
        d.observe(40, &obs(0.1)); // back up, calm begins
        d.observe(100, &obs(0.9)); // transient blip resets calm
        d.observe(130, &obs(0.1)); // calm again from 130
        let s = d.observe(440, &obs(0.1)); // 130 + 300 harvest delay
        assert_eq!(
            s.edges,
            vec![EventEdge::Ended {
                cause: FailureCause::Revocation,
                at: 440,
                calm_from: 40
            }]
        );
    }

    #[test]
    fn urr_revival_resets_if_the_machine_flaps() {
        let mut d = Detector::new(cfg());
        d.observe(0, &Observation::dead());
        d.observe(30, &obs(0.1)); // revived at 30...
        d.observe(60, &Observation::dead()); // ...but dies again
        d.observe(90, &obs(0.1)); // final revival at 90
        let s = d.observe(390, &obs(0.1));
        assert_eq!(
            s.edges,
            vec![EventEdge::Ended {
                cause: FailureCause::Revocation,
                at: 390,
                calm_from: 90
            }]
        );
    }

    #[test]
    fn calm_clock_resets_on_new_turbulence() {
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.9));
        d.observe(60, &obs(0.9)); // S3
        assert_eq!(d.state(), AvailState::S3);
        d.observe(100, &obs(0.1)); // calm begins
        d.observe(300, &obs(0.9)); // turbulence: calm clock resets
        let s = d.observe(410, &obs(0.1)); // calm again at 410
        assert_eq!(s.state, AvailState::S3, "delay must restart");
        let s = d.observe(710, &obs(0.1));
        assert_eq!(s.state, AvailState::S1);
    }

    #[test]
    fn recovery_into_heavy_load_lands_in_s2() {
        let mut d = Detector::new(cfg());
        d.observe(0, &Observation::dead());
        d.observe(100, &obs(0.5));
        let s = d.observe(400, &obs(0.5));
        assert_eq!(s.state, AvailState::S2);
    }

    #[test]
    fn cause_change_splits_occurrences() {
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.9));
        d.observe(60, &obs(0.9)); // S3 starts
        let s = d.observe(120, &Observation::dead()); // machine rebooted
        assert_eq!(s.state, AvailState::S5);
        assert_eq!(
            s.edges,
            vec![
                EventEdge::Ended {
                    cause: FailureCause::CpuContention,
                    at: 120,
                    calm_from: 120
                },
                EventEdge::Started {
                    cause: FailureCause::Revocation,
                    at: 120
                },
            ]
        );
    }

    #[test]
    fn s4_requires_working_set_threshold_exactly() {
        let mut d = Detector::new(cfg());
        let o = Observation {
            host_load: 0.1,
            free_mem_mb: 100,
            alive: true,
        };
        let s = d.observe(0, &o);
        assert_eq!(
            s.state,
            AvailState::S1,
            "exactly fitting working set is fine"
        );
    }

    #[test]
    fn zero_config_values_are_rejected() {
        let mut c = cfg();
        c.spike_tolerance = 0;
        assert_eq!(
            Detector::try_new(c).unwrap_err(),
            DetectorConfigError::ZeroSpikeTolerance
        );
        let mut c = cfg();
        c.harvest_delay = 0;
        assert_eq!(
            Detector::try_new(c).unwrap_err(),
            DetectorConfigError::ZeroHarvestDelay
        );
        let mut c = cfg();
        c.guest_working_set_mb = 0;
        assert_eq!(
            Detector::try_new(c).unwrap_err(),
            DetectorConfigError::ZeroGuestWorkingSet
        );
        let mut c = cfg();
        c.max_silence = Some(0);
        assert_eq!(
            Detector::try_new(c).unwrap_err(),
            DetectorConfigError::ZeroMaxSilence
        );
        assert!(Detector::try_new(cfg()).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid DetectorConfig")]
    fn new_panics_on_invalid_config() {
        let mut c = cfg();
        c.harvest_delay = 0;
        let _ = Detector::new(c);
    }

    #[test]
    fn silence_without_policy_extends_state() {
        // Without max_silence, a long gap changes nothing: unavailability
        // silently spans it (the pre-hardening behavior, sound only for
        // lossless streams).
        let mut d = Detector::new(cfg());
        d.observe(0, &obs(0.1));
        d.observe(10, &Observation::dead());
        let s = d.observe(100_000, &obs(0.1));
        assert_eq!(s.gap, None);
        assert_eq!(s.state, AvailState::S5, "still in the old occurrence");
    }

    #[test]
    fn gap_closes_open_occurrence_at_last_observation() {
        let mut c = cfg();
        c.max_silence = Some(120);
        let mut d = Detector::new(c);
        d.observe(0, &obs(0.1));
        d.observe(10, &Observation::dead()); // S5 occurrence opens at 10
        d.observe(20, &Observation::dead());
        // Stream goes silent for 980 > 120: we cannot claim the outage
        // lasted until 1000.
        let s = d.observe(1000, &obs(0.1));
        assert_eq!(s.gap, Some((20, 1000)));
        assert_eq!(
            s.edges,
            vec![EventEdge::Ended {
                cause: FailureCause::Revocation,
                at: 20,
                calm_from: 20
            }]
        );
        assert_eq!(s.state, AvailState::S1, "re-baselined from the new sample");
    }

    #[test]
    fn gap_while_available_censors_without_edges() {
        let mut c = cfg();
        c.max_silence = Some(120);
        let mut d = Detector::new(c);
        d.observe(0, &obs(0.1));
        let s = d.observe(500, &obs(0.1));
        assert_eq!(s.gap, Some((0, 500)));
        assert!(s.edges.is_empty(), "nothing was open, nothing to close");
        assert_eq!(s.state, AvailState::S1);
    }

    #[test]
    fn gap_then_immediate_failure_opens_fresh_occurrence() {
        let mut c = cfg();
        c.max_silence = Some(120);
        let mut d = Detector::new(c);
        d.observe(0, &obs(0.9));
        d.observe(60, &obs(0.9)); // S3 opens at 60
        let s = d.observe(1000, &Observation::dead());
        assert_eq!(s.gap, Some((60, 1000)));
        assert_eq!(
            s.edges,
            vec![
                EventEdge::Ended {
                    cause: FailureCause::CpuContention,
                    at: 60,
                    calm_from: 60
                },
                EventEdge::Started {
                    cause: FailureCause::Revocation,
                    at: 1000
                },
            ],
            "gap closes the old occurrence, the new observation opens a new one"
        );
        assert_eq!(s.state, AvailState::S5);
    }

    #[test]
    fn spike_clock_does_not_survive_a_gap() {
        let mut c = cfg();
        c.max_silence = Some(120);
        let mut d = Detector::new(c);
        d.observe(0, &obs(0.1));
        d.observe(10, &obs(0.9)); // spike clock starts at 10
                                  // 990 of silence; a naive detector would declare S3 here because
                                  // "the spike persisted 990 > 60".
        let s = d.observe(1000, &obs(0.9));
        assert_eq!(s.gap, Some((10, 1000)));
        assert_ne!(
            s.state,
            AvailState::S3,
            "spike tolerance restarts after a gap"
        );
        assert_eq!(s.action, Some(GuestAction::Suspend));
    }

    #[test]
    fn gap_exactly_at_max_silence_is_not_censored() {
        let mut c = cfg();
        c.max_silence = Some(120);
        let mut d = Detector::new(c);
        d.observe(0, &obs(0.1));
        let s = d.observe(120, &obs(0.1));
        assert_eq!(
            s.gap, None,
            "boundary: gap must strictly exceed max_silence"
        );
    }

    #[test]
    fn full_cycle_s1_to_s3_to_s1() {
        let mut d = Detector::new(cfg());
        let mut edges = Vec::new();
        let loads = [
            (0u64, 0.1),
            (30, 0.7), // spike
            (90, 0.7), // persists -> S3
            (120, 0.1),
            (420, 0.1), // recovered
        ];
        for (t, l) in loads {
            edges.extend(d.observe(t, &obs(l)).edges);
        }
        assert_eq!(
            edges,
            vec![
                EventEdge::Started {
                    cause: FailureCause::CpuContention,
                    at: 90
                },
                EventEdge::Ended {
                    cause: FailureCause::CpuContention,
                    at: 420,
                    calm_from: 120
                },
            ]
        );
        assert_eq!(d.state(), AvailState::S1);
    }

    /// Snapshot/restore at *every* prefix of an eventful stream: the
    /// restored detector must produce exactly the same steps as the
    /// uninterrupted one for the remainder — the invariant the service's
    /// crash-safe checkpointing is built on.
    #[test]
    fn snapshot_restore_continues_stream_exactly() {
        let mut silent_cfg = cfg();
        silent_cfg.max_silence = Some(600);
        // Spike, contention, recovery, death, revival, and a censoring
        // gap: every Mode variant and timer is exercised.
        let samples: Vec<(u64, Observation)> = vec![
            (0, obs(0.1)),
            (30, obs(0.4)),
            (60, obs(0.7)),
            (150, obs(0.7)), // tolerance exceeded -> S3
            (180, obs(0.1)),
            (500, obs(0.1)), // harvest delay passed -> S1
            (530, Observation::dead()),
            (560, obs(0.2)),  // revived, calm clock running
            (900, obs(0.2)),  // harvested again
            (1700, obs(0.1)), // 800 s silence -> gap
            (1730, obs(0.9)),
        ];
        for cut in 0..samples.len() {
            let mut full = Detector::new(silent_cfg);
            for (t, o) in &samples[..cut] {
                full.observe(*t, o);
            }
            let mut restored =
                Detector::restore(silent_cfg, full.snapshot()).expect("restore succeeds");
            for (t, o) in &samples[cut..] {
                let a = full.observe(*t, o);
                let b = restored.observe(*t, o);
                assert_eq!(a, b, "divergence after cut {cut} at t {t}");
            }
            assert_eq!(full.snapshot(), restored.snapshot(), "cut {cut}");
        }
    }

    #[test]
    fn restore_rejects_invalid_config() {
        let d = Detector::new(cfg());
        let mut bad = cfg();
        bad.spike_tolerance = 0;
        assert_eq!(
            Detector::restore(bad, d.snapshot()).err(),
            Some(DetectorConfigError::ZeroSpikeTolerance)
        );
    }
}
