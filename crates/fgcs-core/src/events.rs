//! Unavailability occurrences and availability intervals.
//!
//! The §5 trace "contains the start and end time of each occurrence of
//! resource unavailability \[and\] the corresponding failure state". This
//! module assembles the detector's edges into such occurrences and
//! reconstructs the complementary *availability intervals* — "periods
//! during which a guest application may utilize host resources or get
//! suspended, but does not fail" (§5.2, Figure 6).

use crate::detector::EventEdge;
use crate::model::FailureCause;

/// One occurrence of resource unavailability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnavailEvent {
    /// Failure cause (S3/S4/S5).
    pub cause: FailureCause,
    /// When the unavailability began.
    pub start: u64,
    /// When the machine became harvestable again (including the harvest
    /// delay); `None` if the trace ended during the outage.
    pub end: Option<u64>,
    /// When the failure condition itself cleared — for S5, when the
    /// machine came back up. The paper classifies URR occurrences with
    /// `raw_end - start < 1 minute` as machine reboots.
    pub raw_end: Option<u64>,
}

impl UnavailEvent {
    /// Outage duration up to harvestability, if closed.
    pub fn duration(&self) -> Option<u64> {
        self.end.map(|e| e - self.start)
    }

    /// Duration of the failure condition itself (excluding the harvest
    /// delay), if closed.
    pub fn raw_duration(&self) -> Option<u64> {
        self.raw_end.map(|e| e.saturating_sub(self.start))
    }
}

/// Accumulates detector edges into a list of unavailability occurrences.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    events: Vec<UnavailEvent>,
    open: bool,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Applies one detector edge.
    ///
    /// # Panics
    /// Panics on inconsistent edge sequences (an `Ended` without a
    /// matching open `Started`, or a cause mismatch) — these indicate a
    /// bug in the caller, not recoverable data.
    pub fn apply(&mut self, edge: EventEdge) {
        match edge {
            EventEdge::Started { cause, at } => {
                assert!(!self.open, "Started while an occurrence is open");
                self.events.push(UnavailEvent {
                    cause,
                    start: at,
                    end: None,
                    raw_end: None,
                });
                self.open = true;
            }
            EventEdge::Ended {
                cause,
                at,
                calm_from,
            } => {
                assert!(self.open, "Ended without an open occurrence");
                let last = self.events.last_mut().expect("open implies non-empty");
                assert_eq!(last.cause, cause, "edge cause mismatch");
                last.end = Some(at);
                last.raw_end = Some(calm_from.max(last.start));
                self.open = false;
            }
        }
    }

    /// Applies every edge of a detector step.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = EventEdge>) {
        for e in edges {
            self.apply(e);
        }
    }

    /// The recorded occurrences, in start order.
    pub fn events(&self) -> &[UnavailEvent] {
        &self.events
    }

    /// True while an occurrence is still open.
    pub fn has_open_event(&self) -> bool {
        self.open
    }

    /// Number of occurrences attributed to `cause`.
    pub fn count_by_cause(&self, cause: FailureCause) -> usize {
        self.events.iter().filter(|e| e.cause == cause).count()
    }

    /// Reconstructs availability intervals over the observation span
    /// `[span_start, span_end)`: the complement of unavailability
    /// periods. Zero-length intervals are dropped.
    ///
    /// Events are assumed non-overlapping and in start order, which the
    /// detector guarantees.
    pub fn availability_intervals(&self, span_start: u64, span_end: u64) -> Vec<(u64, u64)> {
        let mut intervals = Vec::new();
        let mut cursor = span_start;
        for e in &self.events {
            let s = e.start.clamp(span_start, span_end);
            if s > cursor {
                intervals.push((cursor, s));
            }
            cursor = cursor.max(match e.end {
                Some(t) => t.min(span_end),
                None => span_end,
            });
            if cursor >= span_end {
                break;
            }
        }
        if cursor < span_end {
            intervals.push((cursor, span_end));
        }
        intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(cause: FailureCause, at: u64) -> EventEdge {
        EventEdge::Started { cause, at }
    }

    fn ended(cause: FailureCause, at: u64) -> EventEdge {
        EventEdge::Ended {
            cause,
            at,
            calm_from: at,
        }
    }

    #[test]
    fn assembles_occurrences() {
        let mut log = EventLog::new();
        log.apply(started(FailureCause::CpuContention, 100));
        log.apply(ended(FailureCause::CpuContention, 250));
        log.apply(started(FailureCause::Revocation, 400));
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].duration(), Some(150));
        assert_eq!(log.events()[1].end, None);
        assert!(log.has_open_event());
    }

    #[test]
    fn counts_by_cause() {
        let mut log = EventLog::new();
        for (c, s, e) in [
            (FailureCause::CpuContention, 0u64, 10u64),
            (FailureCause::CpuContention, 20, 30),
            (FailureCause::MemoryThrashing, 40, 50),
        ] {
            log.apply(started(c, s));
            log.apply(ended(c, e));
        }
        assert_eq!(log.count_by_cause(FailureCause::CpuContention), 2);
        assert_eq!(log.count_by_cause(FailureCause::MemoryThrashing), 1);
        assert_eq!(log.count_by_cause(FailureCause::Revocation), 0);
    }

    #[test]
    fn intervals_complement_events() {
        let mut log = EventLog::new();
        log.apply(started(FailureCause::CpuContention, 100));
        log.apply(ended(FailureCause::CpuContention, 200));
        log.apply(started(FailureCause::Revocation, 500));
        log.apply(ended(FailureCause::Revocation, 600));
        let ivals = log.availability_intervals(0, 1000);
        assert_eq!(ivals, vec![(0, 100), (200, 500), (600, 1000)]);
    }

    #[test]
    fn open_event_truncates_last_interval() {
        let mut log = EventLog::new();
        log.apply(started(FailureCause::CpuContention, 700));
        let ivals = log.availability_intervals(0, 1000);
        assert_eq!(ivals, vec![(0, 700)]);
    }

    #[test]
    fn no_events_is_one_full_interval() {
        let log = EventLog::new();
        assert_eq!(log.availability_intervals(10, 20), vec![(10, 20)]);
    }

    #[test]
    fn event_at_span_start_drops_empty_interval() {
        let mut log = EventLog::new();
        log.apply(started(FailureCause::Revocation, 0));
        log.apply(ended(FailureCause::Revocation, 50));
        let ivals = log.availability_intervals(0, 100);
        assert_eq!(ivals, vec![(50, 100)]);
    }

    #[test]
    fn events_outside_span_are_clamped() {
        let mut log = EventLog::new();
        log.apply(started(FailureCause::Revocation, 0));
        log.apply(ended(FailureCause::Revocation, 50));
        let ivals = log.availability_intervals(10, 40);
        assert!(ivals.is_empty());
    }

    #[test]
    #[should_panic(expected = "Ended without an open occurrence")]
    fn rejects_orphan_end() {
        EventLog::new().apply(ended(FailureCause::Revocation, 5));
    }

    #[test]
    #[should_panic(expected = "Started while an occurrence is open")]
    fn rejects_double_start() {
        let mut log = EventLog::new();
        log.apply(started(FailureCause::Revocation, 5));
        log.apply(started(FailureCause::Revocation, 6));
    }

    #[test]
    fn detector_edges_round_trip() {
        use crate::detector::{Detector, DetectorConfig};
        use crate::monitor::Observation;
        let mut d = Detector::new(DetectorConfig {
            thresholds: crate::model::Thresholds::LINUX_TESTBED,
            guest_working_set_mb: 10,
            spike_tolerance: 60,
            harvest_delay: 300,
            max_silence: None,
        });
        let mut log = EventLog::new();
        let samples: Vec<(u64, f64)> = (0..200)
            .map(|i| {
                let t = i * 15;
                let load = if (600..1500).contains(&t) { 0.95 } else { 0.05 };
                (t, load)
            })
            .collect();
        for (t, load) in samples {
            let step = d.observe(
                t,
                &Observation {
                    host_load: load,
                    free_mem_mb: 100,
                    alive: true,
                },
            );
            log.extend(step.edges);
        }
        assert_eq!(log.events().len(), 1);
        let e = log.events()[0];
        assert_eq!(e.cause, FailureCause::CpuContention);
        assert!(e.start >= 660 && e.start <= 675, "start {}", e.start);
        assert!(e.end.unwrap() >= 1800, "end {:?}", e.end);
        assert!(!log.has_open_event());
    }
}
