//! Capped exponential backoff with optional deterministic jitter.
//!
//! Three subsystems grew their own copy of the same retry arithmetic:
//! the testbed supervisor's crash-retry delays (`SupervisorConfig`),
//! the service client's reconnect loop, and the cluster router's
//! failover retries. They now all route through this module, so the
//! doubling rule, the cap clamp and the overflow guard are pinned in
//! exactly one place.
//!
//! The unit is deliberately abstract: the supervisor counts seconds,
//! the clients count milliseconds. Callers multiply the returned unit
//! count by whatever their unit is.

/// A capped-exponential-backoff schedule: `base * 2^(attempt-1)`,
/// clamped to `cap`, in caller-defined units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-attempt delay, in caller-defined units.
    pub base: u64,
    /// Delay ceiling, same units.
    pub cap: u64,
}

impl BackoffPolicy {
    /// The delay before the `attempt`-th consecutive retry (1-based),
    /// without jitter.
    pub fn delay(&self, attempt: u32) -> u64 {
        backoff_units(self.base, self.cap, attempt)
    }

    /// The delay before the `attempt`-th consecutive retry (1-based),
    /// with deterministic jitter: a value in `[delay/2, delay]`, keyed
    /// by `seed` and `attempt`. "Equal jitter" keeps retries spread out
    /// without ever waiting longer than the un-jittered schedule, and
    /// keying the jitter off a caller-supplied seed keeps retry timing
    /// reproducible in tests and replays.
    pub fn delay_jittered(&self, attempt: u32, seed: u64) -> u64 {
        let d = self.delay(attempt);
        let half = d / 2;
        let spread = d - half;
        if spread == 0 {
            return d;
        }
        half + mix64(seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % (spread + 1)
    }
}

/// Capped exponential backoff after the `attempt`-th consecutive
/// failure (1-based): `base * 2^(attempt-1)`, capped at `cap`. The
/// shift exponent is clamped at 20 so huge attempt counters cannot
/// overflow the multiply before the cap applies.
pub fn backoff_units(base: u64, cap: u64, attempt: u32) -> u64 {
    base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
        .min(cap)
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash for jitter.
/// fgcs-core has no RNG dependency, and backoff jitter only needs
/// decorrelation, not cryptographic quality.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_cap() {
        let p = BackoffPolicy { base: 60, cap: 960 };
        assert_eq!(p.delay(1), 60);
        assert_eq!(p.delay(2), 120);
        assert_eq!(p.delay(3), 240);
        assert_eq!(p.delay(4), 480);
        assert_eq!(p.delay(5), 960);
        assert_eq!(p.delay(6), 960, "cap clamps every later attempt");
        assert_eq!(p.delay(100), 960, "huge attempts stay at the cap");
    }

    #[test]
    fn attempt_zero_and_overflow_are_safe() {
        let p = BackoffPolicy {
            base: 1,
            cap: u64::MAX,
        };
        // Attempt 0 is treated like attempt 1 (saturating_sub).
        assert_eq!(p.delay(0), 1);
        // The shift exponent clamps at 20; the multiply saturates.
        assert_eq!(p.delay(u32::MAX), 1 << 20);
        let big = BackoffPolicy {
            base: u64::MAX,
            cap: u64::MAX,
        };
        assert_eq!(big.delay(50), u64::MAX);
    }

    #[test]
    fn jitter_stays_in_upper_half_and_is_deterministic() {
        let p = BackoffPolicy {
            base: 100,
            cap: 10_000,
        };
        for attempt in 1..=8 {
            let d = p.delay(attempt);
            for seed in 0..64u64 {
                let j = p.delay_jittered(attempt, seed);
                assert!(j >= d / 2 && j <= d, "jitter {j} outside [{}, {d}]", d / 2);
                assert_eq!(j, p.delay_jittered(attempt, seed), "deterministic");
            }
        }
        // Different seeds actually spread (not all identical).
        let spread: std::collections::BTreeSet<u64> =
            (0..64u64).map(|s| p.delay_jittered(4, s)).collect();
        assert!(spread.len() > 8, "jitter must decorrelate seeds");
    }

    #[test]
    fn zero_delay_jitter_is_zero() {
        let p = BackoffPolicy { base: 0, cap: 0 };
        assert_eq!(p.delay_jittered(3, 7), 0);
    }

    #[test]
    fn matches_supervisor_schedule() {
        // The testbed supervisor's historical schedule (base 60 s,
        // cap 960 s) must be reproduced exactly by the shared helper.
        for attempt in 0u32..64 {
            let legacy = 60u64
                .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
                .min(960);
            assert_eq!(backoff_units(60, 960, attempt), legacy);
        }
    }
}
