//! The §3.2 resource-contention experiments.
//!
//! This is the offline experiment harness the paper uses to derive the
//! two thresholds: run a host group alone to measure its isolated CPU
//! usage `LH`, run it again with a guest process, and report the
//! *reduction rate of host CPU usage* — plus the guest-side and
//! memory-side variants behind Figures 2–4 and Table 1.

use fgcs_sim::machine::{Machine, MachineConfig};
use fgcs_sim::proc::ProcSpec;
use fgcs_sim::time::secs;
use fgcs_sim::workloads::{musbus, spec, synthetic};
use fgcs_stats::rng::Rng;

/// Harness configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionConfig {
    /// Settling time before measurement starts, seconds. Lets quantum
    /// counters and duty-cycle phases reach steady state.
    pub warmup_secs: u64,
    /// Measurement window, seconds.
    pub measure_secs: u64,
    /// Random host-group combinations averaged per data point ("for each
    /// tested host group, multiple combinations of host processes were
    /// used", §3.2.1).
    pub combos: usize,
    /// Base seed; every data point derives an independent stream.
    pub seed: u64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            warmup_secs: 20,
            measure_secs: 240,
            combos: 12,
            seed: 0x46474353,
        }
    }
}

impl ContentionConfig {
    /// A cheaper configuration for tests and benchmarks.
    pub fn quick() -> Self {
        ContentionConfig {
            warmup_secs: 10,
            measure_secs: 120,
            combos: 6,
            seed: 0x46474353,
        }
    }
}

/// Result of measuring one host group against one guest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupMeasurement {
    /// Host CPU usage measured with no guest present (the paper's `LH`).
    pub lh_isolated: f64,
    /// Host CPU usage measured with the guest running.
    pub lh_contended: f64,
    /// `(lh_isolated − lh_contended) / lh_isolated`, floored at 0.
    pub reduction_rate: f64,
    /// CPU usage achieved by the guest during the contended run.
    pub guest_usage: f64,
    /// Whether the contended run thrashed memory at any point.
    pub thrashing: bool,
}

/// Runs a host group alone and then together with `guest`, on fresh
/// machines of the given configuration.
pub fn measure_group(
    machine_cfg: &MachineConfig,
    hosts: &[ProcSpec],
    guest: Option<&ProcSpec>,
    cfg: &ContentionConfig,
) -> GroupMeasurement {
    // Isolated run.
    let mut alone = Machine::new(machine_cfg.clone());
    for h in hosts {
        alone.spawn(h.clone());
    }
    alone.run_ticks(secs(cfg.warmup_secs));
    let iso = alone.measure(secs(cfg.measure_secs));
    let lh_isolated = iso.host_load();

    // Contended run.
    let mut together = Machine::new(machine_cfg.clone());
    for h in hosts {
        together.spawn(h.clone());
    }
    if let Some(g) = guest {
        together.spawn(g.clone());
    }
    let thrash_at_start = together.is_thrashing();
    together.run_ticks(secs(cfg.warmup_secs));
    let con = together.measure(secs(cfg.measure_secs));
    let lh_contended = con.host_load();

    let reduction_rate = if lh_isolated > 0.0 {
        ((lh_isolated - lh_contended) / lh_isolated).max(0.0)
    } else {
        0.0
    };
    GroupMeasurement {
        lh_isolated,
        lh_contended,
        reduction_rate,
        guest_usage: con.guest_load(),
        thrashing: thrash_at_start || together.is_thrashing(),
    }
}

/// One point of the Figure 1 curves: the mean reduction rate over
/// `cfg.combos` random host-group combinations with the given target
/// `LH`, group size `m`, and guest nice value.
pub fn reduction_point(lh: f64, m: usize, guest_nice: i8, cfg: &ContentionConfig) -> f64 {
    // Low LH values cannot be split across large groups without
    // violating the per-member usage floor; cap the group size the way
    // the paper's experimenters would (you cannot build a 5-process
    // group that only uses 5% of the CPU in total).
    let m = m.min(synthetic::max_group_size(lh));
    // Combos fan out across workers; each derives its RNG purely from
    // (seed, combo index), and the rates are summed in combo order on
    // the calling thread, so the mean is bit-identical to the serial
    // loop at any worker count. Called from inside a sweep's worker this
    // runs inline (fgcs-par never nests pools).
    let rates = fgcs_par::par_jobs(cfg.combos, |combo| {
        // Independent deterministic stream per (LH, m, nice, combo).
        let stream = (lh * 1000.0) as u64
            ^ ((m as u64) << 20)
            ^ ((guest_nice as u64) << 32)
            ^ ((combo as u64) << 40);
        let mut rng = Rng::for_stream(cfg.seed, stream);
        let hosts = synthetic::host_group(&mut rng, lh, m);
        let guest = synthetic::guest_process(guest_nice);
        measure_group(&MachineConfig::default(), &hosts, Some(&guest), cfg).reduction_rate
    });
    rates.iter().sum::<f64>() / cfg.combos as f64
}

/// A row of the Figure 1 data: group size, target load, mean reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Row {
    /// Target isolated host load.
    pub lh: f64,
    /// Host group size `M`.
    pub m: usize,
    /// Mean reduction rate of host CPU usage.
    pub reduction: f64,
}

/// Sweeps Figure 1: `LH ∈ lh_values × M ∈ m_values` at one guest nice
/// value, in parallel.
pub fn fig1_sweep(
    guest_nice: i8,
    lh_values: &[f64],
    m_values: &[usize],
    cfg: &ContentionConfig,
) -> Vec<Fig1Row> {
    let points: Vec<(f64, usize)> = lh_values
        .iter()
        .flat_map(|&lh| m_values.iter().map(move |&m| (lh, m)))
        .collect();
    fgcs_par::par_map(&points, |&(lh, m)| Fig1Row {
        lh,
        m,
        reduction: reduction_point(lh, m, guest_nice, cfg),
    })
}

/// The standard Figure 1 grid: `LH ∈ {0.1, …, 1.0}`, `M ∈ {1, …, 5}`.
pub fn fig1_standard_grid() -> (Vec<f64>, Vec<usize>) {
    (
        (1..=10).map(|i| i as f64 / 10.0).collect(),
        (1..=5).collect(),
    )
}

/// A row of the Figure 2 surface: reduction rate for one host load and
/// one guest priority.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Row {
    /// Isolated host CPU usage (single host process).
    pub lh: f64,
    /// Guest nice value.
    pub guest_nice: i8,
    /// Mean reduction rate of host CPU usage.
    pub reduction: f64,
}

/// Sweeps Figure 2: a single host process against guests of different
/// priorities — the experiment showing that gradually decreasing guest
/// priority buys nothing between `Th1` and `Th2`.
pub fn priority_sweep(
    lh_values: &[f64],
    nice_values: &[i8],
    cfg: &ContentionConfig,
) -> Vec<Fig2Row> {
    let points: Vec<(f64, i8)> = lh_values
        .iter()
        .flat_map(|&lh| nice_values.iter().map(move |&n| (lh, n)))
        .collect();
    fgcs_par::par_map(&points, |&(lh, nice)| {
        let hosts = [synthetic::host_process("host", lh)];
        let guest = synthetic::guest_process(nice);
        let meas = measure_group(&MachineConfig::default(), &hosts, Some(&guest), cfg);
        Fig2Row {
            lh,
            guest_nice: nice,
            reduction: meas.reduction_rate,
        }
    })
}

/// A row of Figure 3: guest CPU usage under light host load, equal
/// versus lowest priority.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// Isolated host CPU usage.
    pub host_usage: f64,
    /// Isolated guest CPU usage.
    pub guest_usage_isolated: f64,
    /// Guest nice value (0 or 19).
    pub guest_nice: i8,
    /// Actual guest CPU usage in the contended run.
    pub guest_usage_actual: f64,
}

/// Sweeps Figure 3: CPU-intensive guests (isolated usage ≥ 0.7) with
/// priority 0 and 19 under light host workloads (`LH ≤ 0.2`).
pub fn guest_usage_experiment(
    host_usages: &[f64],
    guest_usages: &[f64],
    cfg: &ContentionConfig,
) -> Vec<Fig3Row> {
    let points: Vec<(f64, f64, i8)> = host_usages
        .iter()
        .flat_map(|&h| {
            guest_usages
                .iter()
                .flat_map(move |&g| [0i8, 19i8].into_iter().map(move |n| (h, g, n)))
        })
        .collect();
    fgcs_par::par_map(&points, |&(h, g, nice)| {
        let hosts = [synthetic::host_process("host", h)];
        let guest = synthetic::guest_with_usage(g, nice);
        let meas = measure_group(&MachineConfig::default(), &hosts, Some(&guest), cfg);
        Fig3Row {
            host_usage: h,
            guest_usage_isolated: g,
            guest_nice: nice,
            guest_usage_actual: meas.guest_usage,
        }
    })
}

/// A row of Figure 4: one SPEC guest against one Musbus host workload on
/// the 384 MB Solaris machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Host workload name (H1–H6).
    pub workload: &'static str,
    /// Guest application name.
    pub guest_app: &'static str,
    /// Guest nice value (0 or 19).
    pub guest_nice: i8,
    /// Reduction rate of host CPU usage.
    pub reduction: f64,
    /// Whether the combination thrashed memory (the starred bars).
    pub thrashing: bool,
}

/// Sweeps Figure 4: every `(H1–H6) × (apsi, galgel, bzip2, mcf) × nice
/// {0, 19}` combination on the Solaris-class machine.
pub fn spec_musbus_experiment(cfg: &ContentionConfig) -> Vec<Fig4Row> {
    let mut points = Vec::new();
    for h in musbus::all() {
        for a in spec::all() {
            for nice in [0i8, 19i8] {
                points.push((h, a, nice));
            }
        }
    }
    fgcs_par::par_map(&points, |&(h, a, nice)| {
        let hosts = h.processes();
        let guest = a.guest_spec(nice);
        let meas = measure_group(&MachineConfig::solaris_384mb(), &hosts, Some(&guest), cfg);
        Fig4Row {
            workload: h.name,
            guest_app: a.name,
            guest_nice: nice,
            reduction: meas.reduction_rate,
            thrashing: meas.thrashing,
        }
    })
}

/// A row of Table 1: measured resource usage of one application or host
/// workload running alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Application or workload name.
    pub name: &'static str,
    /// Measured isolated CPU usage.
    pub cpu_usage: f64,
    /// Resident set size, MB.
    pub resident_mb: u32,
    /// Virtual size, MB.
    pub virtual_mb: u32,
}

/// Reproduces Table 1 by measuring every application and workload alone
/// on the Solaris-class machine.
pub fn table1_measurements(cfg: &ContentionConfig) -> Vec<Table1Row> {
    // Each row is an independent measurement on its own fresh machine;
    // par_map preserves input order, so the table keeps the paper's
    // apps-then-workloads row order.
    let apps = spec::all();
    let mut rows = fgcs_par::par_map(&apps, |a| {
        // A lone guest's usage is reported in the guest counter.
        let mut m = Machine::new(MachineConfig::solaris_384mb());
        m.spawn(a.guest_spec(0));
        m.run_ticks(secs(cfg.warmup_secs));
        let acct = m.measure(secs(cfg.measure_secs));
        Table1Row {
            name: a.name,
            cpu_usage: acct.guest_load(),
            resident_mb: a.resident_mb,
            virtual_mb: a.virtual_mb,
        }
    });
    let workloads = musbus::all();
    rows.extend(fgcs_par::par_map(&workloads, |h| {
        let meas = measure_group(&MachineConfig::solaris_384mb(), &h.processes(), None, cfg);
        let (res, virt) = h.processes().iter().fold((0, 0), |(r, v), p| {
            (r + p.mem.resident_mb, v + p.mem.virtual_mb)
        });
        Table1Row {
            name: h.name,
            cpu_usage: meas.lh_isolated,
            resident_mb: res,
            virtual_mb: virt,
        }
    }));
    rows
}

/// Measures the host slowdown caused by a *managed* guest: a guest that
/// the FGCS controller renices on S2 entry and suspends on spikes. Used
/// by the ablation experiment to show the value of the two-threshold
/// policy over a static priority.
pub fn measure_managed(
    machine_cfg: &MachineConfig,
    hosts: &[ProcSpec],
    cfg: &ContentionConfig,
    thresholds: crate::model::Thresholds,
) -> GroupMeasurement {
    use crate::controller::{Controller, ControllerConfig};

    let mut alone = Machine::new(machine_cfg.clone());
    for h in hosts {
        alone.spawn(h.clone());
    }
    alone.run_ticks(secs(cfg.warmup_secs));
    let iso = alone.measure(secs(cfg.measure_secs));
    let lh_isolated = iso.host_load();

    let mut machine = Machine::new(machine_cfg.clone());
    for h in hosts {
        machine.spawn(h.clone());
    }
    let mut ctl_cfg = ControllerConfig::default();
    ctl_cfg.detector.thresholds = thresholds;
    let mut ctl = Controller::new(ctl_cfg, machine);
    ctl.submit(ProcSpec::cpu_bound_guest("managed-guest", 0));
    ctl.run_ticks(secs(cfg.warmup_secs));
    let before = ctl.machine().accounting();
    ctl.run_ticks(secs(cfg.measure_secs));
    let con = ctl.machine().accounting().since(&before);
    let lh_contended = con.host_load();
    let reduction_rate = if lh_isolated > 0.0 {
        ((lh_isolated - lh_contended) / lh_isolated).max(0.0)
    } else {
        0.0
    };
    GroupMeasurement {
        lh_isolated,
        lh_contended,
        reduction_rate,
        guest_usage: con.guest_load(),
        thrashing: ctl.machine().is_thrashing(),
    }
}

/// Convenience: reduction rates and `LH` values for one guest class,
/// indexed `[m][lh]` as the paper's Figure 1 plots them.
pub fn fig1_series(rows: &[Fig1Row], m: usize) -> Vec<(f64, f64)> {
    let mut series: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.m == m)
        .map(|r| (r.lh, r.reduction))
        .collect();
    series.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_host_has_zero_reduction() {
        let cfg = ContentionConfig::quick();
        let hosts = [synthetic::host_process("h", 0.3)];
        let m = measure_group(&MachineConfig::default(), &hosts, None, &cfg);
        assert!(m.reduction_rate < 0.02, "reduction {}", m.reduction_rate);
        assert!((m.lh_isolated - 0.3).abs() < 0.05);
        assert!(!m.thrashing);
        assert_eq!(m.guest_usage, 0.0);
    }

    #[test]
    fn equal_priority_guest_hurts_heavy_host() {
        let cfg = ContentionConfig::quick();
        let hosts = [synthetic::host_process("h", 0.8)];
        let guest = synthetic::guest_process(0);
        let m = measure_group(&MachineConfig::default(), &hosts, Some(&guest), &cfg);
        assert!(m.reduction_rate > 0.15, "reduction {}", m.reduction_rate);
    }

    #[test]
    fn nice19_guest_spares_light_host() {
        let cfg = ContentionConfig::quick();
        let hosts = [synthetic::host_process("h", 0.3)];
        let guest = synthetic::guest_process(19);
        let m = measure_group(&MachineConfig::default(), &hosts, Some(&guest), &cfg);
        assert!(m.reduction_rate < 0.05, "reduction {}", m.reduction_rate);
        assert!(m.guest_usage > 0.5, "guest should harvest idle cycles");
    }

    #[test]
    fn reduction_grows_with_lh() {
        let cfg = ContentionConfig::quick();
        let low = reduction_point(0.2, 1, 0, &cfg);
        let high = reduction_point(0.9, 1, 0, &cfg);
        assert!(high > low + 0.1, "low {low} high {high}");
    }

    #[test]
    fn reduction_decreases_with_group_size() {
        let cfg = ContentionConfig::quick();
        let m1 = reduction_point(0.5, 1, 0, &cfg);
        let m5 = reduction_point(0.5, 5, 0, &cfg);
        assert!(m5 < m1, "m1 {m1} m5 {m5}");
    }

    #[test]
    fn fig1_sweep_covers_grid() {
        let cfg = ContentionConfig::quick();
        let rows = fig1_sweep(19, &[0.2, 0.8], &[1, 3], &cfg);
        assert_eq!(rows.len(), 4);
        let series = fig1_series(&rows, 3);
        assert_eq!(series.len(), 2);
        assert!(series[0].0 < series[1].0);
    }

    #[test]
    fn fig4_galgel_never_thrashes() {
        // galgel's 29 MB working set fits alongside every host workload.
        let cfg = ContentionConfig::quick();
        let rows = spec_musbus_experiment(&cfg);
        for r in rows.iter().filter(|r| r.guest_app == "galgel") {
            assert!(!r.thrashing, "galgel thrashing against {}", r.workload);
        }
        // And apsi against H2 must thrash: 213 + 193 + 100 > 384.
        assert!(rows
            .iter()
            .any(|r| r.guest_app == "apsi" && r.workload == "H2" && r.thrashing));
    }

    #[test]
    fn table1_matches_specs() {
        let cfg = ContentionConfig::quick();
        let rows = table1_measurements(&cfg);
        assert_eq!(rows.len(), 10);
        let apsi = rows.iter().find(|r| r.name == "apsi").unwrap();
        assert!((apsi.cpu_usage - 0.98).abs() < 0.02);
        assert_eq!(apsi.resident_mb, 193);
        let h5 = rows.iter().find(|r| r.name == "H5").unwrap();
        assert!(
            (h5.cpu_usage - 0.57).abs() < 0.06,
            "H5 cpu {}",
            h5.cpu_usage
        );
    }
}
