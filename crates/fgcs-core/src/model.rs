//! The five-state availability model (§4, Figure 5).
//!
//! | State | Meaning                                             |
//! |-------|-----------------------------------------------------|
//! | S1    | Full resource availability for the guest process    |
//! | S2    | Availability at lowest guest priority               |
//! | S3    | CPU unavailability — excessive contention (UEC)     |
//! | S4    | Memory thrashing (UEC)                              |
//! | S5    | Machine unavailability — resource revocation (URR)  |
//!
//! S3, S4 and S5 are *unrecoverable* failure states for a guest process:
//! even if host load later drops or the machine comes back, the guest has
//! been killed or migrated and no state remains on the host.

/// One of the five availability states of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AvailState {
    /// Full availability: host CPU load below `Th1`.
    S1,
    /// Availability with the guest at lowest priority:
    /// `Th1 <= LH <= Th2`.
    S2,
    /// CPU unavailability (UEC): host load steadily above `Th2`.
    S3,
    /// Memory thrashing (UEC): the guest working set no longer fits.
    S4,
    /// Machine unavailability (URR): revoked or failed.
    S5,
}

impl AvailState {
    /// All five states in order.
    pub const ALL: [AvailState; 5] = [
        AvailState::S1,
        AvailState::S2,
        AvailState::S3,
        AvailState::S4,
        AvailState::S5,
    ];

    /// True for the failure states S3/S4/S5.
    pub fn is_failure(self) -> bool {
        matches!(self, AvailState::S3 | AvailState::S4 | AvailState::S5)
    }

    /// True for the availability states S1/S2.
    pub fn is_available(self) -> bool {
        !self.is_failure()
    }

    /// The failure cause, for failure states.
    pub fn cause(self) -> Option<FailureCause> {
        match self {
            AvailState::S3 => Some(FailureCause::CpuContention),
            AvailState::S4 => Some(FailureCause::MemoryThrashing),
            AvailState::S5 => Some(FailureCause::Revocation),
            _ => None,
        }
    }

    /// Human-readable description, as in Figure 5's legend.
    pub fn description(self) -> &'static str {
        match self {
            AvailState::S1 => "full resource availability for guest process",
            AvailState::S2 => "resource availability for guest process with lowest priority",
            AvailState::S3 => "CPU unavailability (UEC)",
            AvailState::S4 => "memory thrashing (UEC)",
            AvailState::S5 => "machine unavailability (URR)",
        }
    }

    /// Stable numeric code 1..=5, for wire formats and compact logs.
    pub fn code(self) -> u8 {
        match self {
            AvailState::S1 => 1,
            AvailState::S2 => 2,
            AvailState::S3 => 3,
            AvailState::S4 => 4,
            AvailState::S5 => 5,
        }
    }

    /// Inverse of [`AvailState::code`].
    pub fn from_code(code: u8) -> Option<AvailState> {
        match code {
            1 => Some(AvailState::S1),
            2 => Some(AvailState::S2),
            3 => Some(AvailState::S3),
            4 => Some(AvailState::S4),
            5 => Some(AvailState::S5),
            _ => None,
        }
    }

    /// Whether a *guest job* may observe a transition from `self` to
    /// `to`. Availability states inter-convert; failure states are
    /// absorbing for the job (Figure 5's arrows all point into S3/S4/S5).
    pub fn can_transition(self, to: AvailState) -> bool {
        match (self.is_failure(), to.is_failure()) {
            (true, _) => false,       // failures are absorbing for the job
            (false, _) => self != to, // S1<->S2 and any failure entry
        }
    }
}

impl std::fmt::Display for AvailState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AvailState::S1 => "S1",
            AvailState::S2 => "S2",
            AvailState::S3 => "S3",
            AvailState::S4 => "S4",
            AvailState::S5 => "S5",
        };
        f.write_str(s)
    }
}

/// Why a resource became unavailable. The paper's Table 2 splits UEC
/// into CPU and memory contention and contrasts both with URR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FailureCause {
    /// UEC — host CPU load steadily above `Th2` (state S3).
    CpuContention,
    /// UEC — guest working set no longer fits in memory (state S4).
    MemoryThrashing,
    /// URR — machine revoked or crashed (state S5).
    Revocation,
}

impl FailureCause {
    /// The corresponding failure state.
    pub fn state(self) -> AvailState {
        match self {
            FailureCause::CpuContention => AvailState::S3,
            FailureCause::MemoryThrashing => AvailState::S4,
            FailureCause::Revocation => AvailState::S5,
        }
    }

    /// True for the two UEC causes.
    pub fn is_uec(self) -> bool {
        !matches!(self, FailureCause::Revocation)
    }

    /// Stable numeric code 1..=3, for wire formats and compact logs.
    pub fn code(self) -> u8 {
        match self {
            FailureCause::CpuContention => 1,
            FailureCause::MemoryThrashing => 2,
            FailureCause::Revocation => 3,
        }
    }

    /// Inverse of [`FailureCause::code`].
    pub fn from_code(code: u8) -> Option<FailureCause> {
        match code {
            1 => Some(FailureCause::CpuContention),
            2 => Some(FailureCause::MemoryThrashing),
            3 => Some(FailureCause::Revocation),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureCause::CpuContention => "cpu-contention",
            FailureCause::MemoryThrashing => "memory-thrashing",
            FailureCause::Revocation => "revocation",
        };
        f.write_str(s)
    }
}

/// The two host-load thresholds derived from the §3.2 contention
/// experiments.
///
/// On the paper's Linux testbed `Th1 = 20%` and `Th2 = 60%`;
/// [`Thresholds::LINUX_TESTBED`] captures those values, and
/// [`crate::calibrate`] re-derives them from our simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Host load above which the guest must drop to lowest priority.
    pub th1: f64,
    /// Host load above which the guest must be terminated.
    pub th2: f64,
}

impl Thresholds {
    /// The paper's Linux-testbed values: `Th1 = 0.2`, `Th2 = 0.6`.
    pub const LINUX_TESTBED: Thresholds = Thresholds { th1: 0.2, th2: 0.6 };

    /// Creates validated thresholds.
    ///
    /// # Panics
    /// Panics unless `0 < th1 <= th2 <= 1`.
    pub fn new(th1: f64, th2: f64) -> Self {
        assert!(
            th1 > 0.0 && th1 <= th2 && th2 <= 1.0,
            "invalid thresholds: th1={th1} th2={th2}"
        );
        Thresholds { th1, th2 }
    }

    /// Maps a host-load sample to its band.
    pub fn classify(&self, host_load: f64) -> LoadBand {
        if host_load < self.th1 {
            LoadBand::Light
        } else if host_load <= self.th2 {
            LoadBand::Heavy
        } else {
            LoadBand::Excessive
        }
    }
}

/// The band a host-load sample falls into, relative to the thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBand {
    /// `LH < Th1`: guest may run at default priority (S1).
    Light,
    /// `Th1 <= LH <= Th2`: guest must run at lowest priority (S2).
    Heavy,
    /// `LH > Th2`: noticeable slowdown even at lowest priority; guest
    /// must be suspended (transient) or terminated (persistent).
    Excessive,
}

impl LoadBand {
    /// Stable numeric code 1..=3, for wire formats and compact logs.
    pub fn code(self) -> u8 {
        match self {
            LoadBand::Light => 1,
            LoadBand::Heavy => 2,
            LoadBand::Excessive => 3,
        }
    }

    /// Inverse of [`LoadBand::code`].
    pub fn from_code(code: u8) -> Option<LoadBand> {
        match code {
            1 => Some(LoadBand::Light),
            2 => Some(LoadBand::Heavy),
            3 => Some(LoadBand::Excessive),
            _ => None,
        }
    }
}

/// The slowdown tolerance defining "noticeable": the paper uses a 5%
/// reduction of host CPU usage throughout.
pub const NOTICEABLE_SLOWDOWN: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_partition() {
        assert!(AvailState::S1.is_available());
        assert!(AvailState::S2.is_available());
        for s in [AvailState::S3, AvailState::S4, AvailState::S5] {
            assert!(s.is_failure());
            assert!(!s.is_available());
        }
    }

    #[test]
    fn causes_map_to_states() {
        assert_eq!(FailureCause::CpuContention.state(), AvailState::S3);
        assert_eq!(FailureCause::MemoryThrashing.state(), AvailState::S4);
        assert_eq!(FailureCause::Revocation.state(), AvailState::S5);
        for s in AvailState::ALL {
            match s.cause() {
                Some(c) => assert_eq!(c.state(), s),
                None => assert!(s.is_available()),
            }
        }
    }

    #[test]
    fn uec_vs_urr() {
        assert!(FailureCause::CpuContention.is_uec());
        assert!(FailureCause::MemoryThrashing.is_uec());
        assert!(!FailureCause::Revocation.is_uec());
    }

    #[test]
    fn transition_matrix_matches_figure5() {
        use AvailState::*;
        // Availability states reach each other and every failure state.
        assert!(S1.can_transition(S2));
        assert!(S2.can_transition(S1));
        for f in [S3, S4, S5] {
            assert!(S1.can_transition(f));
            assert!(S2.can_transition(f));
        }
        // Failure states are absorbing for the guest job.
        for f in [S3, S4, S5] {
            for t in AvailState::ALL {
                assert!(!f.can_transition(t), "{f} -> {t} should be forbidden");
            }
        }
        // Self-loops are not transitions.
        assert!(!S1.can_transition(S1));
    }

    #[test]
    fn thresholds_classify_bands() {
        let t = Thresholds::LINUX_TESTBED;
        assert_eq!(t.classify(0.0), LoadBand::Light);
        assert_eq!(t.classify(0.19), LoadBand::Light);
        assert_eq!(t.classify(0.2), LoadBand::Heavy);
        assert_eq!(t.classify(0.6), LoadBand::Heavy);
        assert_eq!(t.classify(0.61), LoadBand::Excessive);
        assert_eq!(t.classify(1.0), LoadBand::Excessive);
    }

    #[test]
    #[should_panic(expected = "invalid thresholds")]
    fn thresholds_validate_order() {
        Thresholds::new(0.7, 0.3);
    }

    #[test]
    fn wire_codes_round_trip() {
        for s in AvailState::ALL {
            assert_eq!(AvailState::from_code(s.code()), Some(s));
        }
        assert_eq!(AvailState::from_code(0), None);
        assert_eq!(AvailState::from_code(6), None);
        for c in [
            FailureCause::CpuContention,
            FailureCause::MemoryThrashing,
            FailureCause::Revocation,
        ] {
            assert_eq!(FailureCause::from_code(c.code()), Some(c));
        }
        assert_eq!(FailureCause::from_code(0), None);
        assert_eq!(FailureCause::from_code(4), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AvailState::S3.to_string(), "S3");
        assert_eq!(FailureCause::Revocation.to_string(), "revocation");
        assert!(AvailState::S4.description().contains("thrashing"));
    }
}
